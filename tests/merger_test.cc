#include <gtest/gtest.h>

#include "dbwipes/common/random.h"
#include "dbwipes/core/merger.h"
#include "dbwipes/core/preprocessor.h"
#include "dbwipes/expr/parser.h"

namespace dbwipes {
namespace {

Predicate P(const std::string& text) { return *ParsePredicate(text); }

TEST(MergePredicatesTest, AdjacentRangesWidenToHull) {
  auto merged = MergePredicates(P("a0 > 2 AND a0 <= 2.5"),
                                P("a0 > 2.5 AND a0 <= 3"));
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->ToString(), "a0 > 2 AND a0 <= 3");
}

TEST(MergePredicatesTest, OpenEndedSideDropsBound) {
  auto merged = MergePredicates(P("a0 > 2 AND a0 <= 2.5"), P("a0 > 2.5"));
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->ToString(), "a0 > 2");
}

TEST(MergePredicatesTest, EqualitiesUnionIntoInSet) {
  auto merged = MergePredicates(P("state = 'CA'"), P("state = 'NY'"));
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->ToString(), "state IN ('CA', 'NY')");
  // And IN sets union further.
  auto more = MergePredicates(*merged, P("state = 'TX'"));
  ASSERT_TRUE(more.has_value());
  EXPECT_EQ(more->ToString(), "state IN ('CA', 'NY', 'TX')");
}

TEST(MergePredicatesTest, MultiAttributeMergesPerAttribute) {
  auto merged = MergePredicates(P("c = 'x' AND a > 1 AND a <= 2"),
                                P("c = 'x' AND a > 2 AND a <= 3"));
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->CanonicalString(), "a <= 3 AND a > 1 AND c = 'x'");
}

TEST(MergePredicatesTest, DifferentAttributeSetsDoNotMerge) {
  EXPECT_FALSE(MergePredicates(P("a > 1"), P("b > 1")).has_value());
  EXPECT_FALSE(MergePredicates(P("a > 1 AND b > 2"), P("a > 1")).has_value());
}

TEST(MergePredicatesTest, MixedShapesDoNotMerge) {
  // Range vs equality on the same attribute.
  EXPECT_FALSE(MergePredicates(P("a > 1"), P("a = 5")).has_value());
}

TEST(MergePredicatesTest, ExactClausesMustMatch) {
  EXPECT_TRUE(MergePredicates(P("memo CONTAINS 'X' AND a > 1 AND a <= 2"),
                              P("memo CONTAINS 'X' AND a > 2 AND a <= 3"))
                  .has_value());
  EXPECT_FALSE(MergePredicates(P("memo CONTAINS 'X' AND a > 1"),
                               P("memo CONTAINS 'Y' AND a > 2"))
                   .has_value());
  EXPECT_FALSE(
      MergePredicates(P("c != 'u' AND a > 1"), P("c != 'w' AND a > 2"))
          .has_value());
}

TEST(MergePredicatesTest, IdenticalOrContainedMergesRejected) {
  // Merging a predicate with itself (or producing a parent) is useless.
  EXPECT_FALSE(MergePredicates(P("a > 1"), P("a > 1")).has_value());
  EXPECT_FALSE(MergePredicates(P("a > 1"), P("a > 2")).has_value());
}

TEST(MergePredicatesTest, EmptyPredicatesRejected) {
  EXPECT_FALSE(MergePredicates(Predicate::True(), P("a > 1")).has_value());
}

// End-to-end: tree slivers over one region reassemble into the whole.
TEST(MergeAndRerankTest, SliversReassemble) {
  Rng rng(11);
  auto t = std::make_shared<Table>(
      Schema{{"g", DataType::kInt64},
             {"a", DataType::kDouble},
             {"v", DataType::kDouble}},
      "w");
  std::vector<RowId> bad;
  for (int g = 0; g < 2; ++g) {
    for (int i = 0; i < 200; ++i) {
      const double a = rng.UniformDouble(0.0, 4.0);
      const bool is_bad = a >= 2.0;
      DBW_CHECK_OK(t->AppendRow({Value(static_cast<int64_t>(g)), Value(a),
                                 Value(is_bad ? rng.Normal(100, 2)
                                              : rng.Normal(10, 2))}));
      if (is_bad) bad.push_back(static_cast<RowId>(t->num_rows() - 1));
    }
  }
  QueryResult result = *ExecuteQuery(
      *ParseQuery("SELECT g, avg(v) AS m FROM w GROUP BY g"), *t);
  auto metric = TooHigh(15.0);
  std::vector<size_t> selected = {0, 1};
  PreprocessResult pre =
      *Preprocessor::Run(*t, result, selected, *metric);
  std::sort(bad.begin(), bad.end());

  // Simulate fragmented tree output: three slivers of the true region.
  std::vector<RankedPredicate> ranked(3);
  ranked[0].predicate = P("a > 2 AND a <= 2.7");
  ranked[1].predicate = P("a > 2.7 AND a <= 3.4");
  ranked[2].predicate = P("a > 3.4");
  for (auto& rp : ranked) rp.score = 0.3;

  auto merged = *MergeAndRerank(*t, result, selected, *metric, 0,
                                pre.suspect_inputs, bad,
                                pre.per_group_baseline_error, ranked, {});
  ASSERT_FALSE(merged.empty());
  // The top predicate must now be (close to) the full region a > 2.
  EXPECT_EQ(merged[0].strategy, "merged");
  EXPECT_EQ(merged[0].predicate.ToString(), "a > 2");
  EXPECT_NEAR(merged[0].error_improvement, 1.0, 1e-6);
  EXPECT_GT(merged[0].score, 0.5);
}

TEST(MergeAndRerankTest, BadMergesAreDropped) {
  // Two unrelated predicates whose value-set union matches far too
  // much: the merged candidate must not displace its parents.
  Rng rng(12);
  auto t = std::make_shared<Table>(
      Schema{{"g", DataType::kInt64},
             {"c", DataType::kString},
             {"v", DataType::kDouble}},
      "w");
  std::vector<RowId> bad;
  const char* cats[] = {"bad", "huge", "other"};
  for (int g = 0; g < 2; ++g) {
    for (int i = 0; i < 300; ++i) {
      const size_t ci = i < 20 ? 0 : (i < 200 ? 1 : 2);
      const bool is_bad = ci == 0;
      DBW_CHECK_OK(t->AppendRow({Value(static_cast<int64_t>(g)),
                                 Value(cats[ci]),
                                 Value(is_bad ? rng.Normal(100, 2)
                                              : rng.Normal(10, 2))}));
      if (is_bad) bad.push_back(static_cast<RowId>(t->num_rows() - 1));
    }
  }
  QueryResult result = *ExecuteQuery(
      *ParseQuery("SELECT g, avg(v) AS m FROM w GROUP BY g"), *t);
  auto metric = TooHigh(15.0);
  std::vector<size_t> selected = {0, 1};
  PreprocessResult pre = *Preprocessor::Run(*t, result, selected, *metric);
  std::sort(bad.begin(), bad.end());

  std::vector<RankedPredicate> ranked(2);
  ranked[0].predicate = P("c = 'bad'");
  ranked[0].score = 0.9;
  ranked[1].predicate = P("c = 'huge'");
  ranked[1].score = 0.1;

  auto merged = *MergeAndRerank(*t, result, selected, *metric, 0,
                                pre.suspect_inputs, bad,
                                pre.per_group_baseline_error, ranked, {});
  ASSERT_FALSE(merged.empty());
  EXPECT_EQ(merged[0].predicate.ToString(), "c = 'bad'");
  for (const RankedPredicate& rp : merged) {
    EXPECT_NE(rp.predicate.ToString(), "c IN ('bad', 'huge')")
        << "over-broad merge survived";
  }
}

}  // namespace
}  // namespace dbwipes
