// Concurrency tests for the resilient service layer: admission control
// under a 4x/16x overload burst (fast retryable shedding, no silent
// drops, bounded accepted latency), queue draining on Stop, per-session
// serialization under a multi-threaded hammer, concurrent cross-session
// execution, and the stats/profile/trace commands racing live debug
// runs. Carries the `stress` label: scripts/check.sh runs this suite
// under ThreadSanitizer.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "dbwipes/common/random.h"
#include "dbwipes/core/service.h"

namespace dbwipes {
namespace {

std::shared_ptr<Database> MakeDb() {
  Rng rng(59);
  auto t = std::make_shared<Table>(Schema{{"g", DataType::kInt64},
                                          {"tag", DataType::kString},
                                          {"v", DataType::kDouble}},
                                   "w");
  for (int g = 0; g < 4; ++g) {
    for (int i = 0; i < 40; ++i) {
      const bool bad = g >= 2 && i < 8;
      DBW_CHECK_OK(t->AppendRow({Value(static_cast<int64_t>(g)),
                                 Value(bad ? "bad" : "fine"),
                                 Value(bad ? rng.Normal(100, 2)
                                           : rng.Normal(10, 2))}));
    }
  }
  auto db = std::make_shared<Database>();
  db->RegisterTable(t);
  return db;
}

/// Minimal JSON validity check (same contract as the robustness
/// suite): one object, strings terminated, braces balanced.
bool IsWellFormedJsonObject(const std::string& s) {
  size_t i = 0;
  const size_t n = s.size();
  if (n == 0 || s[0] != '{') return false;
  std::vector<char> stack;
  bool in_string = false;
  for (; i < n; ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        if (i + 1 >= n) return false;
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      stack.push_back(c);
    } else if (c == '}' || c == ']') {
      if (stack.empty()) return false;
      const char open = stack.back();
      stack.pop_back();
      if ((c == '}') != (open == '{')) return false;
      if (stack.empty()) break;
    }
  }
  if (in_string || !stack.empty() || i >= n) return false;
  return s.find_first_not_of(" \t\r\n", i + 1) == std::string::npos;
}

double PercentileMs(std::vector<double> ms, double p) {
  if (ms.empty()) return 0.0;
  std::sort(ms.begin(), ms.end());
  const size_t idx = static_cast<size_t>(p * static_cast<double>(ms.size()));
  return ms[std::min(idx, ms.size() - 1)];
}

// --- Admission control ---

TEST(ServiceAdmissionTest, SubmitRequiresStart) {
  ServiceOptions options;
  options.num_workers = 2;
  Service service(MakeDb(), options);
  auto fut = service.Submit("ping");
  const std::string out = fut.get();  // resolves immediately
  EXPECT_NE(out.find("\"ok\": false"), std::string::npos) << out;
  EXPECT_NE(out.find("not_running"), std::string::npos) << out;
}

TEST(ServiceAdmissionTest, StartWithoutWorkersIsAnError) {
  Service service(MakeDb());  // num_workers = 0
  EXPECT_FALSE(service.Start().ok());
  EXPECT_FALSE(service.running());
}

TEST(ServiceAdmissionTest, OverloadShedsFastWithRetryableJson) {
  ServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = 4;
  options.shed_retry_after_ms = 25.0;
  Service service(MakeDb(), options);
  ASSERT_TRUE(service.Start().ok());

  // Unloaded baseline for the p99 comparison.
  std::vector<double> unloaded_ms;
  for (int i = 0; i < 20; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    (void)service.Execute("ping 1");
    unloaded_ms.push_back(std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
  }

  // 16x the queue capacity, each holding a worker for ~5 ms.
  constexpr int kBurst = 64;
  std::vector<std::future<std::string>> futures;
  std::vector<double> submit_ms;
  futures.reserve(kBurst);
  for (int i = 0; i < kBurst; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    futures.push_back(service.Submit("ping 5"));
    submit_ms.push_back(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
  }

  // Every future resolves — nothing is silently dropped.
  int accepted = 0, shed = 0;
  std::vector<double> accepted_ms;
  for (int i = 0; i < kBurst; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::string out = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(IsWellFormedJsonObject(out)) << out;
    if (out.find("\"ok\": true") != std::string::npos) {
      ++accepted;
      accepted_ms.push_back(std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count());
    } else {
      ++shed;
      // The shed response is the documented, machine-actionable shape.
      EXPECT_NE(out.find("\"retryable\": true"), std::string::npos) << out;
      EXPECT_NE(out.find("\"reason\": \"overloaded\""), std::string::npos)
          << out;
      EXPECT_NE(out.find("\"retry_after_ms\": 25"), std::string::npos) << out;
    }
  }
  EXPECT_EQ(accepted + shed, kBurst);
  // The queue really was bounded: far more shed than accepted at 16x.
  EXPECT_GT(shed, 0);
  EXPECT_GE(accepted, 4);  // at least the initial queue fill ran

  // Shedding is fast: rejection happens at Submit, in-line, bounded by
  // a mutex acquisition — not after a queueing delay.
  EXPECT_LT(PercentileMs(submit_ms, 0.5), 10.0);

  // Accepted requests degrade boundedly (p99 within 5x of unloaded
  // p99 plus the worst-case queue wait: ceil(capacity / workers)
  // runs of 5 ms ahead of a full queue, with slack for CI noise).
  const double unloaded_p99 = PercentileMs(unloaded_ms, 0.99);
  const double queue_wait_ms = 2 * 5.0;
  EXPECT_LT(PercentileMs(accepted_ms, 0.99),
            5.0 * (unloaded_p99 + queue_wait_ms) + 250.0);

  // The server is alive and correct after the storm.
  const std::string after = service.Execute("ping");
  EXPECT_NE(after.find("\"ok\": true"), std::string::npos) << after;
  service.Stop();
}

TEST(ServiceAdmissionTest, MemoryWatermarkShedsBeforeQueueIsFullByCount) {
  ServiceOptions options;
  options.num_workers = 1;
  options.queue_capacity = 1000;
  options.queue_memory_watermark_bytes = 1024;
  Service service(MakeDb(), options);
  ASSERT_TRUE(service.Start().ok());

  // Park the worker so submissions stack up.
  auto slow = service.Submit("ping 50");
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  // A few requests of ~512 bytes each cross the 1 KB watermark long
  // before 1000 queued entries.
  const std::string fat = "ping 0 " + std::string(512, 'x');
  std::vector<std::future<std::string>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(service.Submit(fat));
  int shed = 0;
  for (auto& f : futures) {
    if (f.get().find("\"reason\": \"overloaded\"") != std::string::npos) {
      ++shed;
    }
  }
  EXPECT_GT(shed, 0);
  (void)slow.get();
  service.Stop();
}

TEST(ServiceAdmissionTest, StopDrainsEveryAcceptedRequest) {
  ServiceOptions options;
  options.num_workers = 1;
  options.queue_capacity = 32;
  Service service(MakeDb(), options);
  ASSERT_TRUE(service.Start().ok());

  std::vector<std::future<std::string>> futures;
  for (int i = 0; i < 16; ++i) futures.push_back(service.Submit("ping 2"));
  service.Stop();  // must drain, not drop

  for (auto& f : futures) {
    const std::string out = f.get();
    EXPECT_NE(out.find("\"ok\": true"), std::string::npos) << out;
  }
  // After Stop, new submissions are rejected as not running.
  EXPECT_NE(service.Submit("ping").get().find("not_running"),
            std::string::npos);
  // And the service can start again.
  ASSERT_TRUE(service.Start().ok());
  EXPECT_NE(service.Submit("ping").get().find("\"ok\": true"),
            std::string::npos);
  service.Stop();
}

TEST(ServiceAdmissionTest, ConcurrentSubmittersNeverLoseARequest) {
  ServiceOptions options;
  options.num_workers = 3;
  options.queue_capacity = 8;
  Service service(MakeDb(), options);
  ASSERT_TRUE(service.Start().ok());

  constexpr int kThreads = 6;
  constexpr int kPerThread = 30;
  std::atomic<int> resolved{0};
  std::atomic<int> malformed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &resolved, &malformed] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string out = service.Submit("ping 1").get();
        if (!IsWellFormedJsonObject(out)) ++malformed;
        ++resolved;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(resolved.load(), kThreads * kPerThread);
  EXPECT_EQ(malformed.load(), 0);
  service.Stop();
}

// --- Concurrent Execute semantics ---

TEST(ServiceConcurrencyTest, PerSessionCommandsSerializeUnderHammer) {
  Service service(MakeDb());
  constexpr int kThreads = 6;
  constexpr int kIters = 20;
  std::atomic<int> malformed{0};

  // All threads target the SAME session with state-changing commands;
  // serialization means every response is one of the well-formed
  // outcomes, never a torn mix.
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &malformed, t] {
      for (int i = 0; i < kIters; ++i) {
        const char* cmd = nullptr;
        switch ((t + i) % 5) {
          case 0: cmd = "@shared sql SELECT g, avg(v) AS a FROM w GROUP BY g";
                  break;
          case 1: cmd = "@shared select_range a 20 1e9"; break;
          case 2: cmd = "@shared metric too_high 12"; break;
          case 3: cmd = "@shared debug"; break;
          default: cmd = "@shared state"; break;
        }
        if (!IsWellFormedJsonObject(service.Execute(cmd))) ++malformed;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(malformed.load(), 0);

  // The session is coherent afterwards: the full loop still runs.
  for (const char* cmd : {"@shared sql SELECT g, avg(v) AS a FROM w GROUP BY g",
                          "@shared select_range a 20 1e9",
                          "@shared metric too_high 12", "@shared debug"}) {
    EXPECT_NE(service.Execute(cmd).find("\"ok\": true"), std::string::npos)
        << cmd;
  }
}

TEST(ServiceConcurrencyTest, CrossSessionCommandsRunConcurrently) {
  Service service(MakeDb());
  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &failures, t] {
      const std::string s = "@s" + std::to_string(t) + " ";
      for (int i = 0; i < 10; ++i) {
        for (const std::string& cmd :
             {s + "sql SELECT g, avg(v) AS a FROM w GROUP BY g",
              s + "select_range a 20 1e9", s + "metric too_high 12",
              s + "debug"}) {
          if (service.Execute(cmd).find("\"ok\": true") == std::string::npos) {
            ++failures;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ServiceConcurrencyTest, StatsProfileTraceAreSafeDuringExecution) {
  // The satellite bugfix: observability commands racing live debug
  // runs (and each other) must be data-race-free — this test is the
  // tsan regression for it.
  Service service(MakeDb());
  std::atomic<bool> stop{false};
  std::atomic<int> malformed{0};

  std::thread debugger([&service, &stop] {
    const char* setup[] = {"@work sql SELECT g, avg(v) AS a FROM w GROUP BY g",
                           "@work select_range a 20 1e9",
                           "@work metric too_high 12"};
    for (const char* cmd : setup) (void)service.Execute(cmd);
    while (!stop.load()) (void)service.Execute("@work debug");
  });
  std::thread profiler([&service, &stop, &malformed] {
    int i = 0;
    while (!stop.load()) {
      const std::string out = service.Execute(
          (++i % 2) ? "@work profile on" : "@work profile off");
      if (!IsWellFormedJsonObject(out)) ++malformed;
    }
  });
  std::thread statser([&service, &stop, &malformed] {
    while (!stop.load()) {
      if (!IsWellFormedJsonObject(service.Execute("stats"))) ++malformed;
    }
  });
  std::thread tracer([&service, &stop, &malformed] {
    int i = 0;
    while (!stop.load()) {
      const std::string out =
          service.Execute((++i % 2) ? "trace on" : "trace off");
      if (!IsWellFormedJsonObject(out)) ++malformed;
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  debugger.join();
  profiler.join();
  statser.join();
  tracer.join();
  (void)service.Execute("trace off");
  EXPECT_EQ(malformed.load(), 0);
}

TEST(ServiceConcurrencyTest, CancelReachesInFlightDebugOnNamedSession) {
  Service service(MakeDb());
  for (const char* cmd : {"@long sql SELECT g, avg(v) AS a FROM w GROUP BY g",
                          "@long select_range a 20 1e9",
                          "@long metric too_high 12"}) {
    ASSERT_NE(service.Execute(cmd).find("\"ok\": true"), std::string::npos);
  }

  std::promise<std::string> debug_out;
  std::thread runner([&service, &debug_out] {
    debug_out.set_value(service.Execute("@long debug"));
  });
  // Cancel from this thread; whether it lands in-flight or pending,
  // the debug returns promptly and well-formed.
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const std::string cancel = service.Execute("@long cancel");
  EXPECT_NE(cancel.find("\"ok\": true"), std::string::npos) << cancel;
  auto fut = debug_out.get_future();
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  runner.join();
  EXPECT_TRUE(IsWellFormedJsonObject(fut.get()));
}

TEST(ServiceConcurrencyTest, SnapshotLoadRacingCommandsIsSafe) {
  const std::string path =
      ::testing::TempDir() + "/race_load.dbwsnap";
  Service service(MakeDb());
  for (const char* cmd : {"sql SELECT g, avg(v) AS a FROM w GROUP BY g",
                          "select_range a 20 1e9", "metric too_high 12"}) {
    ASSERT_NE(service.Execute(cmd).find("\"ok\": true"), std::string::npos);
  }
  ASSERT_NE(service.Execute("snapshot save " + path).find("\"ok\": true"),
            std::string::npos);

  std::atomic<bool> stop{false};
  std::atomic<int> malformed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&service, &stop, &malformed, t] {
      const std::string s = "@r" + std::to_string(t) + " ";
      while (!stop.load()) {
        const std::string out = service.Execute(
            s + "sql SELECT g, avg(v) AS a FROM w GROUP BY g");
        if (!IsWellFormedJsonObject(out)) ++malformed;
      }
    });
  }
  for (int i = 0; i < 10; ++i) {
    const std::string out = service.Execute("snapshot load " + path);
    EXPECT_NE(out.find("\"ok\": true"), std::string::npos) << out;
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  EXPECT_EQ(malformed.load(), 0);

  // The restored world answers correctly after the churn.
  EXPECT_NE(service.Execute("debug").find("\"ok\": true"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dbwipes
