// WriteAheadLog unit tests: append/replay round-trip, reopen, the
// torn-tail matrix (truncation at every byte of the final frame plus
// bit flips must recover exactly the undamaged prefix), segment
// rotation and checkpoint truncation, and the failure paths — EIO on
// write, short writes, fsync failure — all of which must restore the
// log to its last durable state and keep LSNs contiguous. FAULTS
// label: the failure matrix runs under the sanitizer presets too.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "dbwipes/common/exec_context.h"
#include "dbwipes/storage/wal.h"

namespace dbwipes {
namespace {

std::string TempWalDir(const std::string& name) {
  // PID-qualified so concurrently running test binaries (e.g. two
  // sanitizer presets of this suite) never share a directory.
  const std::string dir = ::testing::TempDir() + "/" +
                          std::to_string(::getpid()) + "_" + name;
  std::system(("rm -rf '" + dir + "'").c_str());
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::vector<std::pair<uint64_t, std::string>> ReplayAll(
    const WriteAheadLog& wal, uint64_t after_lsn = 0) {
  std::vector<std::pair<uint64_t, std::string>> out;
  Status st = wal.Replay(
      after_lsn,
      [&](uint64_t lsn, uint64_t /*rid*/, uint8_t type,
          const std::string& body) {
        EXPECT_EQ(type, WriteAheadLog::kRecordCommand);
        out.emplace_back(lsn, body);
        return Status::OK();
      });
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

TEST(WalTest, AppendReplayRoundTrip) {
  const std::string dir = TempWalDir("roundtrip");
  auto wal = WriteAheadLog::Open({.dir = dir});
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();

  for (int i = 0; i < 20; ++i) {
    auto lsn = (*wal)->AppendCommand("cmd " + std::to_string(i));
    ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
    EXPECT_EQ(*lsn, static_cast<uint64_t>(i + 1));
  }
  EXPECT_EQ((*wal)->durable_lsn(), 20u);
  EXPECT_EQ((*wal)->next_lsn(), 21u);

  auto records = ReplayAll(**wal);
  ASSERT_EQ(records.size(), 20u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].first, i + 1);
    EXPECT_EQ(records[i].second, "cmd " + std::to_string(i));
  }

  // Replay after an LSN skips exactly the prefix.
  auto tail = ReplayAll(**wal, 15);
  ASSERT_EQ(tail.size(), 5u);
  EXPECT_EQ(tail.front().first, 16u);
}

TEST(WalTest, ReopenResumesLsnSequence) {
  const std::string dir = TempWalDir("reopen");
  {
    auto wal = WriteAheadLog::Open({.dir = dir});
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE((*wal)->AppendCommand("a " + std::to_string(i)).ok());
    }
  }
  auto wal = WriteAheadLog::Open({.dir = dir});
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ((*wal)->durable_lsn(), 5u);
  auto lsn = (*wal)->AppendCommand("after reopen");
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 6u);
  EXPECT_EQ(ReplayAll(**wal).size(), 6u);
}

TEST(WalTest, EmptyBodyAndLargeBodyRoundTrip) {
  const std::string dir = TempWalDir("bodies");
  auto wal = WriteAheadLog::Open({.dir = dir});
  ASSERT_TRUE(wal.ok());
  const std::string big(100000, 'x');
  ASSERT_TRUE((*wal)->AppendCommand("").ok());
  ASSERT_TRUE((*wal)->AppendCommand(big).ok());
  auto records = ReplayAll(**wal);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].second, "");
  EXPECT_EQ(records[1].second, big);
}

// A crash mid-write leaves a torn tail: for EVERY truncation point
// inside the final frame, reopen must recover exactly the records
// before it — never an error, never a phantom record.
TEST(WalTest, TornTailTruncationMatrix) {
  const std::string base = TempWalDir("torn");
  // Build a reference log once, copy the bytes.
  std::string segment_path;
  std::string full_bytes;
  size_t bytes_before_last = 0;
  {
    auto wal = WriteAheadLog::Open({.dir = base});
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE((*wal)->AppendCommand("record " + std::to_string(i)).ok());
    }
    segment_path = base + "/wal-00000001.log";
    std::string without_last = ReadFileBytes(segment_path);
    bytes_before_last = without_last.size();
    ASSERT_TRUE((*wal)->AppendCommand("the last record").ok());
    full_bytes = ReadFileBytes(segment_path);
  }
  ASSERT_GT(full_bytes.size(), bytes_before_last);

  for (size_t cut = bytes_before_last; cut < full_bytes.size(); ++cut) {
    WriteFileBytes(segment_path, full_bytes.substr(0, cut));
    auto wal = WriteAheadLog::Open({.dir = base});
    ASSERT_TRUE(wal.ok()) << "cut at " << cut << ": "
                          << wal.status().ToString();
    auto records = ReplayAll(**wal);
    ASSERT_EQ(records.size(), 4u) << "cut at " << cut;
    EXPECT_EQ((*wal)->durable_lsn(), 4u);
    // The log stays appendable after truncating the tear.
    auto lsn = (*wal)->AppendCommand("replacement");
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(*lsn, 5u);
  }
}

// A bit flip in the ACTIVE (last) segment is indistinguishable from a
// torn write — recover the prefix before it. The same damage in a
// SEALED segment is real corruption (its commits were acknowledged as
// durable) and must refuse to open rather than silently drop records.
TEST(WalTest, BitFlipInLastSegmentTruncatesSealedRefuses) {
  const std::string base = TempWalDir("bitflip");
  {
    auto wal = WriteAheadLog::Open({.dir = base});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendCommand("first record").ok());
    ASSERT_TRUE((*wal)->AppendCommand("second record").ok());
    ASSERT_TRUE((*wal)->Rotate().ok());
    ASSERT_TRUE((*wal)->AppendCommand("third record").ok());
  }
  const std::string sealed = base + "/wal-00000001.log";
  const std::string active = base + "/wal-00000002.log";
  const std::string sealed_bytes = ReadFileBytes(sealed);
  const std::string active_bytes = ReadFileBytes(active);

  {
    // Flip a byte inside the active segment's record body.
    std::string damaged = active_bytes;
    damaged[active_bytes.size() - 3] ^= 0x40;
    WriteFileBytes(active, damaged);
    auto wal = WriteAheadLog::Open({.dir = base});
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    EXPECT_EQ(ReplayAll(**wal).size(), 2u);
    EXPECT_EQ((*wal)->durable_lsn(), 2u);
    WriteFileBytes(active, active_bytes);  // restore for the next case
  }
  {
    // The same flip in the SEALED segment: refuse.
    std::string damaged = sealed_bytes;
    damaged[sealed_bytes.size() - 3] ^= 0x40;
    WriteFileBytes(sealed, damaged);
    auto wal = WriteAheadLog::Open({.dir = base});
    EXPECT_FALSE(wal.ok());
  }
}

TEST(WalTest, RotationSplitsSegmentsAndReplayCrossesThem) {
  const std::string dir = TempWalDir("rotate");
  // Tiny segments force a roll every couple of records.
  auto wal = WriteAheadLog::Open({.dir = dir, .segment_bytes = 64});
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE((*wal)->AppendCommand("payload number " + std::to_string(i))
                    .ok());
  }
  EXPECT_GT((*wal)->num_segments(), 2u);
  auto records = ReplayAll(**wal);
  ASSERT_EQ(records.size(), 12u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].first, i + 1);  // contiguous across segments
  }

  // Reopen with multiple segments on disk.
  wal->reset();
  auto reopened = WriteAheadLog::Open({.dir = dir, .segment_bytes = 64});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->durable_lsn(), 12u);
  EXPECT_EQ(ReplayAll(**reopened).size(), 12u);
}

TEST(WalTest, TruncateThroughDropsOnlyCoveredClosedSegments) {
  const std::string dir = TempWalDir("truncate");
  auto wal = WriteAheadLog::Open({.dir = dir, .segment_bytes = 64});
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*wal)->AppendCommand("payload number " + std::to_string(i))
                    .ok());
  }
  const size_t before = (*wal)->num_segments();
  ASSERT_GT(before, 2u);

  // A checkpoint through LSN 4 may only drop segments whose records
  // are ALL <= 4; everything after must still replay.
  ASSERT_TRUE((*wal)->TruncateThrough(4).ok());
  auto records = ReplayAll(**wal, 4);
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records.front().first, 5u);
  EXPECT_EQ(records.back().first, 10u);

  // Rotate + truncate-everything retires all closed segments.
  ASSERT_TRUE((*wal)->Rotate().ok());
  ASSERT_TRUE((*wal)->TruncateThrough((*wal)->durable_lsn()).ok());
  EXPECT_EQ((*wal)->num_segments(), 1u);
  EXPECT_TRUE(ReplayAll(**wal, (*wal)->durable_lsn()).empty());

  // The dropped prefix is really gone from disk, and reopen is clean.
  wal->reset();
  auto reopened = WriteAheadLog::Open({.dir = dir, .segment_bytes = 64});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->durable_lsn(), 10u);
  auto lsn = (*reopened)->AppendCommand("post truncate");
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 11u);
}

TEST(WalTest, MissingTailSegmentHeaderIsDiscarded) {
  const std::string dir = TempWalDir("stubtail");
  {
    auto wal = WriteAheadLog::Open({.dir = dir});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendCommand("kept").ok());
  }
  // A crash between segment creation and its header write leaves a
  // zero-length (or stub) file: discard it, keep the valid prefix.
  WriteFileBytes(dir + "/wal-00000002.log", "");
  auto wal = WriteAheadLog::Open({.dir = dir});
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ((*wal)->durable_lsn(), 1u);
  EXPECT_EQ(ReplayAll(**wal).size(), 1u);
}

TEST(WalTest, OlderFormatVersionIsRefusedNotDeleted) {
  const std::string dir = TempWalDir("v1refuse");
  std::system(("mkdir -p '" + dir + "'").c_str());
  // A single-segment log written by the previous on-disk format: a
  // complete "DBWWAL1" header followed by records this reader cannot
  // parse. It is the LAST (only) segment, the position the
  // crash-during-creation cleanup targets — but it holds durable
  // commits, so Open must refuse, not silently delete it.
  std::string v1 = std::string("DBWWAL1", 7) + std::string(1, '\0');
  v1 += std::string(1, '\x01') + std::string(7, '\0');  // base lsn 1
  v1 += "opaque v1 record bytes";
  const std::string path = dir + "/wal-00000001.log";
  WriteFileBytes(path, v1);

  auto wal = WriteAheadLog::Open({.dir = dir});
  ASSERT_FALSE(wal.ok());
  EXPECT_NE(wal.status().ToString().find("unsupported"), std::string::npos)
      << wal.status().ToString();
  // The old log survives byte-for-byte for explicit migration.
  EXPECT_EQ(ReadFileBytes(path), v1);
}

// --- Failure paths (armed I/O faults) ---

TEST(WalFaultsTest, WriteErrorRestoresAndLsnsStayContiguous) {
  const std::string dir = TempWalDir("eio");
  FaultInjector faults;
  auto wal = WriteAheadLog::Open({.dir = dir, .faults = &faults});
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->AppendCommand("before").ok());

  faults.ArmError("wal/write", Status::IoError("injected EIO"));
  auto failed = (*wal)->AppendCommand("lost");
  ASSERT_FALSE(failed.ok());
  faults.Disarm("wal/write");
  EXPECT_EQ((*wal)->durable_lsn(), 1u);
  EXPECT_FALSE((*wal)->stats().poisoned);

  // The failed record's LSN is reused — no gap, no phantom.
  auto lsn = (*wal)->AppendCommand("after");
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 2u);
  auto records = ReplayAll(**wal);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].second, "after");

  // And the on-disk file agrees after reopen.
  wal->reset();
  auto reopened = WriteAheadLog::Open({.dir = dir});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->durable_lsn(), 2u);
}

TEST(WalFaultsTest, ShortWriteIsTruncatedAwayNotReplayed) {
  const std::string dir = TempWalDir("shortwrite");
  FaultInjector faults;
  auto wal = WriteAheadLog::Open({.dir = dir, .faults = &faults});
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->AppendCommand("durable one").ok());

  FaultInjector::Fault fault;
  fault.status = Status::IoError("disk full");
  fault.short_write_limit = 7;  // a few bytes of the frame land
  fault.count = 1;
  faults.Arm("wal/write", fault);
  ASSERT_FALSE((*wal)->AppendCommand("torn record").ok());

  // In-process restore truncated the partial frame...
  auto lsn = (*wal)->AppendCommand("durable two");
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 2u);
  auto records = ReplayAll(**wal);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].second, "durable two");
}

TEST(WalFaultsTest, ShortWriteThenCrashLeavesRecoverableTear) {
  const std::string dir = TempWalDir("shortcrash");
  std::string segment_path = dir + "/wal-00000001.log";
  std::string durable_bytes;
  {
    FaultInjector faults;
    auto wal = WriteAheadLog::Open({.dir = dir, .faults = &faults});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendCommand("durable one").ok());
    durable_bytes = ReadFileBytes(segment_path);

    // Simulate the crash half only: let the partial frame land, fail
    // the append, then throw the WAL away WITHOUT its restore running
    // against disk state (reopen is what a real crash sees).
    FaultInjector::Fault fault;
    fault.status = Status::IoError("power cut");
    fault.short_write_limit = 9;
    fault.count = 1;
    faults.Arm("wal/write", fault);
    ASSERT_FALSE((*wal)->AppendCommand("torn record").ok());
  }
  // Re-create the torn state (restore may have cleaned it in-process):
  // durable prefix + garbage tail, exactly what the kill matrix makes.
  std::string torn = durable_bytes + std::string(9, '\xAB');
  WriteFileBytes(segment_path, torn);
  auto wal = WriteAheadLog::Open({.dir = dir});
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  auto records = ReplayAll(**wal);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].second, "durable one");
}

TEST(WalFaultsTest, FsyncFailureFailsTheBatchButNotTheLog) {
  const std::string dir = TempWalDir("fsyncfail");
  FaultInjector faults;
  auto wal = WriteAheadLog::Open({.dir = dir, .faults = &faults});
  ASSERT_TRUE(wal.ok());

  FaultInjector::Fault fault;
  fault.status = Status::IoError("fsync: I/O error");
  fault.count = 1;
  faults.Arm("wal/fsync", fault);
  ASSERT_FALSE((*wal)->AppendCommand("not durable").ok());
  EXPECT_EQ((*wal)->durable_lsn(), 0u);
  EXPECT_FALSE((*wal)->stats().poisoned);

  auto lsn = (*wal)->AppendCommand("durable");
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 1u);
  auto records = ReplayAll(**wal);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].second, "durable");
}

TEST(WalFaultsTest, OpenFaultSurfacesCleanly) {
  const std::string dir = TempWalDir("openfault");
  FaultInjector faults;
  faults.ArmError("wal/open", Status::IoError("mount is read-only"));
  auto wal = WriteAheadLog::Open({.dir = dir, .faults = &faults});
  EXPECT_FALSE(wal.ok());
}

// Concurrent appenders group-commit: with a slow fsync, N appends
// complete with far fewer than N fsyncs, and every LSN is unique,
// contiguous, and durable.
TEST(WalFaultsTest, GroupCommitBatchesConcurrentAppends) {
  const std::string dir = TempWalDir("groupcommit");
  FaultInjector faults;
  FaultInjector::Fault slow;
  slow.latency_ms = 2.0;  // widen the window so followers pile up
  faults.Arm("wal/fsync", slow);
  auto wal = WriteAheadLog::Open({.dir = dir, .faults = &faults});
  ASSERT_TRUE(wal.ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        auto lsn = (*wal)->AppendCommand("t" + std::to_string(t) + " i" +
                                         std::to_string(i));
        if (!lsn.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  const WalStats stats = (*wal)->stats();
  EXPECT_EQ(stats.appends, static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.durable_lsn, static_cast<uint64_t>(kThreads * kPerThread));
  // The whole point of group commit: far fewer fsyncs than appends.
  EXPECT_LT(stats.fsyncs, stats.appends);

  auto records = ReplayAll(**wal);
  ASSERT_EQ(records.size(), static_cast<size_t>(kThreads * kPerThread));
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].first, i + 1);
  }
}

}  // namespace
}  // namespace dbwipes
