// MatchEngine snapshot-staleness under a concurrent append-then-match
// workload. The engine's contract is epoch-style: bitmaps are valid for
// the table size at construction; any growth makes every subsequent
// call fail with the stale-cache error until the engine is rebuilt.
// This test drives an appender thread against matcher threads (table
// access serialized by a mutex, as the engine requires of its callers)
// and asserts each match observes exactly one epoch — the snapshot's
// bitmap or the stale error, never a torn in-between. The tsan preset
// runs this binary to certify the locking discipline.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "dbwipes/common/exec_context.h"
#include "dbwipes/expr/match_kernels.h"

namespace dbwipes {
namespace {

/// v = row index, so the count of "v < cut" over a prefix universe is
/// exactly min(cut, universe size) — a closed-form oracle per epoch.
void AppendRows(Table* table, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    DBW_CHECK_OK(table->AppendRow(
        {Value(static_cast<double>(table->num_rows()))}));
  }
}

std::vector<RowId> AllRows(const Table& table) {
  std::vector<RowId> rows(table.num_rows());
  for (RowId r = 0; r < rows.size(); ++r) rows[r] = r;
  return rows;
}

TEST(CacheStalenessTest, GrowthInvalidatesEveryEntryPoint) {
  Table table(Schema{{"v", DataType::kDouble}}, "t");
  AppendRows(&table, 100);
  MatchEngine engine(table, AllRows(table));
  const Predicate pred({Clause::Make("v", CompareOp::kLt, Value(50.0))});
  ASSERT_TRUE(engine.Materialize({&pred}).ok());
  EXPECT_EQ(engine.MatchPrepared(pred)->CountOnes(), 50u);

  AppendRows(&table, 1);
  for (const Status& st : {engine.Materialize({&pred}),
                           engine.MatchPrepared(pred).status(),
                           engine.Match(pred).status(),
                           engine.ClauseBitmap(pred.clauses()[0]).status()}) {
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.ToString().find("stale"), std::string::npos)
        << st.ToString();
  }
}

TEST(CacheStalenessTest, ConcurrentAppendThenMaterializeSeesOneEpoch) {
  Table table(Schema{{"v", DataType::kDouble}}, "t");
  AppendRows(&table, 256);

  // Table and engines share one mutex: the engine documents that its
  // callers serialize cache mutation against table growth; what it
  // promises in return — and what this test checks from 4 threads —
  // is that a serialized caller can never read a half-updated cache:
  // each operation lands wholly before or wholly after each append.
  std::mutex mu;
  std::atomic<bool> stop{false};
  std::atomic<size_t> stale_hits{0}, epoch_hits{0}, failures{0};

  std::thread appender([&] {
    for (int i = 0; i < 200 && !stop.load(); ++i) {
      {
        std::lock_guard<std::mutex> lock(mu);
        AppendRows(&table, 8);
      }
      std::this_thread::yield();
    }
    stop.store(true);
  });

  std::vector<std::thread> matchers;
  for (int t = 0; t < 3; ++t) {
    matchers.emplace_back([&] {
      const Predicate pred(
          {Clause::Make("v", CompareOp::kLt, Value(100.0))});
      while (!stop.load()) {
        std::lock_guard<std::mutex> lock(mu);
        // Build a snapshot engine, then match; an append slips in
        // between only across iterations, so the count must equal the
        // *build-time* epoch exactly (never a blend of two sizes).
        MatchEngine engine(table, AllRows(table));
        const size_t built = engine.rows().size();
        auto bm = engine.Match(pred);
        if (!bm.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (bm->num_bits() != built ||
            bm->CountOnes() != std::min<size_t>(built, 100)) {
          failures.fetch_add(1);
        } else {
          epoch_hits.fetch_add(1);
        }
      }
    });
  }

  // One long-lived engine probing for staleness: every call after any
  // append must be the stale error, never a wrong-sized bitmap.
  std::thread stale_prober([&] {
    std::unique_lock<std::mutex> lock(mu);
    MatchEngine engine(table, AllRows(table));
    const size_t built = engine.rows().size();
    const Predicate pred(
        {Clause::Make("v", CompareOp::kLt, Value(100.0))});
    DBW_CHECK_OK(engine.Materialize({&pred}));
    lock.unlock();
    while (!stop.load()) {
      lock.lock();
      const size_t now = table.num_rows();
      auto bm = engine.Match(pred);
      if (now != built) {
        // Grown table: stale error is the only acceptable answer.
        if (bm.ok()) failures.fetch_add(1);
        if (bm.status().ToString().find("stale") != std::string::npos) {
          stale_hits.fetch_add(1);
        }
      } else if (!bm.ok() || bm->num_bits() != built) {
        failures.fetch_add(1);
      }
      lock.unlock();
      std::this_thread::yield();
    }
  });

  appender.join();
  for (std::thread& t : matchers) t.join();
  stale_prober.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(epoch_hits.load(), 0u);
  EXPECT_GT(stale_hits.load(), 0u) << "prober never saw the grown table";
}

TEST(CacheStalenessTest, InterruptedMaterializeLeavesNoTornCacheEntries) {
  // A Materialize wound down mid-scan (deadline) must roll its fresh
  // entries back: a later unrestricted Materialize then produces the
  // same bitmaps as a never-interrupted engine.
  Table table(Schema{{"v", DataType::kDouble}}, "t");
  AppendRows(&table, 5000);
  std::vector<const Predicate*> preds;
  std::vector<Predicate> storage;
  storage.reserve(64);
  for (int i = 0; i < 64; ++i) {
    storage.push_back(Predicate(
        {Clause::Make("v", CompareOp::kLt, Value(static_cast<double>(i)))}));
  }
  for (const Predicate& p : storage) preds.push_back(&p);

  MatchEngine interrupted(table, AllRows(table));
  ExecContext ctx;
  ctx.deadline = Deadline::After(-1.0);  // expires instantly
  ParallelOptions popts;
  popts.ctx = &ctx;
  Status st = interrupted.Materialize(preds, popts);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInterrupt()) << st.ToString();
  EXPECT_EQ(interrupted.num_cached_clauses(), 0u)
      << "interrupted scan left partially-filled bitmaps cached";

  // Same engine, no interruption: results match a clean engine's.
  ASSERT_TRUE(interrupted.Materialize(preds).ok());
  MatchEngine clean(table, AllRows(table));
  ASSERT_TRUE(clean.Materialize(preds).ok());
  for (const Predicate* p : preds) {
    auto a = interrupted.MatchPrepared(*p);
    auto b = clean.MatchPrepared(*p);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->CountOnes(), b->CountOnes());
  }
}

}  // namespace
}  // namespace dbwipes
