// F2/F3/F5/F6: the dashboard components render what a user of the demo
// would see — query form with accumulated cleaning, scatterplot with
// brushing, the dynamically offered error forms, the ranked list.

#include <gtest/gtest.h>

#include "dbwipes/common/random.h"
#include "dbwipes/expr/parser.h"
#include "dbwipes/viz/dashboard.h"
#include "dbwipes/viz/scatterplot.h"

namespace dbwipes {
namespace {

std::shared_ptr<Database> MakeDb() {
  Rng rng(23);
  auto t = std::make_shared<Table>(Schema{{"g", DataType::kInt64},
                                          {"tag", DataType::kString},
                                          {"v", DataType::kDouble}},
                                   "w");
  for (int g = 0; g < 6; ++g) {
    for (int i = 0; i < 30; ++i) {
      const bool bad = g == 5 && i < 10;
      DBW_CHECK_OK(t->AppendRow({Value(static_cast<int64_t>(g)),
                                 Value(bad ? "bad" : "fine"),
                                 Value(bad ? rng.Normal(60, 1)
                                           : rng.Normal(10, 1))}));
    }
  }
  auto db = std::make_shared<Database>();
  db->RegisterTable(t);
  return db;
}

QueryResult RunAvgQuery(const Database& db) {
  return *db.ExecuteSql("SELECT g, avg(v) AS a FROM w GROUP BY g");
}

// ---------- scatterplot ----------

TEST(ScatterPlotTest, PointsFollowGroupsAndValues) {
  auto db = MakeDb();
  QueryResult r = RunAvgQuery(*db);
  ScatterPlot plot = *ScatterPlot::FromResult(r, "a");
  ASSERT_EQ(plot.points().size(), 6u);
  EXPECT_EQ(plot.x_label(), "g");
  EXPECT_EQ(plot.y_label(), "a");
  EXPECT_DOUBLE_EQ(plot.points()[2].x, 2.0);
  EXPECT_NEAR(plot.points()[0].y, 10.0, 1.0);
  EXPECT_NEAR(plot.points()[5].y, 10.0 * 2.0 / 3.0 + 60.0 / 3.0, 2.0);
}

TEST(ScatterPlotTest, BrushSelectsInsideRectangle) {
  auto db = MakeDb();
  QueryResult r = RunAvgQuery(*db);
  ScatterPlot plot = *ScatterPlot::FromResult(r, "a");
  auto selected = plot.BrushY(20.0, 100.0);
  EXPECT_EQ(selected, (std::vector<size_t>{5}));
  // Brushing accumulates.
  plot.BrushY(0.0, 15.0);
  EXPECT_EQ(plot.SelectedGroups().size(), 6u);
  plot.ClearSelection();
  EXPECT_TRUE(plot.SelectedGroups().empty());
}

TEST(ScatterPlotTest, ExplicitXColumn) {
  auto db = MakeDb();
  QueryResult r = RunAvgQuery(*db);
  ScatterPlot plot = *ScatterPlot::FromResult(r, "a", "g");
  EXPECT_EQ(plot.x_label(), "g");
  EXPECT_TRUE(ScatterPlot::FromResult(r, "a", "zz").status().IsNotFound());
  EXPECT_TRUE(ScatterPlot::FromResult(r, "zz").status().IsNotFound());
}

TEST(ScatterPlotTest, NoGroupByUsesOrdinalX) {
  auto db = MakeDb();
  QueryResult r = *db->ExecuteSql("SELECT avg(v) AS a FROM w");
  ScatterPlot plot = *ScatterPlot::FromResult(r, "a");
  ASSERT_EQ(plot.points().size(), 1u);
  EXPECT_EQ(plot.x_label(), "group");
}

TEST(ScatterPlotTest, CategoricalGroupKeyPlots) {
  auto db = MakeDb();
  QueryResult r = *db->ExecuteSql("SELECT tag, avg(v) AS a FROM w GROUP BY tag");
  ScatterPlot plot = *ScatterPlot::FromResult(r, "a");
  ASSERT_EQ(plot.points().size(), 2u);
  EXPECT_NE(plot.points()[0].x, plot.points()[1].x);
}

TEST(ScatterPlotTest, NullAggregatesAreNotDrawable) {
  Table t(Schema{{"g", DataType::kInt64}, {"v", DataType::kDouble}}, "w");
  DBW_CHECK_OK(t.AppendRow({Value(int64_t{0}), Value(1.0)}));
  DBW_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value::Null()}));
  QueryResult r = *ExecuteQuery(
      *ParseQuery("SELECT g, avg(v) AS a FROM w GROUP BY g"), t);
  ScatterPlot plot = *ScatterPlot::FromResult(r, "a");
  EXPECT_TRUE(plot.points()[0].drawable);
  EXPECT_FALSE(plot.points()[1].drawable);
  // Render must not crash with partially drawable data.
  EXPECT_FALSE(plot.Render().empty());
}

TEST(ScatterPlotTest, RenderMarksSelection) {
  auto db = MakeDb();
  QueryResult r = RunAvgQuery(*db);
  ScatterPlot plot = *ScatterPlot::FromResult(r, "a");
  plot.BrushY(20.0, 100.0);
  const std::string s = plot.Render(40, 10);
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find('*'), std::string::npos);
  EXPECT_NE(s.find("a ("), std::string::npos);  // y-axis label
}

TEST(ScatterPlotTest, RenderHandlesDegenerateRanges) {
  Table t(Schema{{"g", DataType::kInt64}, {"v", DataType::kDouble}}, "w");
  DBW_CHECK_OK(t.AppendRow({Value(int64_t{0}), Value(5.0)}));
  QueryResult r = *ExecuteQuery(
      *ParseQuery("SELECT g, avg(v) AS a FROM w GROUP BY g"), t);
  ScatterPlot plot = *ScatterPlot::FromResult(r, "a");
  EXPECT_FALSE(plot.Render().empty());  // single point, zero extent
}

// ---------- dashboard ----------

TEST(DashboardTest, QueryFormShowsSqlAndCleaningState) {
  Session session(MakeDb());
  Dashboard dash(&session);
  EXPECT_NE(dash.RenderQueryForm().find("(no query)"), std::string::npos);
  ASSERT_TRUE(
      session.ExecuteSql("SELECT g, avg(v) AS a FROM w GROUP BY g").ok());
  EXPECT_NE(dash.RenderQueryForm().find("SELECT g, avg(v) AS a FROM w"),
            std::string::npos);
  ASSERT_TRUE(session
                  .ApplyPredicateDirect(Predicate(
                      {Clause::Make("tag", CompareOp::kEq, Value("bad"))}))
                  .ok());
  const std::string form = dash.RenderQueryForm();
  EXPECT_NE(form.find("cleaning predicates applied"), std::string::npos);
  EXPECT_NE(form.find("tag = 'bad'"), std::string::npos);
}

TEST(DashboardTest, ErrorFormsListSuggestions) {
  Session session(MakeDb());
  ASSERT_TRUE(
      session.ExecuteSql("SELECT g, avg(v) AS a FROM w GROUP BY g").ok());
  ASSERT_TRUE(session.SelectResultsInRange("a", 20.0, 100.0).ok());
  Dashboard dash(&session);
  const std::string forms = *dash.RenderErrorForms();
  EXPECT_NE(forms.find("[0] values are too high"), std::string::npos);
  EXPECT_NE(forms.find("default expected"), std::string::npos);
}

TEST(DashboardTest, RankedPredicatesRenderAfterDebug) {
  Session session(MakeDb());
  ASSERT_TRUE(
      session.ExecuteSql("SELECT g, avg(v) AS a FROM w GROUP BY g").ok());
  Dashboard dash(&session);
  EXPECT_NE(dash.RenderRankedPredicates().find("click debug! first"),
            std::string::npos);
  ASSERT_TRUE(session.SelectResultsInRange("a", 20.0, 100.0).ok());
  ASSERT_TRUE(session.SetMetric(TooHigh(12.0)).ok());
  ASSERT_TRUE(session.Debug().ok());
  const std::string list = dash.RenderRankedPredicates();
  EXPECT_NE(list.find("tag = 'bad'"), std::string::npos);
  EXPECT_NE(list.find("score="), std::string::npos);
  EXPECT_NE(list.find("err_improvement="), std::string::npos);
}

TEST(DashboardTest, ProfilePanelRendersAfterDebug) {
  Session session(MakeDb());
  ASSERT_TRUE(
      session.ExecuteSql("SELECT g, avg(v) AS a FROM w GROUP BY g").ok());
  Dashboard dash(&session);
  EXPECT_NE(dash.RenderProfile().find("click debug! first"),
            std::string::npos);
  ASSERT_TRUE(session.SelectResultsInRange("a", 20.0, 100.0).ok());
  ASSERT_TRUE(session.SetMetric(TooHigh(12.0)).ok());
  ASSERT_TRUE(session.Debug().ok());
  const std::string panel = dash.RenderProfile();
  EXPECT_NE(panel.find("=== Profile ==="), std::string::npos);
  for (const char* stage : {"preprocess", "enumerate", "predicates",
                            "materialize", "score", "rank", "total"}) {
    EXPECT_NE(panel.find(stage), std::string::npos) << stage;
  }
  EXPECT_NE(panel.find("pool:"), std::string::npos);
  // A complete run never renders the PARTIAL marker.
  EXPECT_EQ(panel.find("PARTIAL"), std::string::npos);
}

TEST(DashboardTest, RenderAllComposes) {
  Session session(MakeDb());
  ASSERT_TRUE(
      session.ExecuteSql("SELECT g, avg(v) AS a FROM w GROUP BY g").ok());
  Dashboard dash(&session);
  const std::string all = *dash.RenderAll();
  EXPECT_NE(all.find("=== Query ==="), std::string::npos);
  EXPECT_NE(all.find("=== Visualization ==="), std::string::npos);
  EXPECT_NE(all.find("=== Ranked predicates ==="), std::string::npos);
}

}  // namespace
}  // namespace dbwipes
