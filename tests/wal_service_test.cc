// Service-level WAL integration: restart recovery (snapshot + replay)
// must reproduce sessions, appended rows, and process settings; the
// `clean <i>` → `clean_where <pred>` rewrite must replay without a
// preceding debug; checkpoints must truncate the log; a WAL append
// failure must surface the durability-lost response while leaving the
// in-memory state applied. The restore oracle throughout is the same
// as snapshot_test's: a recovered session's `debug` reproduces the
// pre-crash ranking byte for byte.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dbwipes/common/random.h"
#include "dbwipes/core/service.h"
#include "dbwipes/core/snapshot.h"

namespace dbwipes {
namespace {

std::string TempWalDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" +
                          std::to_string(::getpid()) + "_" + name;
  std::system(("rm -rf '" + dir + "'").c_str());
  return dir;
}

std::shared_ptr<Database> MakeDb() {
  Rng rng(53);
  auto t = std::make_shared<Table>(Schema{{"g", DataType::kInt64},
                                          {"tag", DataType::kString},
                                          {"v", DataType::kDouble}},
                                   "w");
  for (int g = 0; g < 4; ++g) {
    for (int i = 0; i < 40; ++i) {
      const bool bad = g >= 2 && i < 8;
      DBW_CHECK_OK(t->AppendRow({Value(static_cast<int64_t>(g)),
                                 Value(bad ? "bad" : "fine"),
                                 Value(bad ? rng.Normal(100, 2)
                                           : rng.Normal(10, 2))}));
    }
  }
  auto db = std::make_shared<Database>();
  db->RegisterTable(t);
  return db;
}

ServiceOptions WalOptionsAt(const std::string& dir) {
  ServiceOptions options;
  options.wal.dir = dir;
  return options;
}

/// Drops the per-request `"rid": N` field so two responses for the
/// same logical command compare equal.
std::string StripRid(std::string response) {
  const size_t pos = response.find(", \"rid\": ");
  if (pos == std::string::npos) return response;
  size_t end = pos + 9;
  while (end < response.size() && response[end] >= '0' && response[end] <= '9')
    ++end;
  return response.erase(pos, end - pos);
}

bool IsOk(const std::string& response) {
  return response.compare(0, 11, "{\"ok\": true") == 0;
}

/// Pulls `"key": <number>` out of a flat JSON response.
long long JsonInt(const std::string& response, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const size_t at = response.find(needle);
  EXPECT_NE(at, std::string::npos) << key << " missing in " << response;
  if (at == std::string::npos) return -1;
  return std::strtoll(response.c_str() + at + needle.size(), nullptr, 10);
}

bool JsonBool(const std::string& response, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const size_t at = response.find(needle);
  EXPECT_NE(at, std::string::npos) << key << " missing in " << response;
  return at != std::string::npos &&
         response.compare(at + needle.size(), 4, "true") == 0;
}

/// The deterministic tail of a debug response (ranked predicates);
/// excludes wall-clock timings.
std::string RankedPredicates(const std::string& debug_response) {
  const size_t at = debug_response.find("\"predicates\":[");
  EXPECT_NE(at, std::string::npos) << debug_response.substr(0, 200);
  return debug_response.substr(at);
}

TEST(WalServiceTest, RestartRecoversSessionsRowsAndSettings) {
  const std::string dir = TempWalDir("svc_restart");
  std::string ranking_before;
  {
    Service service(MakeDb(), WalOptionsAt(dir));
    ASSERT_TRUE(IsOk(service.Execute(
        "sql SELECT g, avg(v) AS a FROM w GROUP BY g")));
    ASSERT_TRUE(IsOk(service.Execute("clean_where v > 200")));
    ASSERT_TRUE(IsOk(service.Execute("select_range a 20 1e9")));
    ASSERT_TRUE(IsOk(service.Execute("metric too_high 12")));
    ASSERT_TRUE(IsOk(service.Execute(
        "@side sql SELECT g, sum(v) AS s FROM w GROUP BY g")));
    ASSERT_TRUE(IsOk(service.Execute("retry 5 12.5")));
    ASSERT_TRUE(IsOk(service.Execute("shards w 4")));
    ASSERT_TRUE(IsOk(service.Execute("append w 9 extra 42.0")));
    ASSERT_TRUE(IsOk(service.Execute("append w 9 extra 43.0")));
    ranking_before = RankedPredicates(service.Execute("debug"));
  }
  {
    Service service(MakeDb(), WalOptionsAt(dir));
    const std::string status = service.Execute("wal status");
    ASSERT_TRUE(IsOk(status)) << status;
    EXPECT_TRUE(JsonBool(status, "enabled"));
    EXPECT_EQ(JsonInt(status, "replay_errors"), 0) << status;

    // Sessions and their full state came back...
    const std::string state = service.Execute("state");
    EXPECT_TRUE(JsonBool(state, "has_result")) << state;
    EXPECT_EQ(JsonInt(state, "num_applied_predicates"), 1) << state;
    EXPECT_TRUE(JsonBool(service.Execute("@side state"), "has_result"));
    // ...the appended rows survived (4*40 seed + 2 appends)...
    const std::string append = service.Execute("append w 9 extra 44.0");
    ASSERT_TRUE(IsOk(append)) << append;
    EXPECT_EQ(JsonInt(append, "rows"), 163) << append;
    // ...and the recovered world reproduces the ranking byte for byte.
    EXPECT_EQ(RankedPredicates(service.Execute("debug")), ranking_before);
  }
}

TEST(WalServiceTest, CleanByRankReplaysWithoutADebug) {
  const std::string dir = TempWalDir("svc_clean");
  std::string state_before;
  {
    Service service(MakeDb(), WalOptionsAt(dir));
    ASSERT_TRUE(IsOk(service.Execute(
        "sql SELECT g, avg(v) AS a FROM w GROUP BY g")));
    ASSERT_TRUE(IsOk(service.Execute("select_range a 20 1e9")));
    ASSERT_TRUE(IsOk(service.Execute("metric too_high 12")));
    ASSERT_TRUE(IsOk(service.Execute("debug")));
    // `clean 0` names a rank in that explanation — the log must carry
    // the RESOLVED predicate, because recovery never re-runs debug.
    ASSERT_TRUE(IsOk(service.Execute("clean 0")));
    state_before = service.Execute("result");
  }
  {
    Service service(MakeDb(), WalOptionsAt(dir));
    const std::string state = service.Execute("state");
    EXPECT_EQ(JsonInt(state, "num_applied_predicates"), 1) << state;
    EXPECT_EQ(StripRid(service.Execute("result")), StripRid(state_before));
  }
}

TEST(WalServiceTest, CheckpointTruncatesAndSkipsReplay) {
  const std::string dir = TempWalDir("svc_ckpt");
  {
    Service service(MakeDb(), WalOptionsAt(dir));
    ASSERT_TRUE(IsOk(service.Execute(
        "sql SELECT g, avg(v) AS a FROM w GROUP BY g")));
    ASSERT_TRUE(IsOk(service.Execute("shards w 4")));
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(IsOk(service.Execute("append w 1 fine 10.0")));
    }
    const std::string before = service.Execute("wal status");
    ASSERT_GT(JsonInt(before, "wal_bytes"), 0) << before;

    const std::string ckpt = service.Execute("wal checkpoint");
    ASSERT_TRUE(IsOk(ckpt)) << ckpt;
    const std::string after = service.Execute("wal status");
    // Everything durable is now covered by the snapshot; the log is
    // one empty active segment.
    EXPECT_EQ(JsonInt(after, "snapshot_lsn"), JsonInt(after, "durable_lsn"));
    EXPECT_EQ(JsonInt(after, "segments"), 1) << after;
    EXPECT_EQ(JsonInt(after, "wal_bytes"), 0) << after;
  }
  {
    Service service(MakeDb(), WalOptionsAt(dir));
    const std::string status = service.Execute("wal status");
    // Recovery came entirely from the snapshot — nothing to replay.
    EXPECT_EQ(JsonInt(status, "replayed"), 0) << status;
    EXPECT_EQ(JsonInt(status, "replay_errors"), 0) << status;
    const std::string append = service.Execute("append w 1 fine 10.0");
    ASSERT_TRUE(IsOk(append)) << append;
    EXPECT_EQ(JsonInt(append, "rows"), 171);  // 160 seed + 10 + this one
  }
}

TEST(WalServiceTest, AutoCheckpointFiresOnLogGrowth) {
  const std::string dir = TempWalDir("svc_autockpt");
  ServiceOptions options = WalOptionsAt(dir);
  options.wal.checkpoint_bytes = 512;  // tiny: a few appends trip it
  Service service(MakeDb(), options);
  ASSERT_TRUE(IsOk(service.Execute("shards w 4")));
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(IsOk(service.Execute("append w 1 fine 10.0")));
  }
  const std::string status = service.Execute("wal status");
  EXPECT_GE(JsonInt(status, "checkpoints"), 1) << status;
  EXPECT_LT(JsonInt(status, "wal_bytes"), 2048) << status;
}

TEST(WalServiceTest, WalOnOffLifecycle) {
  const std::string dir = TempWalDir("svc_onoff");
  Service service(MakeDb());  // starts with the WAL off
  EXPECT_FALSE(JsonBool(service.Execute("wal status"), "enabled"));
  EXPECT_FALSE(IsOk(service.Execute("wal off")));  // already off

  ASSERT_TRUE(IsOk(service.Execute("wal on " + dir)));
  EXPECT_FALSE(IsOk(service.Execute("wal on " + dir)));  // already on
  ASSERT_TRUE(IsOk(service.Execute(
      "sql SELECT g, avg(v) AS a FROM w GROUP BY g")));
  // `wal off` seals the state into the snapshot before dropping the
  // log, so a later recovery from the same dir still sees everything.
  ASSERT_TRUE(IsOk(service.Execute("wal off")));
  EXPECT_FALSE(JsonBool(service.Execute("wal status"), "enabled"));

  Service recovered(MakeDb(), WalOptionsAt(dir));
  EXPECT_TRUE(JsonBool(recovered.Execute("state"), "has_result"));
  EXPECT_EQ(JsonInt(recovered.Execute("wal status"), "replay_errors"), 0);
}

TEST(WalServiceTest, UnknownSubcommandAndUsageErrors) {
  Service service(MakeDb());
  EXPECT_FALSE(IsOk(service.Execute("wal")));
  EXPECT_FALSE(IsOk(service.Execute("wal bogus")));
  EXPECT_FALSE(IsOk(service.Execute("wal on")));
  EXPECT_FALSE(IsOk(service.Execute("wal checkpoint")));  // off
}

TEST(WalServiceTest, WalAppendFailureReportsDurabilityLost) {
  const std::string dir = TempWalDir("svc_lost");
  FaultInjector faults;
  ServiceOptions options = WalOptionsAt(dir);
  options.wal.faults = &faults;
  Service service(MakeDb(), options);

  FaultInjector::Fault fault;
  fault.status = Status::IoError("injected EIO");
  fault.count = 1;
  faults.Arm("wal/write", fault);
  const std::string response =
      service.Execute("sql SELECT g, avg(v) AS a FROM w GROUP BY g");
  // The gray zone: applied in memory, not durable — and explicitly NOT
  // retryable (re-running would double-apply).
  EXPECT_FALSE(IsOk(response)) << response;
  EXPECT_NE(response.find("\"durability\": \"lost\""), std::string::npos)
      << response;
  EXPECT_NE(response.find("\"applied\": true"), std::string::npos) << response;
  EXPECT_EQ(response.find("\"retryable\""), std::string::npos) << response;
  // Applied in memory:
  EXPECT_TRUE(JsonBool(service.Execute("state"), "has_result"));
}

TEST(WalServiceTest, SnapshotLoadCheckpointsUnderWal) {
  const std::string wal_dir = TempWalDir("svc_load");
  const std::string snap_path =
      ::testing::TempDir() + "/" + std::to_string(::getpid()) + "_world.dbw";
  // Build a snapshot of a populated world with the WAL off.
  {
    Service service(MakeDb());
    ASSERT_TRUE(IsOk(service.Execute(
        "sql SELECT g, avg(v) AS a FROM w GROUP BY g")));
    ASSERT_TRUE(IsOk(service.Execute("snapshot save " + snap_path)));
  }
  // Load it into a WAL-enabled service: the load must checkpoint so
  // the log base matches the new world...
  {
    Service service(MakeDb(), WalOptionsAt(wal_dir));
    ASSERT_TRUE(IsOk(service.Execute("snapshot load " + snap_path)));
    EXPECT_GE(JsonInt(service.Execute("wal status"), "checkpoints"), 1);
  }
  // ...and a restart recovers the LOADED world, not the constructor's.
  {
    Service service(MakeDb(), WalOptionsAt(wal_dir));
    EXPECT_TRUE(JsonBool(service.Execute("state"), "has_result"));
  }
  std::remove(snap_path.c_str());
}

TEST(WalServiceTest, RetrySettingsSurviveCheckpointTruncation) {
  const std::string dir = TempWalDir("svc_retry");
  {
    Service service(MakeDb(), WalOptionsAt(dir));
    ASSERT_TRUE(IsOk(service.Execute("retry 7 33.5")));
    // The checkpoint truncates the logged `retry` record — the
    // snapshot itself must carry the knobs (v3 fields).
    ASSERT_TRUE(IsOk(service.Execute("wal checkpoint")));
  }
  {
    Service service(MakeDb(), WalOptionsAt(dir));
    ASSERT_EQ(JsonInt(service.Execute("wal status"), "replayed"), 0);
    // `retry off` echoes by resetting max_attempts to 1; to observe the
    // recovered value we snapshot the service state directly.
    ServiceSnapshot snapshot;
    const std::string probe =
        ::testing::TempDir() + "/" + std::to_string(::getpid()) + "_probe.dbw";
    ASSERT_TRUE(IsOk(service.Execute("snapshot save " + probe)));
    auto read = ReadSnapshot(probe);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    EXPECT_EQ(read->retry_max_attempts, 7u);
    EXPECT_DOUBLE_EQ(read->retry_backoff_ms, 33.5);
    std::remove(probe.c_str());
  }
}

TEST(WalServiceTest, ConcurrentClientsShareGroupCommitFsyncs) {
  const std::string dir = TempWalDir("svc_group");
  FaultInjector faults;
  // Make each fsync visibly slow so commits queue up behind the
  // in-flight one; the service must stage under its ordering lock but
  // wait OUTSIDE it, or clients serialize and fsyncs/append stays 1.
  FaultInjector::Fault slow;
  slow.latency_ms = 2.0;
  slow.count = 0;  // every fsync
  faults.Arm("wal/fsync", slow);
  ServiceOptions options = WalOptionsAt(dir);
  options.wal.faults = &faults;
  Service service(MakeDb(), options);
  ASSERT_TRUE(IsOk(service.Execute("shards w 4")));

  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 25;
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&service] {
      for (size_t i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(IsOk(service.Execute("append w 1 fine 10.0")));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const std::string status = service.Execute("wal status");
  const long long appends = JsonInt(status, "appends");
  const long long fsyncs = JsonInt(status, "fsyncs");
  EXPECT_GE(appends, static_cast<long long>(kThreads * kPerThread)) << status;
  EXPECT_LT(fsyncs, appends) << status;

  // And every acknowledged append survives a restart.
  Service recovered(MakeDb(), WalOptionsAt(dir));
  const std::string append = recovered.Execute("append w 1 fine 10.0");
  ASSERT_TRUE(IsOk(append)) << append;
  EXPECT_EQ(JsonInt(append, "rows"),
            static_cast<long long>(160 + kThreads * kPerThread + 1));
}

}  // namespace
}  // namespace dbwipes
