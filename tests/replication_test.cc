// Primary/follower replication (DESIGN.md §5l): wire protocol framing,
// epoch persistence, live WAL streaming into a read-only follower,
// snapshot catch-up once the primary has truncated, follower restart
// resume, promote + epoch fencing in both directions, and the
// repl/* fault-site matrix (reconnect with backoff, corrupt-frame
// detection). The replica-correctness oracle throughout: a follower's
// `debug` ranking is byte-identical to the primary's.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dbwipes/common/metrics.h"
#include "dbwipes/common/random.h"
#include "dbwipes/common/retry.h"
#include "dbwipes/core/service.h"
#include "dbwipes/replication/replication.h"

namespace dbwipes {
namespace {

std::string TempDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" +
                          std::to_string(::getpid()) + "_repl_" + name;
  std::system(("rm -rf '" + dir + "'").c_str());
  return dir;
}

std::shared_ptr<Database> MakeDb() {
  Rng rng(53);
  auto t = std::make_shared<Table>(Schema{{"g", DataType::kInt64},
                                          {"tag", DataType::kString},
                                          {"v", DataType::kDouble}},
                                   "w");
  for (int g = 0; g < 4; ++g) {
    for (int i = 0; i < 40; ++i) {
      const bool bad = g >= 2 && i < 8;
      DBW_CHECK_OK(t->AppendRow({Value(static_cast<int64_t>(g)),
                                 Value(bad ? "bad" : "fine"),
                                 Value(bad ? rng.Normal(100, 2)
                                           : rng.Normal(10, 2))}));
    }
  }
  auto db = std::make_shared<Database>();
  db->RegisterTable(t);
  return db;
}

bool IsOk(const std::string& response) {
  return response.compare(0, 11, "{\"ok\": true") == 0;
}

long long JsonInt(const std::string& response, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const size_t at = response.find(needle);
  EXPECT_NE(at, std::string::npos) << key << " missing in " << response;
  if (at == std::string::npos) return -1;
  return std::strtoll(response.c_str() + at + needle.size(), nullptr, 10);
}

bool JsonBool(const std::string& response, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const size_t at = response.find(needle);
  EXPECT_NE(at, std::string::npos) << key << " missing in " << response;
  return at != std::string::npos &&
         response.compare(at + needle.size(), 4, "true") == 0;
}

bool WaitUntil(const std::function<bool()>& pred, double timeout_ms = 15000) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(static_cast<long>(timeout_ms));
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

/// The deterministic tail of a debug response (ranked predicates).
std::string RankedPredicates(const std::string& debug_response) {
  const size_t at = debug_response.find("\"predicates\":[");
  EXPECT_NE(at, std::string::npos) << debug_response.substr(0, 200);
  return at == std::string::npos ? debug_response : debug_response.substr(at);
}

ServiceOptions PrimaryOptions(const std::string& dir,
                              FaultInjector* faults = nullptr) {
  ServiceOptions options;
  options.wal.dir = dir;
  options.replication.listen_port = 0;  // ephemeral
  options.replication.faults = faults;
  return options;
}

ServiceOptions FollowerOptions(const std::string& wal_dir, int primary_port,
                               FaultInjector* faults = nullptr) {
  ServiceOptions options;
  options.wal.dir = wal_dir;  // may be empty: memory-only follower
  options.replication.follow = "127.0.0.1:" + std::to_string(primary_port);
  options.replication.heartbeat_timeout_ms = 500.0;
  options.replication.reconnect.initial_backoff_ms = 5.0;
  options.replication.reconnect.max_backoff_ms = 50.0;
  options.replication.faults = faults;
  return options;
}

int PrimaryPort(Service& primary) {
  const std::string status = primary.Execute("replication status");
  EXPECT_TRUE(JsonBool(status, "listening")) << status;
  return static_cast<int>(JsonInt(status, "port"));
}

uint64_t PrimaryDurableLsn(Service& primary) {
  return static_cast<uint64_t>(
      JsonInt(primary.Execute("wal status"), "durable_lsn"));
}

bool FollowerCaughtUp(Service& follower, uint64_t lsn) {
  return static_cast<uint64_t>(JsonInt(follower.Execute("replication status"),
                                       "last_applied_lsn")) >= lsn;
}

/// Identical session/query setup on the primary; the stream must carry
/// all of it to the follower.
void RunPrimaryWorkload(Service& primary, int appends) {
  ASSERT_TRUE(IsOk(
      primary.Execute("sql SELECT g, avg(v) AS a FROM w GROUP BY g")));
  ASSERT_TRUE(IsOk(primary.Execute("select_range a 20 1e9")));
  ASSERT_TRUE(IsOk(primary.Execute("metric too_high 12")));
  ASSERT_TRUE(IsOk(primary.Execute("shards w 4")));
  for (int i = 0; i < appends; ++i) {
    ASSERT_TRUE(IsOk(primary.Execute(
        "append w 9 extra " + std::to_string(50.0 + i))));
  }
}

// --- Protocol ---

TEST(ReplicationProtocolTest, MessageRoundTripOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

  ReplMessage out;
  out.type = ReplMsgType::kFrame;
  out.a = 42;
  out.b = 7;
  out.payload = "append w 9 extra 50";
  out.c = ReplFrameChecksum(out.a, out.b, WriteAheadLog::kRecordCommand,
                            out.payload);
  ASSERT_TRUE(WriteReplMessage(fds[0], out).ok());

  ReplMessage in;
  ASSERT_TRUE(ReadReplMessage(fds[1], &in).ok());
  EXPECT_EQ(in.type, ReplMsgType::kFrame);
  EXPECT_EQ(in.a, out.a);
  EXPECT_EQ(in.b, out.b);
  EXPECT_EQ(in.c, out.c);
  EXPECT_EQ(in.payload, out.payload);
  // The checksum binds header AND body: any flip breaks it.
  std::string damaged = in.payload;
  damaged[0] ^= 1;
  EXPECT_NE(ReplFrameChecksum(in.a, in.b, WriteAheadLog::kRecordCommand,
                              damaged),
            in.c);
  EXPECT_NE(ReplFrameChecksum(in.a + 1, in.b,
                              WriteAheadLog::kRecordCommand, in.payload),
            in.c);

  // An empty-payload heartbeat round-trips too.
  ReplMessage hb;
  hb.type = ReplMsgType::kHeartbeat;
  hb.a = 3;
  hb.b = 99;
  ASSERT_TRUE(WriteReplMessage(fds[0], hb).ok());
  ASSERT_TRUE(ReadReplMessage(fds[1], &in).ok());
  EXPECT_EQ(in.type, ReplMsgType::kHeartbeat);
  EXPECT_EQ(in.b, 99u);

  // Peer close surfaces as a clean error, not a hang.
  ::close(fds[0]);
  EXPECT_FALSE(ReadReplMessage(fds[1], &in).ok());
  ::close(fds[1]);
}

TEST(ReplicationProtocolTest, EpochFilePersistsAndRejectsGarbage) {
  const std::string dir = TempDir("epoch");
  ASSERT_EQ(std::system(("mkdir -p '" + dir + "'").c_str()), 0);

  // Absent file: epoch 1, not an error (fresh node).
  auto epoch = LoadReplicationEpoch(dir);
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, 1u);

  ASSERT_TRUE(StoreReplicationEpoch(dir, 7).ok());
  epoch = LoadReplicationEpoch(dir);
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, 7u);

  // A malformed file must refuse to guess, not default to 1 (that
  // could resurrect a fenced primary at a stale epoch).
  FILE* f = std::fopen((dir + "/repl-epoch").c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("not an epoch\n", f);
  std::fclose(f);
  EXPECT_FALSE(LoadReplicationEpoch(dir).ok());
}

// --- End-to-end streaming ---

TEST(ReplicationTest, StreamsMutationsToFollowerWhichRejectsWrites) {
  Service primary(MakeDb(), PrimaryOptions(TempDir("stream_p")));
  const int port = PrimaryPort(primary);
  RunPrimaryWorkload(primary, 10);

  // Memory-only follower (no local WAL): applies the stream, serves
  // reads, rejects writes.
  Service follower(MakeDb(), FollowerOptions("", port));
  const uint64_t durable = PrimaryDurableLsn(primary);
  ASSERT_GT(durable, 0u);
  ASSERT_TRUE(WaitUntil([&] { return FollowerCaughtUp(follower, durable); }))
      << follower.Execute("replication status");

  // Reads work and agree with the primary, byte for byte.
  EXPECT_EQ(RankedPredicates(follower.Execute("debug")),
            RankedPredicates(primary.Execute("debug")));

  // Writes are rejected with the machine-readable retryable shape.
  const std::string rejected = follower.Execute("append w 9 extra 1.0");
  EXPECT_FALSE(IsOk(rejected));
  EXPECT_NE(rejected.find("\"reason\": \"not_primary\""), std::string::npos)
      << rejected;
  double retry_after_ms = 0.0;
  EXPECT_TRUE(ResponseRetryable(rejected, &retry_after_ms)) << rejected;
  EXPECT_GT(retry_after_ms, 0.0);
  EXPECT_FALSE(IsOk(follower.Execute("sql SELECT g FROM w GROUP BY g")));
  EXPECT_FALSE(IsOk(follower.Execute("wal on /tmp/nope")));
  // Reads and cancel stay allowed.
  EXPECT_TRUE(IsOk(follower.Execute("state")));
  EXPECT_TRUE(IsOk(follower.Execute("stats")));

  // New primary mutations keep flowing.
  ASSERT_TRUE(IsOk(primary.Execute("append w 9 extra 77.0")));
  const uint64_t durable2 = PrimaryDurableLsn(primary);
  EXPECT_TRUE(WaitUntil([&] { return FollowerCaughtUp(follower, durable2); }))
      << follower.Execute("replication status");

  // Lag/epoch/follower gauges surface in the shared registry (and thus
  // in Prometheus exposition and `history`).
  const std::string exposition = MetricsRegistry::Global().PrometheusText();
  EXPECT_NE(exposition.find("dbwipes_repl_connected_followers"),
            std::string::npos);
  EXPECT_NE(exposition.find("dbwipes_repl_epoch"), std::string::npos);
}

TEST(ReplicationTest, SnapshotCatchupAfterPrimaryTruncatedTheLog) {
  Service primary(MakeDb(), PrimaryOptions(TempDir("catchup_p")));
  const int port = PrimaryPort(primary);
  RunPrimaryWorkload(primary, 20);
  // Checkpoint + truncate: the pre-checkpoint records are gone from the
  // log, so a fresh follower cannot tail from zero.
  ASSERT_TRUE(IsOk(primary.Execute("wal checkpoint")));
  ASSERT_TRUE(IsOk(primary.Execute("append w 9 extra 99.0")));

  Service follower(MakeDb(), FollowerOptions(TempDir("catchup_f"), port));
  const uint64_t durable = PrimaryDurableLsn(primary);
  ASSERT_TRUE(WaitUntil([&] { return FollowerCaughtUp(follower, durable); }))
      << follower.Execute("replication status");

  const std::string status = follower.Execute("replication status");
  EXPECT_GE(JsonInt(status, "snapshot_installs"), 1) << status;
  EXPECT_EQ(RankedPredicates(follower.Execute("debug")),
            RankedPredicates(primary.Execute("debug")));
}

TEST(ReplicationTest, FollowerRestartResumesFromItsLocalLog) {
  Service primary(MakeDb(), PrimaryOptions(TempDir("resume_p")));
  const int port = PrimaryPort(primary);
  RunPrimaryWorkload(primary, 8);
  const std::string follower_dir = TempDir("resume_f");

  {
    Service follower(MakeDb(), FollowerOptions(follower_dir, port));
    const uint64_t durable = PrimaryDurableLsn(primary);
    ASSERT_TRUE(
        WaitUntil([&] { return FollowerCaughtUp(follower, durable); }));
  }  // follower "crashes" (destructor joins its threads)

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(IsOk(primary.Execute(
        "append w 9 extra " + std::to_string(200.0 + i))));
  }

  // Restart on the same dir: local WAL recovery seeds last_applied, the
  // stream resumes mid-log — no snapshot transfer needed.
  Service follower(MakeDb(), FollowerOptions(follower_dir, port));
  const uint64_t durable = PrimaryDurableLsn(primary);
  ASSERT_TRUE(WaitUntil([&] { return FollowerCaughtUp(follower, durable); }))
      << follower.Execute("replication status");
  const std::string status = follower.Execute("replication status");
  EXPECT_EQ(JsonInt(status, "snapshot_installs"), 0) << status;
  EXPECT_EQ(RankedPredicates(follower.Execute("debug")),
            RankedPredicates(primary.Execute("debug")));
}

// --- Promote + epoch fencing ---

TEST(ReplicationTest, PromoteMakesFollowerAPrimaryAndFencesTheOldOne) {
  const std::string a_dir = TempDir("fence_a");
  const std::string b_dir = TempDir("fence_b");
  Service a(MakeDb(), PrimaryOptions(a_dir));
  const int port = PrimaryPort(a);
  RunPrimaryWorkload(a, 6);

  Service b(MakeDb(), FollowerOptions(b_dir, port));
  const uint64_t durable = PrimaryDurableLsn(a);
  ASSERT_TRUE(WaitUntil([&] { return FollowerCaughtUp(b, durable); }));

  // Promote B: epoch bumps past everything it has seen, and B serves
  // writes again.
  const std::string promoted = b.Execute("promote");
  ASSERT_TRUE(IsOk(promoted)) << promoted;
  EXPECT_EQ(JsonInt(promoted, "epoch"), 2);
  EXPECT_TRUE(IsOk(b.Execute("append w 9 extra 300.0")));
  EXPECT_FALSE(IsOk(b.Execute("promote")));  // already a primary

  // B (epoch 2) dials the old primary A (epoch 1): A must refuse the
  // stream and fence itself.
  ASSERT_TRUE(IsOk(b.Execute("replicate from 127.0.0.1:" +
                             std::to_string(port))));
  ASSERT_TRUE(WaitUntil([&] {
    return JsonBool(a.Execute("replication status"), "fenced");
  })) << a.Execute("replication status");
  EXPECT_TRUE(WaitUntil([&] {
    return JsonBool(b.Execute("replication status"), "fenced_source");
  })) << b.Execute("replication status");
  EXPECT_GE(JsonInt(a.Execute("replication status"), "epoch_refusals"), 1);

  // The fenced stale primary: mutations rejected terminally, promotion
  // refused with an explicit epoch error.
  const std::string rejected = a.Execute("append w 9 extra 301.0");
  EXPECT_FALSE(IsOk(rejected));
  EXPECT_NE(rejected.find("\"reason\": \"fenced\""), std::string::npos)
      << rejected;
  EXPECT_EQ(rejected.find("\"retryable\""), std::string::npos) << rejected;
  const std::string promote_refused = a.Execute("promote");
  EXPECT_FALSE(IsOk(promote_refused));
  EXPECT_NE(promote_refused.find("epoch fenced"), std::string::npos)
      << promote_refused;
  EXPECT_NE(promote_refused.find("epoch 2"), std::string::npos)
      << promote_refused;

  // B's promoted epoch survives a restart (persisted before the
  // promotion was acknowledged).
  ASSERT_TRUE(IsOk(b.Execute("replicate stop")));
  {
    ServiceOptions options;
    options.wal.dir = b_dir;
    Service b2(MakeDb(), options);
    EXPECT_GE(JsonInt(b2.Execute("replication status"), "epoch"), 2);
  }
}

TEST(ReplicationTest, ReplicateCommandValidation) {
  Service service(MakeDb(), ServiceOptions{});
  // No WAL: cannot serve followers.
  EXPECT_FALSE(IsOk(service.Execute("replicate listen 0")));
  EXPECT_FALSE(IsOk(service.Execute("replicate from not-an-address")));
  EXPECT_FALSE(IsOk(service.Execute("replicate bogus")));
  EXPECT_FALSE(IsOk(service.Execute("replication bogus")));
  EXPECT_TRUE(IsOk(service.Execute("replication status")));
  EXPECT_TRUE(IsOk(service.Execute("replicate stop")));  // idempotent

  Service primary(MakeDb(), PrimaryOptions(TempDir("validate_p")));
  // Second listener refused; wal off refused while replication runs.
  EXPECT_FALSE(IsOk(primary.Execute("replicate listen 0")));
  const std::string wal_off = primary.Execute("wal off");
  EXPECT_FALSE(IsOk(wal_off));
  EXPECT_NE(wal_off.find("replicate stop"), std::string::npos) << wal_off;
}

// --- Fault matrix (reconnect, corruption, handshake adversity) ---

struct ReplFaultCase {
  const char* site;
  bool primary_side;  // arm on the primary's injector vs the follower's
  size_t count;       // fires this many times, then clears
};

class ReplicationFaultTest : public ::testing::TestWithParam<ReplFaultCase> {};

TEST_P(ReplicationFaultTest, StreamHealsAndConverges) {
  const ReplFaultCase fault_case = GetParam();
  FaultInjector primary_faults;
  FaultInjector follower_faults;

  std::string dir_name = std::string("fault_p_") + fault_case.site;
  for (char& c : dir_name) {
    if (c == '/') c = '_';
  }
  Service primary(MakeDb(), PrimaryOptions(TempDir(dir_name), &primary_faults));
  const int port = PrimaryPort(primary);
  RunPrimaryWorkload(primary, 6);
  // Force the snapshot path too, so repl/snapshot_chunk has traffic.
  ASSERT_TRUE(IsOk(primary.Execute("wal checkpoint")));
  ASSERT_TRUE(IsOk(primary.Execute("append w 9 extra 100.0")));

  FaultInjector::Fault fault;
  fault.status = Status::IoError(std::string("injected at ") +
                                 fault_case.site);
  fault.count = fault_case.count;
  (fault_case.primary_side ? primary_faults : follower_faults)
      .Arm(fault_case.site, fault);

  Service follower(MakeDb(), FollowerOptions("", port, &follower_faults));
  const uint64_t durable = PrimaryDurableLsn(primary);
  ASSERT_TRUE(WaitUntil([&] { return FollowerCaughtUp(follower, durable); }))
      << "site " << fault_case.site << ": "
      << follower.Execute("replication status");

  const std::string status = follower.Execute("replication status");
  EXPECT_EQ(RankedPredicates(follower.Execute("debug")),
            RankedPredicates(primary.Execute("debug")));
  // The armed site actually fired.
  EXPECT_GE((fault_case.primary_side ? primary_faults : follower_faults)
                .hits(fault_case.site),
            fault_case.count)
      << fault_case.site;
  if (std::string(fault_case.site) == "repl/corrupt_frame") {
    // Corruption was detected by checksum, not silently applied.
    EXPECT_GE(JsonInt(status, "corrupt_frames"), 1) << status;
  }
  if (!fault_case.primary_side ||
      std::string(fault_case.site) != "repl/connect") {
    // Every fault path tears the connection down; recovery goes
    // through reconnect-with-backoff.
    EXPECT_GE(JsonInt(status, "reconnects"), 1) << status;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllReplicationSites, ReplicationFaultTest,
    ::testing::Values(ReplFaultCase{"repl/connect", false, 2},
                      ReplFaultCase{"repl/handshake", true, 1},
                      ReplFaultCase{"repl/send_frame", true, 1},
                      ReplFaultCase{"repl/corrupt_frame", true, 1},
                      ReplFaultCase{"repl/snapshot_chunk", true, 1},
                      ReplFaultCase{"repl/recv_frame", false, 1},
                      ReplFaultCase{"repl/apply", false, 1}),
    [](const ::testing::TestParamInfo<ReplFaultCase>& info) {
      std::string name = info.param.site;
      for (char& c : name) {
        if (c == '/') c = '_';
      }
      return name;
    });

TEST(ReplicationFaultSitesTest, RegistryListsExactlyTheCompiledSites) {
  const std::vector<std::string>& sites = AllReplicationFaultSites();
  EXPECT_EQ(sites.size(), 7u);
  for (const std::string& site : sites) {
    EXPECT_EQ(site.compare(0, 5, "repl/"), 0) << site;
  }
}

}  // namespace
}  // namespace dbwipes
