// Sharded-storage tests: ShardSet construction/append/layout rules,
// ShardPlan universe partitioning, the per-shard MatchEngine cache,
// and the cache-retention regression the sharding exists to win —
// an append to the tail shard must leave every other shard's clause
// bitmaps warm, asserted through the per-lane cache-law counters in
// the ExplainProfile (hits + misses == lookups, misses == 0 on warm
// lanes).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dbwipes/common/random.h"
#include "dbwipes/core/dbwipes.h"
#include "dbwipes/expr/shard_cache.h"
#include "dbwipes/query/executor.h"
#include "dbwipes/storage/shard.h"

namespace dbwipes {
namespace {

/// Rows interleave groups (g = r % 4) so every contiguous range shard
/// owns suspects from the selected groups; g >= 2 rows are spoiled
/// with tag='bad' high readings.
std::shared_ptr<Table> MakeInterleavedTable(size_t rows = 200) {
  Rng rng(7);
  auto t = std::make_shared<Table>(Schema{{"g", DataType::kInt64},
                                          {"tag", DataType::kString},
                                          {"knob", DataType::kDouble},
                                          {"v", DataType::kDouble}},
                                   "w");
  for (size_t r = 0; r < rows; ++r) {
    const int64_t g = static_cast<int64_t>(r % 4);
    const bool bad = g >= 2 && rng.Bernoulli(0.2);
    DBW_CHECK_OK(t->AppendRow({Value(g), Value(bad ? "bad" : "fine"),
                               Value(rng.Normal(0, 1)),
                               Value(bad ? rng.Normal(100, 2)
                                         : rng.Normal(10, 2))}));
  }
  return t;
}

// ---------- ShardSet ----------

TEST(ShardSetTest, CreateSplitsEvenlyAndPreservesContent) {
  auto t = MakeInterleavedTable(10);
  auto set = *ShardSet::Create(*t, 4);
  EXPECT_EQ(set->name(), "w");
  EXPECT_EQ(set->num_shards(), 4u);
  EXPECT_EQ(set->num_rows(), 10u);
  // First rows % S shards get the extra row.
  EXPECT_EQ(set->ShardRowCounts(), (std::vector<size_t>{3, 3, 2, 2}));
  EXPECT_EQ(set->shard_begin(0), 0u);
  EXPECT_EQ(set->shard_begin(1), 3u);
  EXPECT_EQ(set->shard_begin(2), 6u);
  EXPECT_EQ(set->shard_begin(3), 8u);
  EXPECT_EQ(set->ShardOfRow(0), 0u);
  EXPECT_EQ(set->ShardOfRow(2), 0u);
  EXPECT_EQ(set->ShardOfRow(3), 1u);
  EXPECT_EQ(set->ShardOfRow(7), 2u);
  EXPECT_EQ(set->ShardOfRow(9), 3u);

  // The fused view is a deep copy with identical content, and each
  // shard's table holds its range (strings re-encoded per shard, so
  // values — not codes — are what must agree).
  for (RowId r = 0; r < t->num_rows(); ++r) {
    const size_t s = set->ShardOfRow(r);
    const RowId local = r - set->shard_begin(s);
    for (size_t c = 0; c < t->num_columns(); ++c) {
      EXPECT_EQ(set->fused()->GetValue(r, c), t->GetValue(r, c));
      EXPECT_EQ(set->shard_table(s).GetValue(local, c), t->GetValue(r, c));
    }
  }
}

TEST(ShardSetTest, CreateValidatesShardCount) {
  auto t = MakeInterleavedTable(10);
  EXPECT_FALSE(ShardSet::Create(*t, 0).ok());
  EXPECT_FALSE(ShardSet::Create(*t, ShardSet::kMaxShards + 1).ok());
  EXPECT_TRUE(ShardSet::Create(*t, ShardSet::kMaxShards).ok());

  EXPECT_FALSE(ShardSet::CreateWithRows(*t, {}).ok());
  EXPECT_FALSE(ShardSet::CreateWithRows(*t, {5, 4}).ok());  // sum != 10
  auto uneven = *ShardSet::CreateWithRows(*t, {1, 5, 4});
  EXPECT_EQ(uneven->ShardRowCounts(), (std::vector<size_t>{1, 5, 4}));
}

TEST(ShardSetTest, SameBoundariesReproduceShardsByteForByte) {
  // The snapshot contract: re-partitioning the same fused rows at the
  // same boundaries must reproduce every per-shard string code, not
  // just every value — clause bitmaps hang off the codes.
  auto t = MakeInterleavedTable(50);
  auto a = *ShardSet::Create(*t, 3);
  auto b = *ShardSet::CreateWithRows(*t, a->ShardRowCounts());
  for (size_t s = 0; s < a->num_shards(); ++s) {
    const Table& ta = a->shard_table(s);
    const Table& tb = b->shard_table(s);
    ASSERT_EQ(ta.num_rows(), tb.num_rows());
    for (RowId r = 0; r < ta.num_rows(); ++r) {
      for (size_t c = 0; c < ta.num_columns(); ++c) {
        EXPECT_EQ(ta.GetValue(r, c), tb.GetValue(r, c));
      }
    }
  }
}

TEST(ShardSetTest, AppendRoutesToTailShardOnly) {
  auto t = MakeInterleavedTable(10);
  auto set = *ShardSet::Create(*t, 3);
  const std::vector<size_t> before = set->ShardRowCounts();

  ASSERT_TRUE(
      set->Append({Value(int64_t{1}), Value("fine"), Value(0.5), Value(9.0)})
          .ok());
  EXPECT_EQ(set->num_rows(), 11u);
  EXPECT_EQ(set->appends(), 1u);
  std::vector<size_t> after = set->ShardRowCounts();
  EXPECT_EQ(after.back(), before.back() + 1);
  for (size_t s = 0; s + 1 < after.size(); ++s) {
    EXPECT_EQ(after[s], before[s]) << "non-tail shard " << s << " grew";
  }
  // Fused view and tail shard agree on the new row.
  EXPECT_EQ(set->fused()->GetValue(10, 1), Value("fine"));
  EXPECT_EQ(set->shard_table(2).GetValue(after.back() - 1, 3), Value(9.0));

  // A malformed row (wrong arity) fails and leaves both views alone.
  EXPECT_FALSE(set->Append({Value(int64_t{1})}).ok());
  EXPECT_EQ(set->num_rows(), 11u);
  EXPECT_EQ(set->ShardRowCounts(), after);
}

// ---------- ShardPlan ----------

TEST(ShardPlanTest, BuildPartitionsSortedUniverse) {
  auto t = MakeInterleavedTable(10);
  auto set = *ShardSet::Create(*t, 4);  // rows {3, 3, 2, 2}
  const std::vector<RowId> universe = {0, 2, 3, 7, 9};
  ShardPlan plan = ShardPlan::Build(*set, universe);
  ASSERT_EQ(plan.slices.size(), 4u);
  EXPECT_EQ(plan.set, set.get());

  EXPECT_EQ(plan.slices[0].local_rows, (std::vector<RowId>{0, 2}));
  EXPECT_EQ(plan.slices[0].offset, 0u);
  EXPECT_EQ(plan.slices[1].local_rows, (std::vector<RowId>{0}));  // global 3
  EXPECT_EQ(plan.slices[1].offset, 2u);
  EXPECT_EQ(plan.slices[2].local_rows, (std::vector<RowId>{1}));  // global 7
  EXPECT_EQ(plan.slices[2].offset, 3u);
  EXPECT_EQ(plan.slices[3].local_rows, (std::vector<RowId>{1}));  // global 9
  EXPECT_EQ(plan.slices[3].offset, 4u);
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(plan.slices[s].shard_index, s);
    EXPECT_EQ(plan.slices[s].table, &set->shard_table(s));
  }

  // An empty universe still yields one (empty) slice per shard.
  ShardPlan empty = ShardPlan::Build(*set, {});
  ASSERT_EQ(empty.slices.size(), 4u);
  for (const ShardSlice& slice : empty.slices) {
    EXPECT_TRUE(slice.local_rows.empty());
  }
}

// ---------- ShardEngineCache ----------

TEST(ShardEngineCacheTest, CheckoutBuildsReusesAndDetectsStaleness) {
  auto t = MakeInterleavedTable(30);
  auto set = *ShardSet::Create(*t, 2);
  auto cache = ShardEngineCache::For(*set);
  ASSERT_NE(cache, nullptr);
  // One cache per set, shared by every caller.
  EXPECT_EQ(cache.get(), ShardEngineCache::For(*set).get());
  EXPECT_EQ(cache->num_shards(), 2u);

  const std::vector<RowId> rows = {0, 3, 5};
  auto cold = cache->CheckoutEngine(0, set->shard_table(0), rows);
  EXPECT_FALSE(cold.reused);
  const Predicate pred({Clause::Make("tag", CompareOp::kEq, Value("bad"))});
  ASSERT_TRUE(cold.engine->Materialize({&pred}, {}).ok());
  EXPECT_EQ(cold.engine->num_cached_clauses(), 1u);
  cache->Checkin(0, std::move(cold.engine));
  EXPECT_EQ(cache->CachedClausesPerShard(), (std::vector<size_t>{1, 0}));

  // Same shard table + same universe: warm, bitmaps intact.
  auto warm = cache->CheckoutEngine(0, set->shard_table(0), rows);
  EXPECT_TRUE(warm.reused);
  EXPECT_EQ(warm.engine->num_cached_clauses(), 1u);

  // Checkout empties the slot, so an overlapping run builds fresh
  // instead of sharing a live engine.
  auto concurrent = cache->CheckoutEngine(0, set->shard_table(0), rows);
  EXPECT_FALSE(concurrent.reused);
  cache->Checkin(0, std::move(warm.engine));
  cache->Checkin(0, std::move(concurrent.engine));

  // A different universe (new suspect set) must not reuse the engine.
  auto other =
      cache->CheckoutEngine(0, set->shard_table(0), {1, 2});
  EXPECT_FALSE(other.reused);
}

// ---------- the cache-retention regression (the point of sharding) ----

struct ExplainWorld {
  std::shared_ptr<Table> table;
  std::shared_ptr<Database> db;
  std::shared_ptr<ShardSet> set;
  std::unique_ptr<DBWipes> engine;
  QueryResult result;
  ExplanationRequest request;
};

ExplainWorld MakeShardedWorld(size_t num_shards) {
  ExplainWorld w;
  w.table = MakeInterleavedTable(200);
  w.db = std::make_shared<Database>();
  w.db->RegisterTable(w.table);
  w.set = *ShardSet::Create(*w.table, num_shards);
  w.db->RegisterShardSet("w", w.set);
  w.engine = std::make_unique<DBWipes>(w.db);
  w.result = *w.engine->Query("SELECT g, avg(v) AS a FROM w GROUP BY g");
  w.request.selected_groups = {2, 3};
  w.request.metric = TooHigh(15.0);
  return w;
}

void CheckLaneLaws(const ExplainProfile& p, size_t num_shards) {
  ASSERT_EQ(p.num_shards, num_shards);
  ASSERT_EQ(p.shards.size(), num_shards);
  size_t lookups = 0, hits = 0, misses = 0, mats = 0;
  size_t f_lookups = 0, f_hits = 0, f_compiles = 0, f_fallbacks = 0;
  for (const ExplainProfile::ShardLane& lane : p.shards) {
    EXPECT_EQ(lane.cache_hits + lane.cache_misses, lane.clause_lookups)
        << "lane " << lane.shard_index;
    EXPECT_EQ(lane.fused_hits + lane.fused_compiles + lane.fused_fallbacks,
              lane.fused_lookups)
        << "lane " << lane.shard_index;
    EXPECT_GT(lane.suspects, 0u) << "lane " << lane.shard_index;
    lookups += lane.clause_lookups;
    hits += lane.cache_hits;
    misses += lane.cache_misses;
    mats += lane.bitmaps_materialized;
    f_lookups += lane.fused_lookups;
    f_hits += lane.fused_hits;
    f_compiles += lane.fused_compiles;
    f_fallbacks += lane.fused_fallbacks;
  }
  // Top-level engine counters are the lane sums.
  EXPECT_EQ(p.clause_lookups, lookups);
  EXPECT_EQ(p.cache_hits, hits);
  EXPECT_EQ(p.cache_misses, misses);
  EXPECT_EQ(p.bitmaps_materialized, mats);
  EXPECT_EQ(p.fused_lookups, f_lookups);
  EXPECT_EQ(p.fused_hits, f_hits);
  EXPECT_EQ(p.fused_compiles, f_compiles);
  EXPECT_EQ(p.fused_fallbacks, f_fallbacks);
}

TEST(ShardWarmCacheTest, AppendInvalidatesOnlyTheTailShard) {
  constexpr size_t kShards = 4;
  ExplainWorld w = MakeShardedWorld(kShards);

  // Run 1 (cold): every lane builds its engine and materializes.
  Explanation first = *w.engine->Explain(w.result, w.request);
  ASSERT_FALSE(first.predicates.empty());
  EXPECT_NE(first.predicates[0].predicate.ToString().find("tag = 'bad'"),
            std::string::npos)
      << first.predicates[0].predicate.ToString();
  CheckLaneLaws(first.profile, kShards);
  for (const ExplainProfile::ShardLane& lane : first.profile.shards) {
    EXPECT_FALSE(lane.engine_reused) << "lane " << lane.shard_index;
    EXPECT_GT(lane.cache_misses, 0u) << "lane " << lane.shard_index;
  }
  EXPECT_EQ(first.profile.shard_engines_reused, 0u);
  EXPECT_GE(first.profile.shard_skew, 1.0);

  // Run 2 (no append): every lane comes back warm — zero misses, zero
  // re-materialization, every lookup a hit.
  Explanation second = *w.engine->Explain(w.result, w.request);
  CheckLaneLaws(second.profile, kShards);
  for (const ExplainProfile::ShardLane& lane : second.profile.shards) {
    EXPECT_TRUE(lane.engine_reused) << "lane " << lane.shard_index;
    EXPECT_EQ(lane.cache_misses, 0u) << "lane " << lane.shard_index;
    EXPECT_EQ(lane.bitmaps_materialized, 0u) << "lane " << lane.shard_index;
    EXPECT_EQ(lane.cache_hits, lane.clause_lookups)
        << "lane " << lane.shard_index;
    // The lane did work — through the clause cache, the fused program
    // cache, or both (fused predicates skip per-clause lookups).
    EXPECT_GT(lane.clause_lookups + lane.fused_lookups, 0u)
        << "lane " << lane.shard_index;
    // The fused face of the warm-cache law: every program lookup was
    // answered from the retained compilation, nothing re-lowered.
    EXPECT_EQ(lane.fused_compiles, 0u) << "lane " << lane.shard_index;
    EXPECT_EQ(lane.fused_hits, lane.fused_lookups)
        << "lane " << lane.shard_index;
    EXPECT_GT(lane.cached_programs + lane.cached_clauses, 0u)
        << "lane " << lane.shard_index;
  }
  EXPECT_EQ(second.profile.shard_engines_reused, kShards);

  // Append one row: it routes to the tail shard, so ONLY that shard's
  // engine may go cold on the next run.
  ASSERT_TRUE(w.set->Append({Value(int64_t{0}), Value("fine"), Value(0.0),
                             Value(10.0)})
                  .ok());

  Explanation third = *w.engine->Explain(w.result, w.request);
  CheckLaneLaws(third.profile, kShards);
  for (const ExplainProfile::ShardLane& lane : third.profile.shards) {
    if (lane.shard_index == kShards - 1) {
      // Tail: table grew, engine rebuilt from scratch.
      EXPECT_FALSE(lane.engine_reused);
      EXPECT_GT(lane.cache_misses, 0u);
    } else {
      // Everyone else: warm. This is the (S-1)/S retention claim.
      EXPECT_TRUE(lane.engine_reused) << "lane " << lane.shard_index;
      EXPECT_EQ(lane.cache_misses, 0u) << "lane " << lane.shard_index;
      EXPECT_EQ(lane.cache_hits, lane.clause_lookups)
          << "lane " << lane.shard_index;
      EXPECT_GT(lane.clause_lookups + lane.fused_lookups, 0u)
          << "lane " << lane.shard_index;
      EXPECT_EQ(lane.fused_compiles, 0u) << "lane " << lane.shard_index;
      EXPECT_EQ(lane.fused_hits, lane.fused_lookups)
          << "lane " << lane.shard_index;
    }
  }
  EXPECT_EQ(third.profile.shard_engines_reused, kShards - 1);

  // The ranking itself never changed across the three runs.
  ASSERT_EQ(third.predicates.size(), first.predicates.size());
  for (size_t i = 0; i < first.predicates.size(); ++i) {
    EXPECT_EQ(third.predicates[i].predicate.CanonicalString(),
              first.predicates[i].predicate.CanonicalString());
    EXPECT_DOUBLE_EQ(third.predicates[i].score, first.predicates[i].score);
  }
}

}  // namespace
}  // namespace dbwipes
