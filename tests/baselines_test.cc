#include <gtest/gtest.h>

#include <algorithm>

#include "dbwipes/common/random.h"
#include "dbwipes/core/baselines.h"
#include "dbwipes/core/evaluation.h"
#include "dbwipes/expr/parser.h"

namespace dbwipes {
namespace {

struct World {
  std::shared_ptr<Table> table;
  QueryResult result;
  std::vector<size_t> suspicious;
  std::vector<RowId> bad_rows;
  ErrorMetricPtr metric = TooHigh(15.0);
  PreprocessResult pre;
};

World MakeWorld() {
  Rng rng(31);
  World w;
  w.table = std::make_shared<Table>(Schema{{"g", DataType::kInt64},
                                           {"tag", DataType::kString},
                                           {"knob", DataType::kDouble},
                                           {"v", DataType::kDouble}},
                                    "w");
  for (int g = 0; g < 3; ++g) {
    for (int i = 0; i < 60; ++i) {
      const bool bad = g > 0 && i < 12;
      DBW_CHECK_OK(w.table->AppendRow(
          {Value(static_cast<int64_t>(g)), Value(bad ? "bad" : "fine"),
           Value(rng.Normal(0, 1)),
           Value(bad ? rng.Normal(90, 2) : rng.Normal(10, 2))}));
      if (bad) w.bad_rows.push_back(static_cast<RowId>(w.table->num_rows() - 1));
    }
  }
  w.result = *ExecuteQuery(
      *ParseQuery("SELECT g, avg(v) AS a FROM w GROUP BY g"), *w.table);
  w.suspicious = {1, 2};
  w.pre = *Preprocessor::Run(*w.table, w.result, w.suspicious, *w.metric);
  return w;
}

TEST(NaiveProvenanceTest, ReturnsAllOfFWithLowPrecision) {
  World w = MakeWorld();
  TupleSetExplanation naive = NaiveProvenance(w.pre);
  EXPECT_EQ(naive.rows.size(), 120u);  // both suspicious groups entirely
  ExplanationQuality q = ScoreTupleSet(naive.rows, w.bad_rows);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);  // complete...
  EXPECT_NEAR(q.precision, 24.0 / 120.0, 1e-9);  // ...but imprecise
}

TEST(InfluenceTopKTest, PreciseButUndescriptive) {
  World w = MakeWorld();
  TupleSetExplanation topk = InfluenceTopK(w.pre, 24);
  EXPECT_EQ(topk.rows.size(), 24u);
  ExplanationQuality q = ScoreTupleSet(topk.rows, w.bad_rows);
  EXPECT_GT(q.precision, 0.95);  // influence finds the bad tuples
}

TEST(InfluenceTopKTest, StopsAtNonPositiveInfluence) {
  World w = MakeWorld();
  TupleSetExplanation huge = InfluenceTopK(w.pre, 100000);
  // Only tuples that actually reduce the error are returned.
  EXPECT_LT(huge.rows.size(), w.pre.suspect_inputs.size());
}

TEST(ExhaustiveSearchTest, FindsTheTruePredicate) {
  World w = MakeWorld();
  FeatureView view = *FeatureView::Create(*w.table, {"g", "tag", "knob"});
  ExhaustiveSearchOptions opts;
  size_t evaluated = 0;
  auto ranked = *ExhaustivePredicateSearch(*w.table, w.result, w.suspicious,
                                           *w.metric, 0, view, w.pre, opts,
                                           &evaluated);
  ASSERT_FALSE(ranked.empty());
  EXPECT_GT(evaluated, 10u);
  // With the error-only objective the best predicate zeroes the error.
  EXPECT_NEAR(ranked[0].error_improvement, 1.0, 1e-9);
  // Ties break toward the *smallest* repair, so the winner may cover
  // only as many bad rows as needed to cross the threshold — most of
  // them, but not necessarily all.
  ExplanationQuality q = *ScorePredicate(*w.table, ranked[0].predicate,
                                         w.bad_rows);
  EXPECT_GT(q.recall, 0.6);
  EXPECT_GT(q.precision, 0.9);
}

TEST(ExhaustiveSearchTest, EvaluationCountGrowsCombinatorially) {
  World w = MakeWorld();
  FeatureView view = *FeatureView::Create(*w.table, {"g", "tag", "knob"});
  size_t n1 = 0, n2 = 0;
  ExhaustiveSearchOptions one;
  one.max_clauses = 1;
  ExhaustiveSearchOptions two;
  two.max_clauses = 2;
  ASSERT_TRUE(ExhaustivePredicateSearch(*w.table, w.result, w.suspicious,
                                        *w.metric, 0, view, w.pre, one, &n1)
                  .ok());
  ASSERT_TRUE(ExhaustivePredicateSearch(*w.table, w.result, w.suspicious,
                                        *w.metric, 0, view, w.pre, two, &n2)
                  .ok());
  EXPECT_GT(n2, 5 * n1);  // the blow-up E2 demonstrates
}

TEST(ExhaustiveSearchTest, TopKAndCoverageBounds) {
  World w = MakeWorld();
  FeatureView view = *FeatureView::Create(*w.table, {"g", "tag", "knob"});
  ExhaustiveSearchOptions opts;
  opts.top_k = 3;
  opts.min_coverage = 5;
  auto ranked = *ExhaustivePredicateSearch(*w.table, w.result, w.suspicious,
                                           *w.metric, 0, view, w.pre, opts,
                                           nullptr);
  EXPECT_LE(ranked.size(), 3u);
  for (const RankedPredicate& rp : ranked) {
    EXPECT_GE(rp.matched_in_suspects, 5u);
  }
}

TEST(ExhaustiveSearchTest, Validation) {
  World w = MakeWorld();
  FeatureView view = *FeatureView::Create(*w.table, {"tag"});
  PreprocessResult empty;
  EXPECT_FALSE(ExhaustivePredicateSearch(*w.table, w.result, w.suspicious,
                                         *w.metric, 0, view, empty, {},
                                         nullptr)
                   .ok());
}

}  // namespace
}  // namespace dbwipes
