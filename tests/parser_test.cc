#include <gtest/gtest.h>

#include "dbwipes/expr/parser.h"

namespace dbwipes {
namespace {

TEST(ParserTest, MinimalAggregateQuery) {
  AggregateQuery q = *ParseQuery("SELECT avg(temp) FROM readings");
  EXPECT_EQ(q.table_name, "readings");
  ASSERT_EQ(q.aggregates.size(), 1u);
  EXPECT_EQ(q.aggregates[0].kind, AggKind::kAvg);
  EXPECT_EQ(q.aggregates[0].output_name, "avg(temp)");
  EXPECT_TRUE(q.group_by.empty());
  EXPECT_EQ(q.where->kind(), BoolExpr::Kind::kTrue);
}

TEST(ParserTest, FullQueryWithAliasWhereGroupBy) {
  AggregateQuery q = *ParseQuery(
      "SELECT window, avg(temp) AS t, stddev(temp) AS sd FROM readings "
      "WHERE sensorid != 3 AND temp > 0 GROUP BY window");
  EXPECT_EQ(q.aggregates.size(), 2u);
  EXPECT_EQ(q.aggregates[0].output_name, "t");
  EXPECT_EQ(q.aggregates[1].kind, AggKind::kStddev);
  EXPECT_EQ(q.group_by, (std::vector<std::string>{"window"}));
  EXPECT_NE(q.where->kind(), BoolExpr::Kind::kTrue);
}

TEST(ParserTest, KeywordsCaseInsensitive) {
  AggregateQuery q =
      *ParseQuery("select SUM(x) from t where y = 1 group by g");
  EXPECT_EQ(q.aggregates[0].kind, AggKind::kSum);
  EXPECT_EQ(q.group_by, (std::vector<std::string>{"g"}));
}

TEST(ParserTest, CountStar) {
  AggregateQuery q = *ParseQuery("SELECT count(*) FROM t GROUP BY g");
  EXPECT_EQ(q.aggregates[0].kind, AggKind::kCount);
  EXPECT_EQ(q.aggregates[0].argument, nullptr);
  EXPECT_FALSE(ParseQuery("SELECT avg(*) FROM t").ok());
}

TEST(ParserTest, ArithmeticAggregateArgument) {
  AggregateQuery q = *ParseQuery("SELECT avg((temp - 32) * 5 / 9) FROM t");
  EXPECT_NE(q.aggregates[0].argument, nullptr);
  EXPECT_EQ(q.aggregates[0].argument->ToString(),
            "(((temp - 32) * 5) / 9)");
}

TEST(ParserTest, UnaryMinus) {
  AggregateQuery q = *ParseQuery("SELECT sum(0 - x) FROM t");
  EXPECT_EQ(q.aggregates[0].argument->ToString(), "(0 - x)");
  AggregateQuery q2 = *ParseQuery("SELECT sum(-x) FROM t");
  EXPECT_EQ(q2.aggregates[0].argument->ToString(), "(0 - x)");
}

TEST(ParserTest, StringLiteralsWithEscapes) {
  BoolExprPtr e = *ParseFilter("memo = 'it''s fine'");
  // The literal holds one quote; rendering re-escapes it, so the text
  // round-trips through the parser.
  EXPECT_EQ(e->ToString(), "memo = 'it''s fine'");
  BoolExprPtr e2 = *ParseFilter(e->ToString());
  EXPECT_EQ(e2->ToString(), e->ToString());
}

TEST(ParserTest, BetweenExpandsToRange) {
  BoolExprPtr e = *ParseFilter("day BETWEEN 490 AND 510");
  EXPECT_EQ(e->ToString(), "(day >= 490 AND day <= 510)");
}

TEST(ParserTest, InList) {
  BoolExprPtr e = *ParseFilter("state IN ('CA', 'NY')");
  EXPECT_EQ(e->ToString(), "state IN ('CA', 'NY')");
}

TEST(ParserTest, ContainsAndLikeWildcards) {
  BoolExprPtr e = *ParseFilter("memo CONTAINS 'SPOUSE'");
  EXPECT_EQ(e->ToString(), "memo CONTAINS 'SPOUSE'");
  BoolExprPtr like = *ParseFilter("memo LIKE '%SPOUSE%'");
  EXPECT_EQ(like->ToString(), "memo CONTAINS 'SPOUSE'");
}

TEST(ParserTest, BooleanPrecedenceAndParens) {
  // AND binds tighter than OR.
  BoolExprPtr e = *ParseFilter("a = 1 OR b = 2 AND c = 3");
  EXPECT_EQ(e->ToString(), "(a = 1 OR (b = 2 AND c = 3))");
  BoolExprPtr p = *ParseFilter("(a = 1 OR b = 2) AND NOT c = 3");
  EXPECT_EQ(p->ToString(), "((a = 1 OR b = 2) AND NOT c = 3)");
}

TEST(ParserTest, AllComparisonOperators) {
  for (const char* op : {"=", "!=", "<>", "<", "<=", ">", ">="}) {
    auto e = ParseFilter(std::string("x ") + op + " 1");
    EXPECT_TRUE(e.ok()) << op;
  }
}

TEST(ParserTest, NumericLiteralForms) {
  EXPECT_TRUE(ParseFilter("x = 1").ok());
  EXPECT_TRUE(ParseFilter("x = 1.5").ok());
  EXPECT_TRUE(ParseFilter("x = .5").ok());
  EXPECT_TRUE(ParseFilter("x = 1e-3").ok());
  EXPECT_TRUE(ParseFilter("x = 2.5E+2").ok());
}

TEST(ParserTest, SelectedColumnMustBeGrouped) {
  EXPECT_TRUE(ParseQuery("SELECT g, avg(v) FROM t GROUP BY g").ok());
  auto bad = ParseQuery("SELECT h, avg(v) FROM t GROUP BY g");
  EXPECT_TRUE(bad.status().IsParseError());
}

TEST(ParserTest, QueryMustHaveAggregate) {
  EXPECT_TRUE(ParseQuery("SELECT g FROM t GROUP BY g").status().IsParseError());
}

TEST(ParserTest, ErrorsCarryPosition) {
  auto r = ParseQuery("SELECT avg(temp FROM t");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);
}

TEST(ParserTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseQuery("SELECT avg(x) FROM t extra").ok());
  EXPECT_FALSE(ParseFilter("x = 1 )").ok());
}

TEST(ParserTest, RejectsUnterminatedString) {
  EXPECT_TRUE(ParseFilter("s = 'oops").status().IsParseError());
}

TEST(ParserTest, ParsePredicateConjunctionOnly) {
  Predicate p = *ParsePredicate("a = 1 AND b >= 2 AND s CONTAINS 'x'");
  EXPECT_EQ(p.num_clauses(), 3u);
  EXPECT_FALSE(ParsePredicate("a = 1 OR b = 2").ok());
  EXPECT_FALSE(ParsePredicate("NOT a = 1").ok());
  // BETWEEN expands to two conjoined comparisons, which is fine.
  EXPECT_EQ(ParsePredicate("a BETWEEN 1 AND 2")->num_clauses(), 2u);
}

TEST(ParserTest, RoundTripThroughToSql) {
  const std::string sql =
      "SELECT day, sum(amount) AS total FROM donations "
      "WHERE candidate = 'MCCAIN' GROUP BY day";
  AggregateQuery q = *ParseQuery(sql);
  AggregateQuery q2 = *ParseQuery(q.ToSql());
  EXPECT_EQ(q.ToSql(), q2.ToSql());
}

TEST(ParserTest, CleaningRewriteParsesBack) {
  AggregateQuery q = *ParseQuery("SELECT sum(x) FROM t WHERE a = 1");
  Predicate p({Clause::Make("b", CompareOp::kGt, Value(2.0))});
  AggregateQuery cleaned = q.WithCleaningPredicate(p);
  EXPECT_NE(cleaned.ToSql().find("NOT"), std::string::npos);
  EXPECT_TRUE(ParseQuery(cleaned.ToSql()).ok());
}

TEST(ParserTest, DeepButReasonableNestingParses) {
  // Well under the recursion limit: 50 levels of parentheses and a
  // 50-deep NOT chain both parse fine.
  std::string filter = std::string(50, '(') + "x = 1" + std::string(50, ')');
  EXPECT_TRUE(ParseFilter(filter).ok()) << filter.substr(0, 80);

  std::string nots;
  for (int i = 0; i < 50; ++i) nots += "NOT ";
  EXPECT_TRUE(ParseFilter(nots + "x = 1").ok());
}

TEST(ParserTest, PathologicalNestingIsRefusedNotOverflowed) {
  // A hostile client can send 100k opening parens in one line; the
  // recursive-descent parser must refuse with kParseError at its depth
  // limit instead of exhausting the stack.
  const std::string parens(100000, '(');
  auto r = ParseFilter(parens + "x = 1");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError()) << r.status().ToString();
  EXPECT_NE(r.status().message().find("nested"), std::string::npos)
      << r.status().message();

  std::string nots;
  for (int i = 0; i < 100000; ++i) nots += "NOT ";
  auto rn = ParseFilter(nots + "x = 1");
  ASSERT_FALSE(rn.ok());
  EXPECT_TRUE(rn.status().IsParseError());

  // The same guard protects full-query parsing through the WHERE
  // clause, and the parser is reusable after refusing.
  EXPECT_TRUE(
      ParseQuery("SELECT avg(x) FROM t WHERE " + parens + "x = 1 GROUP BY g")
          .status()
          .IsParseError());
  EXPECT_TRUE(ParseFilter("(x = 1)").ok());
}

TEST(ParserTest, AggKindNames) {
  for (const char* name :
       {"count", "sum", "avg", "min", "max", "stddev", "var", "median"}) {
    EXPECT_TRUE(AggKindFromString(name).ok()) << name;
  }
  EXPECT_FALSE(AggKindFromString("mode").ok());
}

}  // namespace
}  // namespace dbwipes
