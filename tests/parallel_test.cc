// Tests for the chunked thread pool (common/parallel.h) and the
// Bitmap substrate of the ranking fast path. The parallel tests are
// the ones a ThreadSanitizer build (cmake --preset tsan) exercises for
// data races.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "dbwipes/common/bitmap.h"
#include "dbwipes/common/exec_context.h"
#include "dbwipes/common/parallel.h"

namespace dbwipes {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  const size_t n = 10007;  // prime, to exercise ragged chunk boundaries
  std::vector<std::atomic<int>> hits(n);
  ParallelForEach(0, n, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, DeterministicAcrossThreadCounts) {
  const size_t n = 5000;
  auto run = [&](size_t threads) {
    std::vector<double> out(n);
    ParallelOptions opts;
    opts.num_threads = threads;
    opts.min_items_for_threading = 1;
    ParallelFor(
        0, n,
        [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) {
            out[i] = std::sqrt(static_cast<double>(i)) * 3.25;
          }
        },
        opts);
    return out;
  };
  const std::vector<double> serial = run(1);
  for (size_t threads : {2u, 4u, 8u}) {
    EXPECT_EQ(run(threads), serial) << threads << " threads";
  }
}

TEST(ParallelForTest, EmptyAndTinyRanges) {
  ParallelForEach(5, 5, [](size_t) { FAIL() << "empty range ran"; });
  int hits = 0;
  // Below min_items_for_threading: runs serially on the caller.
  ParallelForEach(0, 3, [&](size_t) { ++hits; });
  EXPECT_EQ(hits, 3);
}

TEST(ParallelForTest, NestedCallsDegradeToSerialNotDeadlock) {
  const size_t n = 64;
  std::vector<std::atomic<int>> hits(n * n);
  ParallelOptions opts;
  opts.min_items_for_threading = 1;
  ParallelForEach(
      0, n,
      [&](size_t i) {
        ParallelForEach(
            0, n, [&](size_t j) { hits[i * n + j].fetch_add(1); }, opts);
      },
      opts);
  for (size_t k = 0; k < n * n; ++k) ASSERT_EQ(hits[k].load(), 1);
}

TEST(ParallelForTest, PoolIsReusableAcrossManyCalls) {
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> sum{0};
    ParallelOptions opts;
    opts.min_items_for_threading = 1;
    ParallelForEach(0, 100, [&](size_t i) { sum.fetch_add(i); }, opts);
    ASSERT_EQ(sum.load(), 4950u);
  }
}

TEST(ParallelForStatusTest, ReturnsLowestFailingIndex) {
  ParallelOptions opts;
  opts.min_items_for_threading = 1;
  for (int round = 0; round < 20; ++round) {
    Status st = ParallelForStatus(
        10000,
        [](size_t i) {
          if (i == 137 || i == 9000) {
            return Status::InvalidArgument("fail at " + std::to_string(i));
          }
          return Status::OK();
        },
        opts);
    ASSERT_FALSE(st.ok());
    // Deterministic: always the lowest failing index, regardless of
    // which thread hit its failure first.
    ASSERT_NE(st.ToString().find("fail at 137"), std::string::npos)
        << st.ToString();
  }
}

TEST(ParallelForStatusTest, AllOkReturnsOk) {
  EXPECT_TRUE(
      ParallelForStatus(1000, [](size_t) { return Status::OK(); }).ok());
  EXPECT_TRUE(ParallelForStatus(0, [](size_t) {
                return Status::InvalidArgument("never called");
              }).ok());
}

TEST(DefaultParallelismTest, AtLeastOne) {
  EXPECT_GE(DefaultParallelism(), 1u);
}

// ---------- task failure ----------

TEST(ThreadPoolFailureTest, ThrowingChunkRethrowsOnCallerAndSkipsRest) {
  ThreadPool pool(4);
  std::atomic<size_t> executed{0};
  const size_t num_chunks = 1000;
  try {
    pool.Run(num_chunks, [&](size_t chunk) {
      if (chunk == 0) throw std::runtime_error("chunk 0 exploded");
      executed.fetch_add(1);
      // Slow the survivors so unclaimed chunks still exist when the
      // failure lands; sleeping (not spinning) yields the core so the
      // chunk-0 thread gets scheduled promptly even on one CPU.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    });
    FAIL() << "Run swallowed the task exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 0 exploded");
  }
  // The failure cancelled unclaimed chunks: nowhere near all of them
  // ran (in-flight ones were allowed to finish).
  EXPECT_LT(executed.load(), num_chunks - 1);
}

TEST(ThreadPoolFailureTest, LowestChunkExceptionWins) {
  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    try {
      pool.Run(100, [](size_t chunk) {
        if (chunk == 7 || chunk == 50) {
          throw std::runtime_error("chunk " + std::to_string(chunk));
        }
      });
      FAIL() << "no exception";
    } catch (const std::runtime_error& e) {
      // 50 may be skipped once 7 fails, but never the other way round:
      // the surfaced error is the lowest-index one that actually threw.
      EXPECT_STREQ(e.what(), "chunk 7");
    }
  }
}

TEST(ThreadPoolFailureTest, PoolStaysUsableAfterFailure) {
  ThreadPool pool(4);
  for (int round = 0; round < 5; ++round) {
    EXPECT_THROW(
        pool.Run(64, [](size_t chunk) {
          if (chunk % 2 == 0) throw std::runtime_error("boom");
        }),
        std::runtime_error);
    std::atomic<size_t> sum{0};
    pool.Run(100, [&](size_t chunk) { sum.fetch_add(chunk); });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(ParallelForStatusTest, ThrowingBodySurfacesAsRuntimeError) {
  ParallelOptions opts;
  opts.min_items_for_threading = 1;
  Status st = ParallelForStatus(
      500,
      [](size_t i) -> Status {
        if (i == 250) throw std::runtime_error("scoring blew up");
        return Status::OK();
      },
      opts);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kRuntimeError);
  EXPECT_NE(st.ToString().find("scoring blew up"), std::string::npos)
      << st.ToString();
}

// ---------- cooperative stop ----------

TEST(ParallelForTest, CancelledContextSkipsRemainingChunks) {
  CancellationSource source;
  ExecContext ctx;
  ctx.token = source.token();
  ParallelOptions opts;
  opts.min_items_for_threading = 1;
  opts.ctx = &ctx;
  std::atomic<size_t> ran{0};
  ParallelForEach(
      0, 2000,
      [&](size_t i) {
        if (i == 0) source.Cancel("stop");
        ran.fetch_add(1);
        // Outlast the cancel's propagation so chunks that start after
        // it reliably observe the trip (in-flight chunks finish).
        std::this_thread::sleep_for(std::chrono::microseconds(20));
      },
      opts);
  // Wound down within a chunk or two of the cancel, instead of
  // visiting all 2000 items.
  EXPECT_LT(ran.load(), 2000u);
}

TEST(ParallelForTest, PreCancelledContextRunsNothing) {
  CancellationSource source;
  source.Cancel("already dead");
  ExecContext ctx;
  ctx.token = source.token();
  ParallelOptions opts;
  opts.min_items_for_threading = 1;
  opts.ctx = &ctx;
  ParallelForEach(0, 100, [](size_t) { FAIL() << "chunk ran"; }, opts);
}

TEST(ParallelForStatusTest, ReportsContextInterrupt) {
  CancellationSource source;
  ExecContext ctx;
  ctx.token = source.token();
  ParallelOptions opts;
  opts.min_items_for_threading = 1;
  opts.ctx = &ctx;
  Status st = ParallelForStatus(
      10000,
      [&](size_t) {
        source.Cancel("mid-run");
        return Status::OK();
      },
      opts);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
}

TEST(BitmapTest, SetTestCount) {
  Bitmap bm(130);
  EXPECT_EQ(bm.num_bits(), 130u);
  EXPECT_EQ(bm.CountOnes(), 0u);
  bm.Set(0);
  bm.Set(63);
  bm.Set(64);
  bm.Set(129);
  EXPECT_TRUE(bm.Test(0));
  EXPECT_TRUE(bm.Test(63));
  EXPECT_TRUE(bm.Test(64));
  EXPECT_TRUE(bm.Test(129));
  EXPECT_FALSE(bm.Test(1));
  EXPECT_FALSE(bm.Test(128));
  EXPECT_EQ(bm.CountOnes(), 4u);
}

TEST(BitmapTest, CountAnd) {
  Bitmap a(200), b(200);
  for (size_t i = 0; i < 200; i += 2) a.Set(i);
  for (size_t i = 0; i < 200; i += 3) b.Set(i);
  size_t expect = 0;
  for (size_t i = 0; i < 200; i += 6) ++expect;
  EXPECT_EQ(a.CountAnd(b), expect);
}

TEST(BitmapTest, EqualityAndHash) {
  Bitmap a(100), b(100), c(101);
  a.Set(7);
  a.Set(70);
  b.Set(7);
  b.Set(70);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_FALSE(a == c);  // different sizes differ even when all-zero
  b.Set(71);
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.Hash(), b.Hash());  // not guaranteed, but catastrophic if
                                  // these trivially collide
}

TEST(BitmapTest, ForEachSetAscending) {
  Bitmap bm(300);
  const std::vector<size_t> want = {0, 1, 63, 64, 65, 127, 128, 255, 299};
  for (size_t i : want) bm.Set(i);
  std::vector<size_t> got;
  bm.ForEachSet([&](size_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace dbwipes
