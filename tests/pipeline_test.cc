// Stage-level tests of the DBWipes backend: Preprocessor, removal
// evaluation, Dataset Enumerator, Predicate Enumerator, Predicate
// Ranker — each on a small planted-anomaly world where the right
// answer is known exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "dbwipes/common/random.h"
#include "dbwipes/core/dataset_enumerator.h"
#include "dbwipes/core/dbwipes.h"
#include "dbwipes/core/predicate_enumerator.h"
#include "dbwipes/core/predicate_ranker.h"
#include "dbwipes/core/removal.h"
#include "dbwipes/expr/parser.h"

namespace dbwipes {
namespace {

/// A world with 4 groups; rows with tag = 'bad' in groups 2 and 3 carry
/// v = 100 instead of ~10.
struct World {
  std::shared_ptr<Table> table;
  QueryResult result;
  std::vector<size_t> suspicious_groups;
  std::vector<RowId> bad_rows;
  ErrorMetricPtr metric = TooHigh(15.0);
};

World MakeWorld(uint64_t seed = 9) {
  Rng rng(seed);
  World w;
  w.table = std::make_shared<Table>(Schema{{"g", DataType::kInt64},
                                           {"tag", DataType::kString},
                                           {"knob", DataType::kDouble},
                                           {"v", DataType::kDouble}},
                                    "w");
  for (int g = 0; g < 4; ++g) {
    for (int i = 0; i < 50; ++i) {
      const bool bad = g >= 2 && i < 10;
      DBW_CHECK_OK(w.table->AppendRow(
          {Value(static_cast<int64_t>(g)), Value(bad ? "bad" : "fine"),
           Value(rng.Normal(0, 1)),
           Value(bad ? rng.Normal(100, 2) : rng.Normal(10, 2))}));
      if (bad) {
        w.bad_rows.push_back(static_cast<RowId>(w.table->num_rows() - 1));
      }
    }
  }
  w.result = *ExecuteQuery(
      *ParseQuery("SELECT g, avg(v) AS a FROM w GROUP BY g"), *w.table);
  w.suspicious_groups = {2, 3};
  return w;
}

// ---------- Preprocessor ----------

TEST(PreprocessorTest, ComputesFAndRanksBadTuplesFirst) {
  World w = MakeWorld();
  PreprocessResult pre = *Preprocessor::Run(*w.table, w.result,
                                            w.suspicious_groups, *w.metric);
  EXPECT_EQ(pre.suspect_inputs.size(), 100u);  // two groups x 50 rows
  EXPECT_GT(pre.baseline_error, 0.0);
  EXPECT_GT(pre.per_group_baseline_error, 0.0);
  // The 20 bad rows must occupy the top-20 influence slots.
  for (size_t i = 0; i < w.bad_rows.size(); ++i) {
    EXPECT_TRUE(std::binary_search(w.bad_rows.begin(), w.bad_rows.end(),
                                   pre.influences[i].row))
        << "rank " << i << " is row " << pre.influences[i].row;
  }
}

TEST(PreprocessorTest, ErrorsOnEmptySelection) {
  World w = MakeWorld();
  EXPECT_FALSE(Preprocessor::Run(*w.table, w.result, {}, *w.metric).ok());
}

// ---------- removal evaluation ----------

TEST(RemovalTest, RemovingBadRowsZeroesError) {
  World w = MakeWorld();
  const double before = *ErrorAfterRemoval(*w.table, w.result,
                                           w.suspicious_groups, *w.metric, 0,
                                           {});
  EXPECT_GT(before, 0.0);
  const double after = *ErrorAfterRemoval(*w.table, w.result,
                                          w.suspicious_groups, *w.metric, 0,
                                          w.bad_rows);
  EXPECT_DOUBLE_EQ(after, 0.0);
}

TEST(RemovalTest, ValuesAfterRemovalMatchManualRecompute) {
  World w = MakeWorld();
  auto values = *ValuesAfterRemoval(*w.table, w.result, {2}, 0, w.bad_rows);
  ASSERT_EQ(values.size(), 1u);
  // Group 2 without its 10 bad rows: all remaining ~N(10, 2).
  EXPECT_NEAR(values[0], 10.0, 2.0);
}

TEST(RemovalTest, RemovingEverythingYieldsNaNThenZeroError) {
  World w = MakeWorld();
  std::vector<RowId> all = w.result.lineage[2];
  auto values = *ValuesAfterRemoval(*w.table, w.result, {2}, 0, all);
  EXPECT_TRUE(std::isnan(values[0]));
  EXPECT_DOUBLE_EQ(*ErrorAfterRemoval(*w.table, w.result, {2}, *w.metric, 0,
                                      all),
                   0.0);
}

TEST(RemovalTest, PerGroupErrorIsMonotoneInPartialRepair) {
  World w = MakeWorld();
  // Fixing only group 2: raw max-metric unchanged, per-group halves.
  std::vector<RowId> group2_bad;
  for (RowId r : w.bad_rows) {
    if (std::binary_search(w.result.lineage[2].begin(),
                           w.result.lineage[2].end(), r)) {
      group2_bad.push_back(r);
    }
  }
  const double raw_before = *ErrorAfterRemoval(
      *w.table, w.result, w.suspicious_groups, *w.metric, 0, {});
  const double raw_after = *ErrorAfterRemoval(
      *w.table, w.result, w.suspicious_groups, *w.metric, 0, group2_bad);
  EXPECT_NEAR(raw_after, raw_before, 1.0);  // max barely moves

  const double pg_before = *PerGroupErrorAfterRemoval(
      *w.table, w.result, w.suspicious_groups, *w.metric, 0, {});
  const double pg_after = *PerGroupErrorAfterRemoval(
      *w.table, w.result, w.suspicious_groups, *w.metric, 0, group2_bad);
  EXPECT_LT(pg_after, 0.6 * pg_before);  // clear progress signal
}

TEST(RemovalTest, BadArgIndex) {
  World w = MakeWorld();
  EXPECT_TRUE(
      ErrorAfterRemoval(*w.table, w.result, {0}, *w.metric, 9, {}).status()
          .IsOutOfRange());
}

// ---------- Dataset Enumerator ----------

TEST(DatasetEnumeratorTest, FindsErrorReducingCandidates) {
  World w = MakeWorld();
  PreprocessResult pre = *Preprocessor::Run(*w.table, w.result,
                                            w.suspicious_groups, *w.metric);
  FeatureView view = *FeatureView::Create(*w.table, {"g", "tag", "knob"});
  DatasetEnumerator enumerator;
  auto candidates = *enumerator.Enumerate(*w.table, w.result,
                                          w.suspicious_groups, pre,
                                          /*dprime=*/{}, view, *w.metric);
  ASSERT_FALSE(candidates.empty());
  // Sorted by reduction, all strictly positive.
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_GT(candidates[i].error_reduction, 0.0);
    if (i > 0) {
      EXPECT_GE(candidates[i - 1].error_reduction,
                candidates[i].error_reduction);
    }
    EXPECT_TRUE(std::is_sorted(candidates[i].rows.begin(),
                               candidates[i].rows.end()));
  }
  // The best candidate should essentially be the bad-row set.
  std::vector<RowId> common;
  std::set_intersection(candidates[0].rows.begin(), candidates[0].rows.end(),
                        w.bad_rows.begin(), w.bad_rows.end(),
                        std::back_inserter(common));
  EXPECT_GE(common.size(), 18u);  // >= 90% of the 20 bad rows
}

TEST(DatasetEnumeratorTest, DPrimeGuidesWhenProvided) {
  World w = MakeWorld();
  PreprocessResult pre = *Preprocessor::Run(*w.table, w.result,
                                            w.suspicious_groups, *w.metric);
  FeatureView view = *FeatureView::Create(*w.table, {"g", "tag", "knob"});
  DatasetEnumerator enumerator;
  // The user hands us half the bad rows.
  std::vector<RowId> dprime(w.bad_rows.begin(),
                            w.bad_rows.begin() + w.bad_rows.size() / 2);
  auto candidates = *enumerator.Enumerate(*w.table, w.result,
                                          w.suspicious_groups, pre, dprime,
                                          view, *w.metric);
  bool has_dprime_candidate = false;
  for (const CandidateDataset& c : candidates) {
    if (c.source == "cleaned-dprime") has_dprime_candidate = true;
  }
  EXPECT_TRUE(has_dprime_candidate);
}

TEST(DatasetEnumeratorTest, CleanDPrimeDropsStrayExamples) {
  World w = MakeWorld();
  PreprocessResult pre = *Preprocessor::Run(*w.table, w.result,
                                            w.suspicious_groups, *w.metric);
  // Numeric-only view so k-means sees the v gap (bad rows sit at 100).
  FeatureView view = *FeatureView::Create(*w.table, {"knob", "v"});
  // D' = 15 bad rows + 2 accidental normal rows.
  std::vector<RowId> dprime(w.bad_rows.begin(), w.bad_rows.begin() + 15);
  std::vector<RowId> strays;
  for (RowId r : pre.suspect_inputs) {
    if (!std::binary_search(w.bad_rows.begin(), w.bad_rows.end(), r)) {
      strays.push_back(r);
      dprime.push_back(r);
      if (strays.size() == 2) break;
    }
  }
  DatasetEnumerator enumerator;
  auto cleaned = *enumerator.CleanDPrime(*w.table, dprime, pre.suspect_inputs,
                                         pre.influences, view);
  for (RowId stray : strays) {
    EXPECT_FALSE(std::binary_search(cleaned.begin(), cleaned.end(), stray))
        << "stray row " << stray << " survived cleaning";
  }
  EXPECT_GE(cleaned.size(), 13u);
}

TEST(DatasetEnumeratorTest, CleanMethodNoneKeepsEverything) {
  World w = MakeWorld();
  PreprocessResult pre = *Preprocessor::Run(*w.table, w.result,
                                            w.suspicious_groups, *w.metric);
  FeatureView view = *FeatureView::Create(*w.table, {"knob", "v"});
  DatasetEnumeratorOptions opts;
  opts.clean_method = CleanMethod::kNone;
  DatasetEnumerator enumerator(opts);
  // Two bad rows plus three ordinary (non-bad) suspect rows.
  std::vector<RowId> dprime = {w.bad_rows[0], w.bad_rows[1]};
  for (RowId r : pre.suspect_inputs) {
    if (dprime.size() == 5) break;
    if (!std::binary_search(w.bad_rows.begin(), w.bad_rows.end(), r)) {
      dprime.push_back(r);
    }
  }
  std::sort(dprime.begin(), dprime.end());
  auto cleaned = *enumerator.CleanDPrime(*w.table, dprime, pre.suspect_inputs,
                                         pre.influences, view);
  EXPECT_EQ(cleaned, dprime);
}

TEST(DatasetEnumeratorTest, MaxCandidatesHonored) {
  World w = MakeWorld();
  PreprocessResult pre = *Preprocessor::Run(*w.table, w.result,
                                            w.suspicious_groups, *w.metric);
  FeatureView view = *FeatureView::Create(*w.table, {"g", "tag", "knob"});
  DatasetEnumeratorOptions opts;
  opts.max_candidates = 2;
  DatasetEnumerator enumerator(opts);
  auto candidates = *enumerator.Enumerate(*w.table, w.result,
                                          w.suspicious_groups, pre, {}, view,
                                          *w.metric);
  EXPECT_LE(candidates.size(), 2u);
}

// ---------- Predicate Enumerator ----------

TEST(PredicateEnumeratorTest, TreesRecoverTheTagPredicate) {
  World w = MakeWorld();
  PreprocessResult pre = *Preprocessor::Run(*w.table, w.result,
                                            w.suspicious_groups, *w.metric);
  FeatureView view = *FeatureView::Create(*w.table, {"g", "tag", "knob"});
  CandidateDataset cand;
  cand.rows = w.bad_rows;  // perfect candidate
  cand.source = "truth";
  PredicateEnumerator enumerator;
  auto predicates = *enumerator.Enumerate(view, pre.suspect_inputs, {cand});
  ASSERT_FALSE(predicates.empty());
  bool found_tag = false;
  for (const EnumeratedPredicate& ep : predicates) {
    if (ep.predicate.ToString() == "tag = 'bad'") found_tag = true;
  }
  EXPECT_TRUE(found_tag);
}

TEST(PredicateEnumeratorTest, DeduplicatesAcrossStrategies) {
  World w = MakeWorld();
  PreprocessResult pre = *Preprocessor::Run(*w.table, w.result,
                                            w.suspicious_groups, *w.metric);
  FeatureView view = *FeatureView::Create(*w.table, {"tag"});
  CandidateDataset cand;
  cand.rows = w.bad_rows;
  PredicateEnumerator enumerator;
  auto predicates = *enumerator.Enumerate(view, pre.suspect_inputs, {cand});
  std::set<std::string> canon;
  for (const EnumeratedPredicate& ep : predicates) {
    EXPECT_TRUE(canon.insert(ep.predicate.CanonicalString()).second)
        << "duplicate " << ep.predicate.ToString();
  }
}

TEST(PredicateEnumeratorTest, BoundingDescriptionWhenFIsAllAnomalous) {
  // Groups are per-sensor, so selecting the broken sensor's group
  // yields an F with no negative examples for the trees. The bounding
  // description still produces the paper's "sensorid = 15 AND
  // minute >= t0" shape by spanning the candidate against the table.
  Rng rng(44);
  auto t = std::make_shared<Table>(Schema{{"sensorid", DataType::kInt64},
                                          {"minute", DataType::kInt64},
                                          {"temp", DataType::kDouble}},
                                   "r");
  for (int s = 0; s < 10; ++s) {
    for (int m = 0; m < 100; ++m) {
      const bool hot = s == 7 && m >= 50;
      DBW_CHECK_OK(t->AppendRow({Value(static_cast<int64_t>(s)),
                                 Value(static_cast<int64_t>(m)),
                                 Value(hot ? rng.Normal(120, 2)
                                           : rng.Normal(20, 1))}));
    }
  }
  QueryResult result = *ExecuteQuery(
      *ParseQuery("SELECT sensorid, avg(temp) AS a FROM r WHERE minute >= 50 "
                  "GROUP BY sensorid"),
      *t);
  auto metric = TooHigh(25.0);
  std::vector<size_t> selected = {7};
  PreprocessResult pre = *Preprocessor::Run(*t, result, selected, *metric);
  // Everything in F belongs to the broken sensor.
  FeatureView view = *FeatureView::Create(*t, {"sensorid", "minute"});
  CandidateDataset cand;
  cand.rows = pre.suspect_inputs;
  PredicateEnumerator enumerator;
  auto predicates = *enumerator.Enumerate(view, pre.suspect_inputs, {cand});
  ASSERT_FALSE(predicates.empty());
  bool found = false;
  for (const EnumeratedPredicate& ep : predicates) {
    if (ep.strategy == "bounding") {
      found = true;
      const std::string text = ep.predicate.ToString();
      EXPECT_NE(text.find("sensorid = 7"), std::string::npos) << text;
      EXPECT_NE(text.find("minute >= 50"), std::string::npos) << text;
    }
  }
  EXPECT_TRUE(found);
}

TEST(PredicateEnumeratorTest, DegenerateCandidatesSkipped) {
  World w = MakeWorld();
  PreprocessResult pre = *Preprocessor::Run(*w.table, w.result,
                                            w.suspicious_groups, *w.metric);
  FeatureView view = *FeatureView::Create(*w.table, {"tag"});
  CandidateDataset all;
  all.rows = pre.suspect_inputs;  // covers everything -> no negatives
  auto r = PredicateEnumerator().Enumerate(view, pre.suspect_inputs, {all});
  EXPECT_FALSE(r.ok());
}

// ---------- Predicate Ranker ----------

TEST(PredicateRankerTest, TruePredicateOutranksBroadAndNarrow) {
  World w = MakeWorld();
  PreprocessResult pre = *Preprocessor::Run(*w.table, w.result,
                                            w.suspicious_groups, *w.metric);
  std::vector<EnumeratedPredicate> candidates;
  auto add = [&](Predicate p) {
    EnumeratedPredicate ep;
    ep.predicate = std::move(p);
    ep.strategy = "test";
    candidates.push_back(std::move(ep));
  };
  add(Predicate({Clause::Make("tag", CompareOp::kEq, Value("bad"))}));
  // Over-broad: matches everything.
  add(Predicate({Clause::Make("knob", CompareOp::kGe, Value(-100.0))}));
  // Under-broad: matches a couple of bad rows.
  add(Predicate({Clause::Make("tag", CompareOp::kEq, Value("bad")),
                 Clause::Make("knob", CompareOp::kGe, Value(1.0))}));

  PredicateRanker ranker;
  auto ranked = *ranker.Rank(*w.table, w.result, w.suspicious_groups,
                             *w.metric, 0, pre.suspect_inputs, w.bad_rows,
                             pre.per_group_baseline_error, candidates);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].predicate.ToString(), "tag = 'bad'");
  EXPECT_NEAR(ranked[0].error_improvement, 1.0, 1e-9);
  EXPECT_NEAR(ranked[0].f1, 1.0, 1e-9);
  EXPECT_NEAR(ranked[0].error_after, 0.0, 1e-9);
}

TEST(PredicateRankerTest, EquivalentRepairsCollapseToTheShortest) {
  World w = MakeWorld();
  PreprocessResult pre = *Preprocessor::Run(*w.table, w.result,
                                            w.suspicious_groups, *w.metric);
  // Two predicates removing the same tuples, one padded with a
  // redundant clause: interchangeable repairs collapse to one entry,
  // and the complexity penalty makes the shorter description win.
  std::vector<EnumeratedPredicate> candidates(2);
  candidates[0].predicate =
      Predicate({Clause::Make("tag", CompareOp::kEq, Value("bad"))});
  candidates[1].predicate =
      Predicate({Clause::Make("tag", CompareOp::kEq, Value("bad")),
                 Clause::Make("knob", CompareOp::kGe, Value(-1000.0))});
  PredicateRanker ranker;
  auto ranked = *ranker.Rank(*w.table, w.result, w.suspicious_groups,
                             *w.metric, 0, pre.suspect_inputs, w.bad_rows,
                             pre.per_group_baseline_error, candidates);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0].predicate.num_clauses(), 1u);
}

TEST(PredicateRankerTest, TopKLimit) {
  World w = MakeWorld();
  PreprocessResult pre = *Preprocessor::Run(*w.table, w.result,
                                            w.suspicious_groups, *w.metric);
  std::vector<EnumeratedPredicate> candidates;
  for (int i = 0; i < 20; ++i) {
    EnumeratedPredicate ep;
    ep.predicate = Predicate(
        {Clause::Make("knob", CompareOp::kGe, Value(i * 0.1))});
    candidates.push_back(std::move(ep));
  }
  RankerOptions opts;
  opts.top_k = 5;
  auto ranked = *PredicateRanker(opts).Rank(
      *w.table, w.result, w.suspicious_groups, *w.metric, 0,
      pre.suspect_inputs, {}, pre.per_group_baseline_error, candidates);
  EXPECT_EQ(ranked.size(), 5u);
}

// ---------- full facade ----------

TEST(DBWipesTest, ExplainEndToEndRecoversTruth) {
  World w = MakeWorld();
  auto db = std::make_shared<Database>();
  db->RegisterTable(w.table);
  DBWipes engine(db);
  ExplanationRequest request;
  request.selected_groups = w.suspicious_groups;
  request.metric = w.metric;
  Explanation exp = *engine.Explain(w.result, request);
  ASSERT_FALSE(exp.predicates.empty());
  EXPECT_EQ(exp.predicates[0].predicate.ToString(), "tag = 'bad'");
  EXPECT_NEAR(exp.predicates[0].error_improvement, 1.0, 1e-9);
  EXPECT_GT(exp.preprocess.baseline_error, 0.0);
  EXPECT_GE(exp.total_ms(), 0.0);
}

TEST(DBWipesTest, CleanRemovesTheAnomaly) {
  World w = MakeWorld();
  auto db = std::make_shared<Database>();
  db->RegisterTable(w.table);
  DBWipes engine(db);
  Predicate p({Clause::Make("tag", CompareOp::kEq, Value("bad"))});
  QueryResult cleaned = *engine.Clean(w.result, p);
  for (size_t g = 0; g < cleaned.num_groups(); ++g) {
    EXPECT_LT(cleaned.AggValue(g, 0), 15.0);
  }
  EXPECT_NE(cleaned.query.ToSql().find("NOT"), std::string::npos);
}

TEST(DBWipesTest, ExplainValidation) {
  World w = MakeWorld();
  auto db = std::make_shared<Database>();
  db->RegisterTable(w.table);
  DBWipes engine(db);
  ExplanationRequest request;  // no metric
  request.selected_groups = {0};
  EXPECT_TRUE(engine.Explain(w.result, request).status().IsInvalidArgument());
  request.metric = w.metric;
  request.selected_groups = {};
  EXPECT_FALSE(engine.Explain(w.result, request).ok());
}

TEST(DBWipesTest, DefaultExplainColumnsExcludeMeasure) {
  World w = MakeWorld();
  auto cols = DefaultExplainColumns(*w.table, w.result.query, 0);
  EXPECT_EQ(cols, (std::vector<std::string>{"g", "tag", "knob"}));
}

}  // namespace
}  // namespace dbwipes
