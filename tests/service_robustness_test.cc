// Adversarial-input tests for Service::Execute: malformed commands,
// truncated arguments, non-numeric indices, unterminated quotes,
// multi-megabyte lines, and out-of-order interaction commands must all
// come back as well-formed JSON — never a crash, never garbage output.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "dbwipes/common/random.h"
#include "dbwipes/core/service.h"

namespace dbwipes {
namespace {

std::shared_ptr<Database> MakeDb() {
  Rng rng(41);
  auto t = std::make_shared<Table>(Schema{{"g", DataType::kInt64},
                                          {"tag", DataType::kString},
                                          {"v", DataType::kDouble}},
                                   "w");
  for (int g = 0; g < 4; ++g) {
    for (int i = 0; i < 40; ++i) {
      const bool bad = g >= 2 && i < 8;
      DBW_CHECK_OK(t->AppendRow({Value(static_cast<int64_t>(g)),
                                 Value(bad ? "bad" : "fine"),
                                 Value(bad ? rng.Normal(100, 2)
                                           : rng.Normal(10, 2))}));
    }
  }
  auto db = std::make_shared<Database>();
  db->RegisterTable(t);
  return db;
}

/// Minimal JSON validity check: one object, every string terminated,
/// braces/brackets balanced outside strings, nothing trailing.
bool IsWellFormedJsonObject(const std::string& s) {
  size_t i = 0;
  const size_t n = s.size();
  if (n == 0 || s[0] != '{') return false;
  std::vector<char> stack;
  bool in_string = false;
  for (; i < n; ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        if (i + 1 >= n) return false;
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      stack.push_back(c);
    } else if (c == '}' || c == ']') {
      if (stack.empty()) return false;
      const char open = stack.back();
      stack.pop_back();
      if ((c == '}') != (open == '{')) return false;
      if (stack.empty()) break;  // top-level object closed
    }
  }
  if (in_string || !stack.empty() || i >= n) return false;
  // Nothing but the one object on the line.
  return s.find_first_not_of(" \t\r\n", i + 1) == std::string::npos;
}

void ExpectCleanFailure(Service& service, const std::string& line) {
  const std::string out = service.Execute(line);
  EXPECT_TRUE(IsWellFormedJsonObject(out))
      << "malformed response to <" << line.substr(0, 60) << ">: " << out;
  EXPECT_NE(out.find("\"ok\": false"), std::string::npos)
      << "<" << line.substr(0, 60) << "> did not fail: " << out;
  EXPECT_NE(out.find("\"error\""), std::string::npos) << out;
}

TEST(ServiceRobustnessTest, MalformedAndTruncatedCommands) {
  Service service(MakeDb());
  for (const char* bad : {
           "",
           "   ",
           "\t\t",
           "bogus",
           "debugg",
           "sql",
           "sql    ",
           "sql SELECT",
           "sql SELECT FROM nothing",
           "select_range",
           "select_range a",
           "select_range a 1",
           "select_groups",
           "inputs_where",
           "metric",
           "metric too_high",
           "metric nope 1",
           "clean",
           "clean_where",
           "set_deadline",
           "set_deadline soon",
           "profile",
           "trace",
       }) {
    ExpectCleanFailure(service, bad);
  }
}

TEST(ServiceRobustnessTest, UnknownSubcommandNamesOffendingToken) {
  Service service(MakeDb());
  const std::string resp = service.Execute("profile sometimes");
  EXPECT_TRUE(IsWellFormedJsonObject(resp)) << resp;
  EXPECT_NE(resp.find("\"ok\": false"), std::string::npos) << resp;
  EXPECT_NE(resp.find("sometimes"), std::string::npos) << resp;
}

TEST(ServiceRobustnessTest, NonNumericArguments) {
  Service service(MakeDb());
  ASSERT_NE(service.Execute("sql SELECT g, avg(v) AS a FROM w GROUP BY g")
                .find("\"ok\": true"),
            std::string::npos);
  for (const char* bad : {
           "select_range a lo hi",
           "select_range a 1 hi",
           "select_groups x y",
           "select_groups -1",
           "select_groups e99x",
           "metric too_high twelve",
           "clean zero",
           "clean -3",
           "clean 999999999999999999999999",
       }) {
    ExpectCleanFailure(service, bad);
  }
}

TEST(ServiceRobustnessTest, UnterminatedQuotesAndParserGarbage) {
  Service service(MakeDb());
  ASSERT_NE(service.Execute("sql SELECT g, avg(v) AS a FROM w GROUP BY g")
                .find("\"ok\": true"),
            std::string::npos);
  ASSERT_NE(service.Execute("select_groups 2 3").find("\"ok\": true"),
            std::string::npos);
  for (const char* bad : {
           "sql SELECT g, avg(v) AS a FROM w WHERE tag = 'oops GROUP BY g",
           "inputs_where tag = 'unterminated",
           "inputs_where tag = \"mismatched'",
           "inputs_where ((v > 0",
           "inputs_where v >",
           "inputs_where 'lonely string'",
           "clean_where tag = 'open",
           "clean_where AND AND AND",
           "clean_where =",
       }) {
    ExpectCleanFailure(service, bad);
  }
}

TEST(ServiceRobustnessTest, HugeLinesDoNotCrash) {
  Service service(MakeDb());
  // 10 MB of a single token, of repeated clauses, and of quote noise.
  const std::string big_token(10 * 1024 * 1024, 'x');
  ExpectCleanFailure(service, big_token);
  ExpectCleanFailure(service, "sql " + big_token);

  std::string huge_filter = "inputs_where v > 0";
  while (huge_filter.size() < 10 * 1024 * 1024) {
    huge_filter += " AND v > 0";
  }
  // Valid syntax but no query/selection yet — must fail cleanly, fast.
  const std::string out = service.Execute(huge_filter);
  EXPECT_TRUE(IsWellFormedJsonObject(out)) << out.substr(0, 200);
  EXPECT_NE(out.find("\"ok\": false"), std::string::npos);

  std::string quote_noise = "clean_where ";
  quote_noise.append(10 * 1024 * 1024, '\'');
  ExpectCleanFailure(service, quote_noise);
}

TEST(ServiceRobustnessTest, ControlCharactersAreEscapedInResponses) {
  Service service(MakeDb());
  // The parse error echoes the input; embedded newlines/quotes must
  // come back JSON-escaped, not raw.
  const std::string out =
      service.Execute("sql SELECT \"\n\t\x01 FROM w");
  EXPECT_TRUE(IsWellFormedJsonObject(out)) << out;
  EXPECT_EQ(out.find('\n'), std::string::npos) << out;
  EXPECT_EQ(out.find('\x01'), std::string::npos) << out;
}

TEST(ServiceRobustnessTest, UndoResetOnEmptyStacksInterleaved) {
  Service service(MakeDb());
  // Before any query: undo/reset have nothing to operate on.
  ExpectCleanFailure(service, "undo");
  ExpectCleanFailure(service, "reset");

  ASSERT_NE(service.Execute("sql SELECT g, avg(v) AS a FROM w GROUP BY g")
                .find("\"ok\": true"),
            std::string::npos);
  // With a query but an empty cleaning stack: undo fails, reset is a
  // harmless no-op re-execution.
  ExpectCleanFailure(service, "undo");
  EXPECT_NE(service.Execute("reset").find("\"ok\": true"), std::string::npos);

  // Push one predicate, then drain it twice over.
  ASSERT_NE(service.Execute("clean_where tag = 'bad'").find("\"ok\": true"),
            std::string::npos);
  EXPECT_NE(service.Execute("undo").find("\"ok\": true"), std::string::npos);
  ExpectCleanFailure(service, "undo");
  EXPECT_NE(service.Execute("reset").find("\"ok\": true"), std::string::npos);
  ExpectCleanFailure(service, "undo");

  // The session survives the abuse: a full flow still works.
  ASSERT_NE(service.Execute("select_range a 20 1e9").find("\"ok\": true"),
            std::string::npos);
  ASSERT_NE(service.Execute("metric too_high 12").find("\"ok\": true"),
            std::string::npos);
  const std::string debug = service.Execute("debug");
  EXPECT_NE(debug.find("\"ok\": true"), std::string::npos) << debug;
  EXPECT_TRUE(IsWellFormedJsonObject(debug));
}

TEST(ServiceRobustnessTest, EverySuccessResponseIsWellFormedToo) {
  Service service(MakeDb());
  for (const char* cmd : {
           "sql SELECT g, avg(v) AS a FROM w GROUP BY g",
           "result",
           "select_range a 20 1e9",
           "inputs_where v > 50",
           "metrics",
           "metric too_high 12",
           "set_deadline 60000",
           "debug",
           "set_deadline 0",
           "clean 0",
           "state",
           "undo",
           "reset",
           "cancel",
       }) {
    const std::string out = service.Execute(cmd);
    EXPECT_TRUE(IsWellFormedJsonObject(out))
        << cmd << " -> " << out.substr(0, 200);
    EXPECT_NE(out.find("\"ok\": true"), std::string::npos)
        << cmd << " -> " << out;
  }
}

// --- Concurrent fuzz pass ---
//
// N threads hurl hostile input at one queued service: random bytes,
// embedded NULs, truncated command prefixes, broken JSON, and
// multi-megabyte lines, interleaved with valid commands on private
// sessions. Every submission must resolve to one well-formed JSON
// object and the server must answer correctly afterwards. Carries the
// `stress` label so scripts/check.sh repeats it under ThreadSanitizer.

std::string FuzzLine(Rng& rng, int thread_id, int iter) {
  static const char* kCommands[] = {
      "sql SELECT g, avg(v) AS a FROM w GROUP BY g",
      "select_range a 20 1e9", "select_groups 2 3", "inputs_where v > 50",
      "metric too_high 12", "debug", "clean_where tag = 'bad'", "undo",
      "reset", "state", "stats", "session list", "retry 2 0",
      "snapshot save /nonexistent-dir/x/y/z.snap", "snapshot load",
  };
  constexpr size_t kNumCommands = sizeof(kCommands) / sizeof(kCommands[0]);
  switch (rng.UniformInt(6u)) {
    case 0: {  // pure random bytes, NULs included
      std::string s(rng.UniformInt(1u, 256u), '\0');
      for (char& c : s) c = static_cast<char>(rng.UniformInt(256u));
      return s;
    }
    case 1: {  // a valid command truncated mid-token
      const std::string cmd = kCommands[rng.UniformInt(kNumCommands)];
      return cmd.substr(0, rng.UniformInt(cmd.size() + 1));
    }
    case 2: {  // broken JSON-ish garbage
      static const char* kJunk[] = {
          "{\"cmd\": \"debug", "{]}", "sql {\"nested\": [1,2,",
          "metric \"too_high", "{\"ok\": false}", "[[[[[[[",
      };
      return kJunk[rng.UniformInt(6u)];
    }
    case 3: {  // oversized line: command + megabytes of trailing junk
      const size_t len =
          (thread_id == 0 && iter == 0) ? (10u << 20) : (64u << 10);
      std::string s = "sql SELECT ";
      s.append(len, 'g');
      return s;
    }
    case 4: {  // valid command with hostile session routing
      std::string s = "@";
      s.append(rng.UniformInt(0u, 80u), 'f');
      return s + " " + kCommands[rng.UniformInt(kNumCommands)];
    }
    default:  // valid command on this thread's own session
      return "@fuzz" + std::to_string(thread_id) + " " +
             kCommands[rng.UniformInt(kNumCommands)];
  }
}

TEST(ServiceFuzzTest, ConcurrentHostileInputNeverBreaksTheServer) {
  ServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = 64;
  Service service(MakeDb(), options);
  ASSERT_TRUE(service.Start().ok());

  constexpr int kThreads = 6;
  constexpr int kIters = 120;
  std::atomic<int> malformed{0};
  std::atomic<int> unresolved{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &malformed, &unresolved, t] {
      Rng rng(1000u + static_cast<uint64_t>(t));
      for (int i = 0; i < kIters; ++i) {
        std::future<std::string> fut = service.Submit(FuzzLine(rng, t, i));
        if (fut.wait_for(std::chrono::seconds(60)) !=
            std::future_status::ready) {
          ++unresolved;  // a silent drop or a hang — both are bugs
          continue;
        }
        if (!IsWellFormedJsonObject(fut.get())) ++malformed;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(unresolved.load(), 0);
  EXPECT_EQ(malformed.load(), 0);

  // The server survived: a full pipeline still works end to end.
  for (const char* cmd : {"@after sql SELECT g, avg(v) AS a FROM w GROUP BY g",
                          "@after select_range a 20 1e9",
                          "@after metric too_high 12", "@after debug"}) {
    const std::string out = service.Submit(cmd).get();
    EXPECT_NE(out.find("\"ok\": true"), std::string::npos)
        << cmd << " -> " << out.substr(0, 200);
  }
  service.Stop();
}

// ---------- shard commands ----------

TEST(ServiceShardRobustnessTest, MalformedShardCountsFailCleanly) {
  Service service(MakeDb());
  for (const char* bad : {
           "shards",                // no table
           "shards w",              // no count
           "shards w 0",            // below range
           "shards w -3",           // negative (size_t wraparound trap)
           "shards w 2x",           // trailing junk
           "shards w 1e3",          // scientific notation is not an integer
           "shards w 4.0",          // float is not an integer
           "shards w 999999",       // above kMaxShards
           "shards w 18446744073709551615",  // u64 max
           "shards nosuch 2",       // unknown table
       }) {
    ExpectCleanFailure(service, bad);
  }
  // The failures left no broken layout behind: sharding still works.
  EXPECT_NE(service.Execute("shards w 4").find("\"ok\": true"),
            std::string::npos);
}

TEST(ServiceShardRobustnessTest, AppendValidatesTableArityAndTypes) {
  Service service(MakeDb());
  // Appending to an unsharded table is refused with a hint, and to a
  // missing table with a clean error.
  ExpectCleanFailure(service, "append w 1 fine 10.5");
  EXPECT_NE(service.Execute("append w 1 fine 10.5").find("not sharded"),
            std::string::npos);
  ExpectCleanFailure(service, "append nosuch 1 fine 10.5");
  ExpectCleanFailure(service, "append");

  ASSERT_NE(service.Execute("shards w 2").find("\"ok\": true"),
            std::string::npos);
  for (const char* bad : {
           "append w",                  // no values at all
           "append w 1",                // too few values
           "append w 1 fine",           // still too few
           "append w 1 fine 10.5 extra",  // too many
           "append w abc fine 10.5",    // int64 column gets a string
           "append w 1.5 fine 10.5",    // int64 column gets a float
           "append w 1 fine 10.5.3",    // double column gets junk
       }) {
    ExpectCleanFailure(service, bad);
  }
  // Schema is {g:int64, tag:string, v:double}; `null` works anywhere.
  const std::string ok = service.Execute("append w 3 null null");
  EXPECT_NE(ok.find("\"ok\": true"), std::string::npos) << ok;
  EXPECT_NE(ok.find("\"shard\": 1"), std::string::npos) << ok;
}

TEST(ServiceShardRobustnessTest, StatsReportsShardLayoutAndCacheSizes) {
  Service service(MakeDb());
  // No sharded tables yet: stats still well-formed, shards object empty.
  std::string out = service.Execute("stats");
  EXPECT_TRUE(IsWellFormedJsonObject(out)) << out;
  EXPECT_NE(out.find("\"shards\": {}"), std::string::npos) << out;

  ASSERT_NE(service.Execute("shards w 4").find("\"ok\": true"),
            std::string::npos);
  ASSERT_NE(service.Execute("append w 1 fine 10.5").find("\"ok\": true"),
            std::string::npos);
  out = service.Execute("stats");
  EXPECT_TRUE(IsWellFormedJsonObject(out)) << out;
  // 160 rows split 4 ways, plus one append routed to the tail shard.
  EXPECT_NE(out.find("\"w\": {\"count\": 4, \"rows\": [40, 40, 40, 41]"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("\"cached_clauses\": [0, 0, 0, 0]"), std::string::npos)
      << out;
  EXPECT_NE(out.find("\"appends\": 1"), std::string::npos) << out;

  // A debug run warms the per-shard engines; stats shows the warmth.
  for (const char* cmd : {"sql SELECT g, avg(v) AS a FROM w GROUP BY g",
                          "select_groups 2 3", "metric too_high 15", "debug"}) {
    ASSERT_NE(service.Execute(cmd).find("\"ok\": true"), std::string::npos)
        << cmd;
  }
  out = service.Execute("stats");
  EXPECT_TRUE(IsWellFormedJsonObject(out)) << out;
  EXPECT_EQ(out.find("\"cached_clauses\": [0, 0, 0, 0]"), std::string::npos)
      << "debug did not warm any shard cache: " << out;
}

}  // namespace
}  // namespace dbwipes
