// Adversarial-input tests for Service::Execute: malformed commands,
// truncated arguments, non-numeric indices, unterminated quotes,
// multi-megabyte lines, and out-of-order interaction commands must all
// come back as well-formed JSON — never a crash, never garbage output.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "dbwipes/common/random.h"
#include "dbwipes/core/service.h"

namespace dbwipes {
namespace {

std::shared_ptr<Database> MakeDb() {
  Rng rng(41);
  auto t = std::make_shared<Table>(Schema{{"g", DataType::kInt64},
                                          {"tag", DataType::kString},
                                          {"v", DataType::kDouble}},
                                   "w");
  for (int g = 0; g < 4; ++g) {
    for (int i = 0; i < 40; ++i) {
      const bool bad = g >= 2 && i < 8;
      DBW_CHECK_OK(t->AppendRow({Value(static_cast<int64_t>(g)),
                                 Value(bad ? "bad" : "fine"),
                                 Value(bad ? rng.Normal(100, 2)
                                           : rng.Normal(10, 2))}));
    }
  }
  auto db = std::make_shared<Database>();
  db->RegisterTable(t);
  return db;
}

/// Minimal JSON validity check: one object, every string terminated,
/// braces/brackets balanced outside strings, nothing trailing.
bool IsWellFormedJsonObject(const std::string& s) {
  size_t i = 0;
  const size_t n = s.size();
  if (n == 0 || s[0] != '{') return false;
  std::vector<char> stack;
  bool in_string = false;
  for (; i < n; ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        if (i + 1 >= n) return false;
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      stack.push_back(c);
    } else if (c == '}' || c == ']') {
      if (stack.empty()) return false;
      const char open = stack.back();
      stack.pop_back();
      if ((c == '}') != (open == '{')) return false;
      if (stack.empty()) break;  // top-level object closed
    }
  }
  if (in_string || !stack.empty() || i >= n) return false;
  // Nothing but the one object on the line.
  return s.find_first_not_of(" \t\r\n", i + 1) == std::string::npos;
}

void ExpectCleanFailure(Service& service, const std::string& line) {
  const std::string out = service.Execute(line);
  EXPECT_TRUE(IsWellFormedJsonObject(out))
      << "malformed response to <" << line.substr(0, 60) << ">: " << out;
  EXPECT_NE(out.find("\"ok\": false"), std::string::npos)
      << "<" << line.substr(0, 60) << "> did not fail: " << out;
  EXPECT_NE(out.find("\"error\""), std::string::npos) << out;
}

TEST(ServiceRobustnessTest, MalformedAndTruncatedCommands) {
  Service service(MakeDb());
  for (const char* bad : {
           "",
           "   ",
           "\t\t",
           "bogus",
           "debugg",
           "sql",
           "sql    ",
           "sql SELECT",
           "sql SELECT FROM nothing",
           "select_range",
           "select_range a",
           "select_range a 1",
           "select_groups",
           "inputs_where",
           "metric",
           "metric too_high",
           "metric nope 1",
           "clean",
           "clean_where",
           "set_deadline",
           "set_deadline soon",
           "profile",
           "trace",
       }) {
    ExpectCleanFailure(service, bad);
  }
}

TEST(ServiceRobustnessTest, UnknownSubcommandNamesOffendingToken) {
  Service service(MakeDb());
  const std::string resp = service.Execute("profile sometimes");
  EXPECT_TRUE(IsWellFormedJsonObject(resp)) << resp;
  EXPECT_NE(resp.find("\"ok\": false"), std::string::npos) << resp;
  EXPECT_NE(resp.find("sometimes"), std::string::npos) << resp;
}

TEST(ServiceRobustnessTest, NonNumericArguments) {
  Service service(MakeDb());
  ASSERT_NE(service.Execute("sql SELECT g, avg(v) AS a FROM w GROUP BY g")
                .find("\"ok\": true"),
            std::string::npos);
  for (const char* bad : {
           "select_range a lo hi",
           "select_range a 1 hi",
           "select_groups x y",
           "select_groups -1",
           "select_groups e99x",
           "metric too_high twelve",
           "clean zero",
           "clean -3",
           "clean 999999999999999999999999",
       }) {
    ExpectCleanFailure(service, bad);
  }
}

TEST(ServiceRobustnessTest, UnterminatedQuotesAndParserGarbage) {
  Service service(MakeDb());
  ASSERT_NE(service.Execute("sql SELECT g, avg(v) AS a FROM w GROUP BY g")
                .find("\"ok\": true"),
            std::string::npos);
  ASSERT_NE(service.Execute("select_groups 2 3").find("\"ok\": true"),
            std::string::npos);
  for (const char* bad : {
           "sql SELECT g, avg(v) AS a FROM w WHERE tag = 'oops GROUP BY g",
           "inputs_where tag = 'unterminated",
           "inputs_where tag = \"mismatched'",
           "inputs_where ((v > 0",
           "inputs_where v >",
           "inputs_where 'lonely string'",
           "clean_where tag = 'open",
           "clean_where AND AND AND",
           "clean_where =",
       }) {
    ExpectCleanFailure(service, bad);
  }
}

TEST(ServiceRobustnessTest, HugeLinesDoNotCrash) {
  Service service(MakeDb());
  // 10 MB of a single token, of repeated clauses, and of quote noise.
  const std::string big_token(10 * 1024 * 1024, 'x');
  ExpectCleanFailure(service, big_token);
  ExpectCleanFailure(service, "sql " + big_token);

  std::string huge_filter = "inputs_where v > 0";
  while (huge_filter.size() < 10 * 1024 * 1024) {
    huge_filter += " AND v > 0";
  }
  // Valid syntax but no query/selection yet — must fail cleanly, fast.
  const std::string out = service.Execute(huge_filter);
  EXPECT_TRUE(IsWellFormedJsonObject(out)) << out.substr(0, 200);
  EXPECT_NE(out.find("\"ok\": false"), std::string::npos);

  std::string quote_noise = "clean_where ";
  quote_noise.append(10 * 1024 * 1024, '\'');
  ExpectCleanFailure(service, quote_noise);
}

TEST(ServiceRobustnessTest, ControlCharactersAreEscapedInResponses) {
  Service service(MakeDb());
  // The parse error echoes the input; embedded newlines/quotes must
  // come back JSON-escaped, not raw.
  const std::string out =
      service.Execute("sql SELECT \"\n\t\x01 FROM w");
  EXPECT_TRUE(IsWellFormedJsonObject(out)) << out;
  EXPECT_EQ(out.find('\n'), std::string::npos) << out;
  EXPECT_EQ(out.find('\x01'), std::string::npos) << out;
}

TEST(ServiceRobustnessTest, UndoResetOnEmptyStacksInterleaved) {
  Service service(MakeDb());
  // Before any query: undo/reset have nothing to operate on.
  ExpectCleanFailure(service, "undo");
  ExpectCleanFailure(service, "reset");

  ASSERT_NE(service.Execute("sql SELECT g, avg(v) AS a FROM w GROUP BY g")
                .find("\"ok\": true"),
            std::string::npos);
  // With a query but an empty cleaning stack: undo fails, reset is a
  // harmless no-op re-execution.
  ExpectCleanFailure(service, "undo");
  EXPECT_NE(service.Execute("reset").find("\"ok\": true"), std::string::npos);

  // Push one predicate, then drain it twice over.
  ASSERT_NE(service.Execute("clean_where tag = 'bad'").find("\"ok\": true"),
            std::string::npos);
  EXPECT_NE(service.Execute("undo").find("\"ok\": true"), std::string::npos);
  ExpectCleanFailure(service, "undo");
  EXPECT_NE(service.Execute("reset").find("\"ok\": true"), std::string::npos);
  ExpectCleanFailure(service, "undo");

  // The session survives the abuse: a full flow still works.
  ASSERT_NE(service.Execute("select_range a 20 1e9").find("\"ok\": true"),
            std::string::npos);
  ASSERT_NE(service.Execute("metric too_high 12").find("\"ok\": true"),
            std::string::npos);
  const std::string debug = service.Execute("debug");
  EXPECT_NE(debug.find("\"ok\": true"), std::string::npos) << debug;
  EXPECT_TRUE(IsWellFormedJsonObject(debug));
}

TEST(ServiceRobustnessTest, EverySuccessResponseIsWellFormedToo) {
  Service service(MakeDb());
  for (const char* cmd : {
           "sql SELECT g, avg(v) AS a FROM w GROUP BY g",
           "result",
           "select_range a 20 1e9",
           "inputs_where v > 50",
           "metrics",
           "metric too_high 12",
           "set_deadline 60000",
           "debug",
           "set_deadline 0",
           "clean 0",
           "state",
           "undo",
           "reset",
           "cancel",
       }) {
    const std::string out = service.Execute(cmd);
    EXPECT_TRUE(IsWellFormedJsonObject(out))
        << cmd << " -> " << out.substr(0, 200);
    EXPECT_NE(out.find("\"ok\": true"), std::string::npos)
        << cmd << " -> " << out;
  }
}

}  // namespace
}  // namespace dbwipes
