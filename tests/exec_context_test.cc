// Unit tests for the anytime-execution primitives (common/exec_context.h):
// cancellation tokens, deadlines, resource budgets, and the fault-injection
// registry behind DBW_FAULT sites.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <thread>

#include "dbwipes/common/exec_context.h"

namespace dbwipes {
namespace {

// ---------- Cancellation ----------

TEST(CancellationTest, NullTokenNeverCancels) {
  CancellationToken token;
  EXPECT_FALSE(token.IsCancelled());
  EXPECT_EQ(token.reason(), "");
}

TEST(CancellationTest, SourceTripsItsTokens) {
  CancellationSource source;
  CancellationToken a = source.token();
  CancellationToken b = source.token();
  EXPECT_FALSE(source.cancelled());
  EXPECT_FALSE(a.IsCancelled());
  source.Cancel("user clicked stop");
  EXPECT_TRUE(source.cancelled());
  EXPECT_TRUE(a.IsCancelled());
  EXPECT_TRUE(b.IsCancelled());
  EXPECT_EQ(a.reason(), "user clicked stop");
}

TEST(CancellationTest, FirstReasonWins) {
  CancellationSource source;
  source.Cancel("first");
  source.Cancel("second");
  EXPECT_EQ(source.token().reason(), "first");
}

TEST(CancellationTest, CancelFromAnotherThreadIsVisible) {
  CancellationSource source;
  CancellationToken token = source.token();
  std::thread canceller([&source] { source.Cancel("cross-thread"); });
  while (!token.IsCancelled()) {
    std::this_thread::yield();
  }
  canceller.join();
  EXPECT_EQ(token.reason(), "cross-thread");
}

// ---------- Deadline ----------

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining_ms()));
  EXPECT_FALSE(Deadline::Infinite().expired());
}

TEST(DeadlineTest, ExpiresAfterInterval) {
  Deadline d = Deadline::After(1.0);
  EXPECT_FALSE(d.infinite());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(d.expired());
  EXPECT_LE(d.remaining_ms(), 0.0);
}

TEST(DeadlineTest, FarFutureNotExpired) {
  Deadline d = Deadline::After(60000.0);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_ms(), 1000.0);
}

// ---------- ResourceBudget ----------

TEST(ResourceBudgetTest, ZeroLimitsAreUnlimited) {
  ResourceBudget budget;
  EXPECT_TRUE(budget.ChargePredicates(1000000).ok());
  EXPECT_TRUE(budget.ChargeBitmapBytes(1 << 30).ok());
  EXPECT_TRUE(budget.ChargeScoredRemovals(1000000).ok());
  EXPECT_FALSE(budget.any_exhausted());
}

TEST(ResourceBudgetTest, ChargeUpToLimitThenFail) {
  ResourceBudget budget(/*max_candidate_predicates=*/10,
                        /*max_bitmap_bytes=*/0, /*max_scored_removals=*/0);
  EXPECT_TRUE(budget.ChargePredicates(4).ok());
  EXPECT_TRUE(budget.ChargePredicates(6).ok());  // exactly at the limit
  Status over = budget.ChargePredicates(1);
  EXPECT_TRUE(over.IsResourceExhausted()) << over.ToString();
  EXPECT_TRUE(budget.predicates_exhausted());
  EXPECT_TRUE(budget.any_exhausted());
  EXPECT_FALSE(budget.bitmap_exhausted());
}

TEST(ResourceBudgetTest, EachDimensionIndependent) {
  ResourceBudget budget(5, 100, 7);
  EXPECT_TRUE(budget.ChargeBitmapBytes(200).IsResourceExhausted());
  EXPECT_TRUE(budget.bitmap_exhausted());
  EXPECT_FALSE(budget.predicates_exhausted());
  EXPECT_FALSE(budget.removals_exhausted());
  EXPECT_TRUE(budget.ChargePredicates(5).ok());
  EXPECT_TRUE(budget.ChargeScoredRemovals(7).ok());
}

TEST(ResourceBudgetTest, ConcurrentChargesNeverExceedLimit) {
  ResourceBudget budget(0, 0, /*max_scored_removals=*/1000);
  std::atomic<size_t> granted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 400; ++i) {
        if (budget.ChargeScoredRemovals(1).ok()) granted.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // fetch_add-based charging admits exactly `limit` units even under
  // contention (later failed charges still bump the used counter, which
  // is fine — the grant count is what budgets promise).
  EXPECT_EQ(granted.load(), 1000u);
  EXPECT_TRUE(budget.removals_exhausted());
}

// ---------- FaultInjector ----------

TEST(FaultInjectorTest, UnarmedSiteIsOkAndUncounted) {
  FaultInjector faults;
  EXPECT_TRUE(faults.Hit("ranker/score").ok());
  EXPECT_EQ(faults.hits("ranker/score"), 0u);
}

TEST(FaultInjectorTest, ArmedErrorFiresAndCounts) {
  FaultInjector faults;
  faults.ArmError("ranker/score", Status::IoError("disk on fire"));
  Status st = faults.Hit("ranker/score");
  EXPECT_TRUE(st.IsIoError());
  EXPECT_EQ(faults.hits("ranker/score"), 1u);
  faults.Disarm("ranker/score");
  EXPECT_TRUE(faults.Hit("ranker/score").ok());
}

TEST(FaultInjectorTest, CountLimitedFaultSelfDisarms) {
  FaultInjector faults;
  FaultInjector::Fault fault;
  fault.status = Status::RuntimeError("boom");
  fault.count = 2;
  faults.Arm("match/materialize", fault);
  EXPECT_FALSE(faults.Hit("match/materialize").ok());
  EXPECT_FALSE(faults.Hit("match/materialize").ok());
  EXPECT_TRUE(faults.Hit("match/materialize").ok());  // disarmed
  EXPECT_EQ(faults.hits("match/materialize"), 2u);
}

TEST(FaultInjectorTest, LatencyFaultDelays) {
  FaultInjector faults;
  FaultInjector::Fault fault;
  fault.latency_ms = 10.0;
  faults.Arm("scorer/create", fault);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(faults.Hit("scorer/create").ok());
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed_ms, 9.0);
}

TEST(FaultInjectorTest, TripFaultCancelsSource) {
  FaultInjector faults;
  auto source = std::make_shared<CancellationSource>();
  FaultInjector::Fault fault;
  fault.trip = source;
  faults.Arm("enumerate/datasets", fault);
  EXPECT_TRUE(faults.Hit("enumerate/datasets").ok());  // trip, not error
  EXPECT_TRUE(source->cancelled());
}

TEST(FaultInjectorTest, DisarmAllClearsEverything) {
  FaultInjector faults;
  for (const std::string& site : AllFaultSites()) {
    faults.ArmError(site, Status::RuntimeError("armed"));
  }
  faults.DisarmAll();
  for (const std::string& site : AllFaultSites()) {
    EXPECT_TRUE(faults.Hit(site).ok()) << site;
  }
}

TEST(FaultSiteRegistryTest, SitesAreUniqueAndWellFormed) {
  const std::vector<std::string>& sites = AllFaultSites();
  EXPECT_FALSE(sites.empty());
  std::set<std::string> unique(sites.begin(), sites.end());
  EXPECT_EQ(unique.size(), sites.size());
  for (const std::string& site : sites) {
    // "<stage>/<step>" naming convention.
    EXPECT_NE(site.find('/'), std::string::npos) << site;
  }
}

// ---------- ExecContext ----------

TEST(ExecContextTest, DefaultRunsToCompletion) {
  ExecContext ctx;
  EXPECT_FALSE(ctx.StopRequested());
  EXPECT_TRUE(ctx.CheckContinue().ok());
  EXPECT_FALSE(ExecContext::None().StopRequested());
}

TEST(ExecContextTest, CancelledReportsCancelled) {
  CancellationSource source;
  ExecContext ctx;
  ctx.token = source.token();
  source.Cancel("stop it");
  EXPECT_TRUE(ctx.StopRequested());
  Status st = ctx.CheckContinue();
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
  EXPECT_TRUE(st.IsInterrupt());
  EXPECT_NE(st.ToString().find("stop it"), std::string::npos);
}

TEST(ExecContextTest, ExpiredDeadlineReportsDeadline) {
  ExecContext ctx;
  ctx.deadline = Deadline::After(-1.0);  // already past
  EXPECT_TRUE(ctx.StopRequested());
  EXPECT_TRUE(ctx.CheckContinue().IsDeadlineExceeded());
}

TEST(ExecContextTest, CancelOutranksDeadline) {
  CancellationSource source;
  source.Cancel();
  ExecContext ctx;
  ctx.token = source.token();
  ctx.deadline = Deadline::After(-1.0);
  // Both hold; an explicit cancel must not be misreported as a timeout.
  EXPECT_TRUE(ctx.CheckContinue().IsCancelled());
}

TEST(ExecContextTest, InterruptCodesAreInterrupts) {
  EXPECT_TRUE(Status::Cancelled("x").IsInterrupt());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsInterrupt());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsInterrupt());
  EXPECT_FALSE(Status::RuntimeError("x").IsInterrupt());
  EXPECT_FALSE(Status::OK().IsInterrupt());
}

Status SiteUnderTest(const ExecContext& ctx) {
  DBW_FAULT(ctx, "ranker/rank");
  return Status::OK();
}

TEST(ExecContextTest, FaultMacroFiresOnlyWithInjector) {
  ExecContext ctx;
  EXPECT_TRUE(SiteUnderTest(ctx).ok());  // null injector: pure no-op
  FaultInjector faults;
  faults.ArmError("ranker/rank", Status::IoError("injected"));
  ctx.faults = &faults;
  EXPECT_TRUE(SiteUnderTest(ctx).IsIoError());
  faults.Disarm("ranker/rank");
  EXPECT_TRUE(SiteUnderTest(ctx).ok());
  EXPECT_EQ(faults.hits("ranker/rank"), 1u);
}

}  // namespace
}  // namespace dbwipes
