#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "dbwipes/common/random.h"
#include "dbwipes/common/result.h"
#include "dbwipes/common/stats.h"
#include "dbwipes/common/status.h"
#include "dbwipes/common/string_util.h"

namespace dbwipes {
namespace {

// ---------- Status / Result ----------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.ToString(), "Invalid argument: bad k");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::TypeError("x").IsTypeError());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  DBW_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, ValueAndErrorPaths) {
  EXPECT_EQ(*Half(10), 5);
  EXPECT_FALSE(Half(3).ok());
  EXPECT_TRUE(Half(3).status().IsInvalidArgument());
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3, odd
}

TEST(ResultTest, ValueOr) {
  EXPECT_EQ(Half(3).ValueOr(-1), -1);
  EXPECT_EQ(Half(4).ValueOr(-1), 2);
}

// ---------- Rng ----------

TEST(RngTest, Deterministic) {
  Rng a(1), b(1), c(2);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(7u), 7u);
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(5);
  OnlineStats s;
  for (int i = 0; i < 50000; ++i) s.Add(rng.Normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ZipfRangeAndSkew) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = rng.Zipf(10, 1.2);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  // Rank 0 should dominate rank 9 under skew.
  EXPECT_GT(counts[0], counts[9] * 3);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(8);
  std::vector<double> w = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) ++counts[rng.WeightedIndex(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(12);
  OnlineStats s;
  for (int i = 0; i < 50000; ++i) s.Add(rng.Exponential(2.0));
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
  for (int i = 0; i < 100; ++i) EXPECT_GT(rng.Exponential(0.1), 0.0);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(9);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(sample.size(), 30u);
  EXPECT_EQ(distinct.size(), 30u);
  for (size_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(10);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// ---------- OnlineStats ----------

TEST(OnlineStatsTest, BasicMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 6.0}) s.Add(x);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 12.0);
  EXPECT_NEAR(s.variance(), 8.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.sample_variance(), 4.0, 1e-12);
}

TEST(OnlineStatsTest, RemoveIsExactInverseOfAdd) {
  OnlineStats s;
  for (double x : {1.0, 5.0, 9.0, 13.0}) s.Add(x);
  const double mean_before = s.mean();
  const double var_before = s.variance();
  s.Add(100.0);
  s.Remove(100.0);
  EXPECT_NEAR(s.mean(), mean_before, 1e-9);
  EXPECT_NEAR(s.variance(), var_before, 1e-9);
  EXPECT_EQ(s.count(), 4u);
}

TEST(OnlineStatsTest, RemoveDownToEmpty) {
  OnlineStats s;
  s.Add(3.0);
  s.Remove(3.0);
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStatsTest, MergeMatchesBulk) {
  Rng rng(11);
  OnlineStats a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.Normal(5, 2);
    a.Add(x);
    all.Add(x);
  }
  for (int i = 0; i < 57; ++i) {
    const double x = rng.Normal(-1, 3);
    b.Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

class OnlineStatsRemoveProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OnlineStatsRemoveProperty, RandomRemovalMatchesRecompute) {
  Rng rng(GetParam());
  std::vector<double> values;
  OnlineStats s;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.Normal(0, 10);
    values.push_back(x);
    s.Add(x);
  }
  // Remove half in random order; compare against a fresh accumulation.
  rng.Shuffle(&values);
  for (int i = 0; i < 100; ++i) {
    s.Remove(values.back());
    values.pop_back();
  }
  OnlineStats fresh;
  for (double x : values) fresh.Add(x);
  EXPECT_EQ(s.count(), fresh.count());
  EXPECT_NEAR(s.mean(), fresh.mean(), 1e-8);
  EXPECT_NEAR(s.variance(), fresh.variance(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineStatsRemoveProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class OnlineStatsInterleaveProperty
    : public ::testing::TestWithParam<uint64_t> {};

/// Random Add/Remove interleavings (not add-all-then-remove) checked
/// against a recompute-from-scratch accumulator at every step. This is
/// the exact access pattern the delta scorer drives, where Remove may
/// immediately follow Add on a half-built window.
TEST_P(OnlineStatsInterleaveProperty, InterleavedAddRemoveMatchesRecompute) {
  Rng rng(GetParam());
  std::vector<double> live;
  OnlineStats s;
  for (int step = 0; step < 400; ++step) {
    if (!live.empty() && rng.UniformDouble() < 0.4) {
      const size_t i = rng.UniformInt(live.size());
      s.Remove(live[i]);
      live[i] = live.back();
      live.pop_back();
    } else {
      const double x = rng.UniformDouble() * 2.0 - 1.0;
      live.push_back(x);
      s.Add(x);
    }
    OnlineStats fresh;
    for (double x : live) fresh.Add(x);
    ASSERT_EQ(s.count(), fresh.count()) << "step " << step;
    ASSERT_NEAR(s.mean(), fresh.mean(), 1e-9) << "step " << step;
    ASSERT_NEAR(s.variance(), fresh.variance(), 1e-9) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineStatsInterleaveProperty,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18));

// ---------- batch stats ----------

TEST(StatsTest, QuantileAndMedian) {
  std::vector<double> xs = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(Median(xs), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25), 2.0);
}

TEST(StatsTest, QuantileEmpty) { EXPECT_EQ(Quantile({}, 0.5), 0.0); }

TEST(StatsTest, PearsonCorrelation) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
  std::vector<double> zs = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(xs, zs), -1.0, 1e-12);
  std::vector<double> cs = {3, 3, 3, 3, 3};
  EXPECT_EQ(PearsonCorrelation(xs, cs), 0.0);
}

// ---------- string utils ----------

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split(",a,", ','),
            (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(Split("a;b;c", ';'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, TrimAndCase) {
  EXPECT_EQ(Trim("  x \t\n"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
}

TEST(StringUtilTest, PrefixSuffixCase) {
  EXPECT_TRUE(StartsWith("sensor_id", "sensor"));
  EXPECT_FALSE(StartsWith("id", "sensor"));
  EXPECT_TRUE(EndsWith("file.csv", ".csv"));
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
}

TEST(StringUtilTest, ParseInt64Strict) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64(" -7 "), -7);
  EXPECT_FALSE(ParseInt64("4.2").ok());
  EXPECT_FALSE(ParseInt64("x").ok());
  EXPECT_FALSE(ParseInt64("").ok());
}

TEST(StringUtilTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("1e3"), 1000.0);
  EXPECT_FALSE(ParseDouble("3.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(-12.0), "-12");
  EXPECT_EQ(FormatDouble(3.25), "3.25");
  EXPECT_EQ(FormatDouble(std::nan("")), "nan");
}

}  // namespace
}  // namespace dbwipes
