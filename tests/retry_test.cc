// Error taxonomy + retry policy tests: every StatusCode classifies as
// exactly one of transient/permanent, the backoff schedule is
// deterministic, RetryTransient recovers from injected transient
// faults with the attempt count observable, and permanent errors are
// never retried. The service-level tests drive the same machinery
// through the `debug` command against armed DBW_FAULT sites.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dbwipes/common/exec_context.h"
#include "dbwipes/common/random.h"
#include "dbwipes/common/retry.h"
#include "dbwipes/core/service.h"

namespace dbwipes {
namespace {

TEST(ErrorClassTest, TransientCodes) {
  EXPECT_TRUE(IsTransient(Status::IoError("disk hiccup")));
  EXPECT_TRUE(IsTransient(Status::RuntimeError("injected")));
  EXPECT_TRUE(IsTransient(Status::DeadlineExceeded("too slow")));
  EXPECT_TRUE(IsTransient(Status::ResourceExhausted("queue full")));
}

TEST(ErrorClassTest, PermanentCodes) {
  EXPECT_FALSE(IsTransient(Status::OK()));
  EXPECT_FALSE(IsTransient(Status::InvalidArgument("bad")));
  EXPECT_FALSE(IsTransient(Status::NotFound("missing")));
  EXPECT_FALSE(IsTransient(Status::AlreadyExists("dup")));
  EXPECT_FALSE(IsTransient(Status::OutOfRange("index")));
  EXPECT_FALSE(IsTransient(Status::ParseError("syntax")));
  EXPECT_FALSE(IsTransient(Status::TypeError("types")));
  EXPECT_FALSE(IsTransient(Status::NotImplemented("todo")));
  // Cancellation is user intent: retrying would override it.
  EXPECT_FALSE(IsTransient(Status::Cancelled("stop")));
}

TEST(ErrorClassTest, ToString) {
  EXPECT_STREQ(ErrorClassToString(ErrorClass::kTransient), "transient");
  EXPECT_STREQ(ErrorClassToString(ErrorClass::kPermanent), "permanent");
}

TEST(RetryPolicyTest, BackoffScheduleIsDeterministic) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 10.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 55.0;
  EXPECT_DOUBLE_EQ(policy.BackoffMs(1), 10.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(2), 20.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(3), 40.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(4), 55.0);  // capped
  EXPECT_DOUBLE_EQ(policy.BackoffMs(9), 55.0);
}

TEST(RetryPolicyTest, SleepSeamCapturesInsteadOfSleeping) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_ms = 1.0;
  policy.backoff_multiplier = 3.0;
  std::vector<double> slept;
  policy.sleep_fn = [&slept](double ms) { slept.push_back(ms); };

  size_t attempts = 0;
  Status st = RetryTransient(
      policy, [] { return Status::IoError("always down"); }, &attempts);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(attempts, 4u);
  // One backoff between each pair of attempts, exact exponential.
  ASSERT_EQ(slept.size(), 3u);
  EXPECT_DOUBLE_EQ(slept[0], 1.0);
  EXPECT_DOUBLE_EQ(slept[1], 3.0);
  EXPECT_DOUBLE_EQ(slept[2], 9.0);
}

TEST(RetryTransientTest, RecoversAfterKTransientFailures) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.sleep_fn = [](double) {};
  size_t calls = 0;
  size_t attempts = 0;
  Status st = RetryTransient(
      policy,
      [&calls]() -> Status {
        if (++calls <= 2) return Status::RuntimeError("flaky");
        return Status::OK();
      },
      &attempts);
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3u);
  EXPECT_EQ(attempts, 3u);
}

TEST(RetryTransientTest, PermanentErrorIsNeverRetried) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.sleep_fn = [](double) { FAIL() << "must not back off"; };
  size_t calls = 0;
  size_t attempts = 0;
  Status st = RetryTransient(
      policy,
      [&calls]() -> Status {
        ++calls;
        return Status::InvalidArgument("wrong request");
      },
      &attempts);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(attempts, 1u);
}

TEST(RetryTransientTest, ExhaustionReturnsLastTransientError) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.sleep_fn = [](double) {};
  size_t attempts = 0;
  Status st = RetryTransient(
      policy, [] { return Status::IoError("still down"); }, &attempts);
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_EQ(attempts, 3u);
}

TEST(RetryTransientTest, WorksOverResultValues) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.sleep_fn = [](double) {};
  size_t calls = 0;
  auto r = RetryTransient(policy, [&calls]() -> Result<int> {
    if (++calls < 3) return Status::ResourceExhausted("busy");
    return 42;
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(calls, 3u);
}

TEST(RetryTransientTest, MaxAttemptsZeroBehavesAsOne) {
  RetryPolicy policy;
  policy.max_attempts = 0;
  policy.sleep_fn = [](double) {};
  size_t attempts = 0;
  Status st = RetryTransient(
      policy, [] { return Status::IoError("down"); }, &attempts);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(attempts, 1u);
}

// --- Service-level retry against armed fault sites ---

std::shared_ptr<Database> MakeDb() {
  Rng rng(43);
  auto t = std::make_shared<Table>(Schema{{"g", DataType::kInt64},
                                          {"tag", DataType::kString},
                                          {"v", DataType::kDouble}},
                                   "w");
  for (int g = 0; g < 4; ++g) {
    for (int i = 0; i < 40; ++i) {
      const bool bad = g >= 2 && i < 8;
      DBW_CHECK_OK(t->AppendRow({Value(static_cast<int64_t>(g)),
                                 Value(bad ? "bad" : "fine"),
                                 Value(bad ? rng.Normal(100, 2)
                                           : rng.Normal(10, 2))}));
    }
  }
  auto db = std::make_shared<Database>();
  db->RegisterTable(t);
  return db;
}

void PrepareDebuggableSession(Service& service) {
  ASSERT_NE(service.Execute("sql SELECT g, avg(v) AS a FROM w GROUP BY g")
                .find("\"ok\": true"),
            std::string::npos);
  ASSERT_NE(service.Execute("select_range a 20 1e9").find("\"ok\": true"),
            std::string::npos);
  ASSERT_NE(service.Execute("metric too_high 12").find("\"ok\": true"),
            std::string::npos);
}

ServiceOptions RetryingOptions(size_t max_attempts) {
  ServiceOptions options;
  options.retry.max_attempts = max_attempts;
  options.retry.sleep_fn = [](double) {};  // no real sleeping in tests
  return options;
}

TEST(ServiceRetryTest, DebugRecoversFromInjectedFaultWithAttemptCount) {
  Service service(MakeDb(), RetryingOptions(4));
  PrepareDebuggableSession(service);
  ASSERT_NE(service.Execute("profile on").find("\"ok\": true"),
            std::string::npos);

  // Fail the first two runs at the pipeline entry, then recover.
  FaultInjector faults;
  FaultInjector::Fault fault;
  fault.status = Status::RuntimeError("injected: pipeline entry");
  fault.count = 2;
  faults.Arm("pipeline/explain", fault);
  service.set_fault_injector(&faults);

  const std::string out = service.Execute("debug");
  EXPECT_NE(out.find("\"ok\": true"), std::string::npos) << out;
  EXPECT_NE(out.find("\"attempts\":3"), std::string::npos) << out;
  // hits() counts trips while armed: the two injected failures. The
  // third (successful) attempt finds the site disarmed.
  EXPECT_EQ(faults.hits("pipeline/explain"), 2u);
}

TEST(ServiceRetryTest, EverySiteRecoversUnderRetry) {
  for (const std::string& site : AllFaultSites()) {
    Service service(MakeDb(), RetryingOptions(3));
    PrepareDebuggableSession(service);

    FaultInjector faults;
    FaultInjector::Fault fault;
    fault.status = Status::RuntimeError("injected: " + site);
    fault.count = 1;
    faults.Arm(site, fault);
    service.set_fault_injector(&faults);

    const std::string out = service.Execute("debug");
    EXPECT_NE(out.find("\"ok\": true"), std::string::npos)
        << site << " -> " << out.substr(0, 200);
  }
}

TEST(ServiceRetryTest, ExhaustedRetriesReportRetryableError) {
  Service service(MakeDb(), RetryingOptions(2));
  PrepareDebuggableSession(service);

  FaultInjector faults;
  FaultInjector::Fault fault;
  fault.status = Status::RuntimeError("injected: permanent outage");
  fault.count = 0;  // fire forever
  faults.Arm("pipeline/explain", fault);
  service.set_fault_injector(&faults);

  const std::string out = service.Execute("debug");
  EXPECT_NE(out.find("\"ok\": false"), std::string::npos) << out;
  EXPECT_NE(out.find("\"retryable\": true"), std::string::npos) << out;
  EXPECT_EQ(faults.hits("pipeline/explain"), 2u);
}

TEST(ServiceRetryTest, PermanentErrorGetsExactlyOneAttempt) {
  Service service(MakeDb(), RetryingOptions(5));
  // No query/selection/metric: debug fails with kInvalidArgument.
  FaultInjector faults;  // nothing armed; counts pipeline hits only
  service.set_fault_injector(&faults);
  const std::string out = service.Execute("debug");
  EXPECT_NE(out.find("\"ok\": false"), std::string::npos) << out;
  EXPECT_EQ(out.find("\"retryable\""), std::string::npos) << out;
}

TEST(ServiceRetryTest, RetryCommandAdjustsPolicyAtRuntime) {
  Service service(MakeDb(), RetryingOptions(1));
  PrepareDebuggableSession(service);
  ASSERT_NE(service.Execute("profile on").find("\"ok\": true"),
            std::string::npos);

  FaultInjector faults;
  FaultInjector::Fault fault;
  fault.status = Status::RuntimeError("injected");
  fault.count = 1;
  faults.Arm("pipeline/explain", fault);
  service.set_fault_injector(&faults);

  // With retries off (max_attempts=1) the single failure surfaces.
  std::string out = service.Execute("debug");
  EXPECT_NE(out.find("\"ok\": false"), std::string::npos) << out;

  // Turn retries on at runtime; a re-armed fault is now absorbed.
  EXPECT_NE(service.Execute("retry 3 0").find("\"ok\": true"),
            std::string::npos);
  faults.Arm("pipeline/explain", fault);
  out = service.Execute("debug");
  EXPECT_NE(out.find("\"ok\": true"), std::string::npos) << out;
  EXPECT_NE(out.find("\"attempts\":2"), std::string::npos) << out;

  // And `retry off` restores fail-fast.
  EXPECT_NE(service.Execute("retry off").find("\"ok\": true"),
            std::string::npos);
  faults.Arm("pipeline/explain", fault);
  out = service.Execute("debug");
  EXPECT_NE(out.find("\"ok\": false"), std::string::npos) << out;
}

TEST(ServiceRetryTest, RetryCommandValidatesArguments) {
  Service service(MakeDb());
  EXPECT_NE(service.Execute("retry").find("\"ok\": false"), std::string::npos);
  EXPECT_NE(service.Execute("retry zero").find("\"ok\": false"),
            std::string::npos);
  EXPECT_NE(service.Execute("retry 0").find("\"ok\": false"),
            std::string::npos);
  EXPECT_NE(service.Execute("retry 3 -1").find("\"ok\": false"),
            std::string::npos);
  EXPECT_NE(service.Execute("retry 3 5").find("\"ok\": true"),
            std::string::npos);
}

// --- Decorrelated jitter + retry-after hints ---

TEST(BackoffSequenceTest, JitterStaysInDecorrelatedBounds) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 10.0;
  policy.max_backoff_ms = 500.0;
  policy.jitter = true;
  BackoffSequence seq(policy);
  // Decorrelated jitter: each sleep is uniform in [initial, prev*3],
  // capped at max — so the window widens with the PREVIOUS draw, not
  // the attempt number.
  double prev = 0.0;
  for (int i = 0; i < 50; ++i) {
    const double ms = seq.NextMs();
    EXPECT_GE(ms, policy.initial_backoff_ms);
    const double hi =
        std::min(std::max(prev * 3.0, policy.initial_backoff_ms),
                 policy.max_backoff_ms);
    if (i > 0) {
      EXPECT_LE(ms, hi) << "draw " << i;
    }
    EXPECT_LE(ms, policy.max_backoff_ms);
    prev = ms;
  }
}

TEST(BackoffSequenceTest, StubbedRandSourceIsExact) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 10.0;
  policy.max_backoff_ms = 1000.0;
  policy.jitter = true;
  policy.rand_fn = [] { return 0.5; };  // deterministic "coin"
  BackoffSequence seq(policy);
  // First draw: window [10, 10] (prev=0 → hi clamps to lo) → 10.
  EXPECT_DOUBLE_EQ(seq.NextMs(), 10.0);
  // Second: [10, 30], midpoint 20. Third: [10, 60], midpoint 35.
  EXPECT_DOUBLE_EQ(seq.NextMs(), 20.0);
  EXPECT_DOUBLE_EQ(seq.NextMs(), 35.0);
}

TEST(BackoffSequenceTest, JitterOffReproducesTheExponentialSchedule) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 10.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 55.0;
  BackoffSequence seq(policy);
  EXPECT_DOUBLE_EQ(seq.NextMs(), 10.0);
  EXPECT_DOUBLE_EQ(seq.NextMs(), 20.0);
  EXPECT_DOUBLE_EQ(seq.NextMs(), 40.0);
  EXPECT_DOUBLE_EQ(seq.NextMs(), 55.0);  // capped
}

TEST(BackoffSequenceTest, RetryAfterHintFloorsTheNextSleepOnce) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 1.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 500.0;
  BackoffSequence seq(policy);
  seq.ObserveRetryAfterMs(120.0);
  EXPECT_DOUBLE_EQ(seq.NextMs(), 120.0);  // hint dominates the schedule
  EXPECT_LT(seq.NextMs(), 120.0);         // one-shot: walk resumes
}

TEST(RetryAfterHintTest, TagRoundTripsThroughStatus) {
  Status tagged =
      WithRetryAfterHint(Status::ResourceExhausted("session limit"), 25.0);
  EXPECT_FALSE(tagged.ok());
  EXPECT_DOUBLE_EQ(RetryAfterHintMs(tagged), 25.0);
  EXPECT_DOUBLE_EQ(RetryAfterHintMs(Status::IoError("no tag")), 0.0);
  EXPECT_DOUBLE_EQ(
      RetryAfterHintMs(Status::IoError("[retry_after_ms=oops]")), 0.0);
  EXPECT_DOUBLE_EQ(RetryAfterHintMs(Status::IoError("[retry_after_ms=7")),
                   0.0);  // unterminated tag
}

TEST(RetryTransientTest, HonorsServerRetryAfterHint) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 1.0;
  std::vector<double> slept;
  policy.sleep_fn = [&slept](double ms) { slept.push_back(ms); };

  int calls = 0;
  Status st = RetryTransient(policy, [&calls]() -> Status {
    ++calls;
    if (calls < 3) {
      return WithRetryAfterHint(Status::ResourceExhausted("full"), 40.0);
    }
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
  ASSERT_EQ(slept.size(), 2u);
  // Both sleeps were floored by the server's 40ms hint, not the 1ms
  // exponential schedule.
  EXPECT_GE(slept[0], 40.0);
  EXPECT_GE(slept[1], 40.0);
}

TEST(ResponseRetryableTest, ParsesServiceJson) {
  double hint = -1.0;
  EXPECT_FALSE(ResponseRetryable("{\"ok\": true}", &hint));
  EXPECT_FALSE(ResponseRetryable(
      "{\"ok\": false, \"error\": \"bad input\"}", &hint));
  EXPECT_TRUE(ResponseRetryable(
      "{\"ok\": false, \"error\": \"x\", \"retryable\": true}", &hint));
  EXPECT_DOUBLE_EQ(hint, 0.0);
  EXPECT_TRUE(ResponseRetryable(
      "{\"ok\": false, \"retryable\": true, \"retry_after_ms\": 12.5}",
      &hint));
  EXPECT_DOUBLE_EQ(hint, 12.5);
}

TEST(RetryExecuteTest, RetriesRetryableResponsesAndHonorsHints) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_ms = 1.0;
  std::vector<double> slept;
  policy.sleep_fn = [&slept](double ms) { slept.push_back(ms); };

  int calls = 0;
  size_t attempts = 0;
  const std::string out = RetryExecute(
      policy,
      [&calls]() -> std::string {
        ++calls;
        if (calls < 3) {
          return "{\"ok\": false, \"retryable\": true, "
                 "\"retry_after_ms\": 30}";
        }
        return "{\"ok\": true}";
      },
      &attempts);
  EXPECT_EQ(out, "{\"ok\": true}");
  EXPECT_EQ(attempts, 3u);
  ASSERT_EQ(slept.size(), 2u);
  EXPECT_GE(slept[0], 30.0);

  // Non-retryable responses come back immediately.
  calls = 0;
  const std::string err = RetryExecute(
      policy, [&calls]() -> std::string {
        ++calls;
        return "{\"ok\": false, \"error\": \"permanent\"}";
      });
  EXPECT_EQ(calls, 1);
  EXPECT_NE(err.find("permanent"), std::string::npos);
}

TEST(ServiceRetryTest, SessionLimitErrorCarriesRetryAfterHint) {
  ServiceOptions options;
  options.sessions.max_sessions = 1;  // "main" takes the only slot
  Service service(MakeDb(), options);
  const std::string out = service.Execute("@other sql SELECT 1");
  EXPECT_NE(out.find("\"ok\": false"), std::string::npos) << out;
  // The shed response tells clients when to come back.
  EXPECT_NE(out.find("retry_after_ms="), std::string::npos) << out;
}

}  // namespace
}  // namespace dbwipes
