#include <gtest/gtest.h>

#include "dbwipes/expr/bool_expr.h"
#include "dbwipes/expr/predicate.h"
#include "dbwipes/expr/scalar_expr.h"

namespace dbwipes {
namespace {

Table MakeTable() {
  Table t(Schema{{"x", DataType::kInt64},
                 {"y", DataType::kDouble},
                 {"s", DataType::kString}},
          "t");
  DBW_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value(10.0), Value("red")}));
  DBW_CHECK_OK(t.AppendRow({Value(int64_t{2}), Value(20.0), Value("blue")}));
  DBW_CHECK_OK(t.AppendRow({Value(int64_t{3}), Value::Null(), Value("red")}));
  DBW_CHECK_OK(t.AppendRow({Value::Null(), Value(40.0), Value("green")}));
  return t;
}

// ---------- scalar expressions ----------

TEST(ScalarExprTest, LiteralAndColumn) {
  Table t = MakeTable();
  EXPECT_EQ(*Lit(Value(5.0))->Eval(t, 0), Value(5.0));
  EXPECT_EQ(*Col("x")->Eval(t, 1), Value(int64_t{2}));
  EXPECT_TRUE(Col("y")->Eval(t, 2)->is_null());
  EXPECT_FALSE(Col("nope")->Eval(t, 0).ok());
}

TEST(ScalarExprTest, ArithmeticAndNullPropagation) {
  Table t = MakeTable();
  auto e = Add(Mul(Col("x"), Lit(Value(2.0))), Col("y"));
  EXPECT_EQ(*e->Eval(t, 0), Value(12.0));   // 1*2 + 10
  EXPECT_TRUE(e->Eval(t, 2)->is_null());    // y NULL propagates
}

TEST(ScalarExprTest, DivisionByZeroIsNull) {
  Table t = MakeTable();
  auto e = Div(Col("y"), Lit(Value(0.0)));
  EXPECT_TRUE(e->Eval(t, 0)->is_null());
}

TEST(ScalarExprTest, ValidateRejectsStringArithmetic) {
  Table t = MakeTable();
  auto e = Add(Col("s"), Lit(Value(1.0)));
  EXPECT_TRUE(e->Validate(t.schema()).IsTypeError());
  EXPECT_TRUE(Add(Col("x"), Col("y"))->Validate(t.schema()).ok());
}

TEST(ScalarExprTest, ToStringRendering) {
  auto e = Sub(Col("a"), Mul(Lit(Value(int64_t{2})), Col("b")));
  EXPECT_EQ(e->ToString(), "(a - (2 * b))");
}

// ---------- clauses ----------

TEST(ClauseTest, ComparisonOps) {
  Clause lt = Clause::Make("x", CompareOp::kLt, Value(5.0));
  EXPECT_TRUE(lt.Matches(Value(4.0)));
  EXPECT_FALSE(lt.Matches(Value(5.0)));
  EXPECT_FALSE(lt.Matches(Value::Null()));

  Clause ge = Clause::Make("x", CompareOp::kGe, Value(int64_t{5}));
  EXPECT_TRUE(ge.Matches(Value(5.0)));
  EXPECT_TRUE(ge.Matches(Value(int64_t{6})));
  EXPECT_FALSE(ge.Matches(Value(4.9)));

  Clause ne = Clause::Make("s", CompareOp::kNe, Value("red"));
  EXPECT_TRUE(ne.Matches(Value("blue")));
  EXPECT_FALSE(ne.Matches(Value("red")));
  EXPECT_FALSE(ne.Matches(Value::Null()));  // NULL never matches
}

TEST(ClauseTest, InAndContains) {
  Clause in = Clause::In("s", {Value("a"), Value("b")});
  EXPECT_TRUE(in.Matches(Value("a")));
  EXPECT_FALSE(in.Matches(Value("c")));

  Clause contains =
      Clause::Make("memo", CompareOp::kContains, Value("SPOUSE"));
  EXPECT_TRUE(contains.Matches(Value("REATTRIBUTION TO SPOUSE")));
  EXPECT_FALSE(contains.Matches(Value("REFUND")));
  EXPECT_FALSE(contains.Matches(Value(1.0)));
}

TEST(ClauseTest, NegateOp) {
  EXPECT_EQ(*NegateOp(CompareOp::kLt), CompareOp::kGe);
  EXPECT_EQ(*NegateOp(CompareOp::kEq), CompareOp::kNe);
  EXPECT_FALSE(NegateOp(CompareOp::kIn).ok());
}

// ---------- predicates ----------

TEST(PredicateTest, MatchesConjunction) {
  Table t = MakeTable();
  Predicate p({Clause::Make("s", CompareOp::kEq, Value("red")),
               Clause::Make("x", CompareOp::kLe, Value(int64_t{2}))});
  EXPECT_TRUE(*p.Matches(t, 0));
  EXPECT_FALSE(*p.Matches(t, 1));  // blue
  EXPECT_FALSE(*p.Matches(t, 2));  // x = 3
  EXPECT_TRUE(Predicate::True().Matches(t, 0).ValueOrDie());
}

TEST(PredicateTest, BindFastPathAgreesWithSlowPath) {
  Table t = MakeTable();
  Predicate p({Clause::Make("y", CompareOp::kGt, Value(15.0)),
               Clause::Make("s", CompareOp::kNe, Value("green"))});
  BoundPredicate bound = *p.Bind(t);
  for (RowId r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(bound.Matches(r), *p.Matches(t, r)) << "row " << r;
  }
}

TEST(PredicateTest, BindStringEqualityForAbsentLiteral) {
  Table t = MakeTable();
  Predicate eq({Clause::Make("s", CompareOp::kEq, Value("missing"))});
  EXPECT_TRUE(eq.Bind(t)->MatchingRows().empty());
  Predicate ne({Clause::Make("s", CompareOp::kNe, Value("missing"))});
  EXPECT_EQ(ne.Bind(t)->MatchingRows().size(), 4u);
}

TEST(PredicateTest, BindRejectsTypeMismatches) {
  Table t = MakeTable();
  Predicate ordered({Clause::Make("s", CompareOp::kLt, Value("a"))});
  EXPECT_TRUE(ordered.Bind(t).status().IsTypeError());
  Predicate contains_num({Clause::Make("x", CompareOp::kContains, Value("a"))});
  EXPECT_TRUE(contains_num.Bind(t).status().IsTypeError());
  Predicate unknown({Clause::Make("zz", CompareOp::kEq, Value(1.0))});
  EXPECT_TRUE(unknown.Bind(t).status().IsNotFound());
}

TEST(PredicateTest, BoundInClause) {
  Table t = MakeTable();
  Predicate p({Clause::In("s", {Value("red"), Value("green")})});
  auto rows = p.Bind(t)->MatchingRows();
  EXPECT_EQ(rows, (std::vector<RowId>{0, 2, 3}));

  Predicate nums({Clause::In("x", {Value(int64_t{1}), Value(int64_t{3})})});
  EXPECT_EQ(nums.Bind(t)->MatchingRows(), (std::vector<RowId>{0, 2}));
}

TEST(PredicateTest, SimplifyMergesRangeClauses) {
  Predicate p({Clause::Make("x", CompareOp::kGe, Value(1.0)),
               Clause::Make("x", CompareOp::kGe, Value(3.0)),
               Clause::Make("x", CompareOp::kLt, Value(10.0)),
               Clause::Make("x", CompareOp::kLe, Value(8.0))});
  Predicate s = p.Simplify();
  EXPECT_EQ(s.num_clauses(), 2u);
  EXPECT_EQ(s.ToString(), "x >= 3 AND x <= 8");
}

TEST(PredicateTest, SimplifyDeduplicates) {
  Clause c = Clause::Make("s", CompareOp::kEq, Value("a"));
  Predicate p({c, c, c});
  EXPECT_EQ(p.Simplify().num_clauses(), 1u);
}

TEST(PredicateTest, CanonicalEqualityIsOrderIndependent) {
  Predicate a({Clause::Make("x", CompareOp::kEq, Value(1.0)),
               Clause::Make("s", CompareOp::kEq, Value("r"))});
  Predicate b({Clause::Make("s", CompareOp::kEq, Value("r")),
               Clause::Make("x", CompareOp::kEq, Value(1.0))});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.CanonicalString(), b.CanonicalString());
}

TEST(PredicateTest, ToStringFormats) {
  EXPECT_EQ(Predicate::True().ToString(), "TRUE");
  Predicate p({Clause::Make("a", CompareOp::kGt, Value(1.5)),
               Clause::Make("s", CompareOp::kEq, Value("x"))});
  EXPECT_EQ(p.ToString(), "a > 1.5 AND s = 'x'");
}

// ---------- bool expressions ----------

TEST(BoolExprTest, AndOrNotEvaluation) {
  Table t = MakeTable();
  auto red = MakeComparison(Clause::Make("s", CompareOp::kEq, Value("red")));
  auto big = MakeComparison(Clause::Make("x", CompareOp::kGe, Value(3.0)));
  EXPECT_FALSE(*MakeAnd(red, big)->Eval(t, 0));
  EXPECT_TRUE(*MakeAnd(red, big)->Eval(t, 2));
  EXPECT_TRUE(*MakeOr(red, big)->Eval(t, 0));
  EXPECT_FALSE(*MakeOr(red, big)->Eval(t, 1));
  EXPECT_TRUE(*MakeNot(red)->Eval(t, 1));
  EXPECT_TRUE(*MakeTrue()->Eval(t, 3));
}

TEST(BoolExprTest, NullComparisonIsFalseAndNotFlipsIt) {
  Table t = MakeTable();
  // Row 3 has x = NULL: x >= 0 is false, NOT (x >= 0) is true (two-
  // valued semantics, documented in bool_expr.h).
  auto cmp = MakeComparison(Clause::Make("x", CompareOp::kGe, Value(0.0)));
  EXPECT_FALSE(*cmp->Eval(t, 3));
  EXPECT_TRUE(*MakeNot(cmp)->Eval(t, 3));
}

TEST(BoolExprTest, PredicateConversionMatches) {
  Table t = MakeTable();
  Predicate p({Clause::Make("s", CompareOp::kEq, Value("red")),
               Clause::Make("x", CompareOp::kLe, Value(1.0))});
  BoolExprPtr e = PredicateToBoolExpr(p);
  for (RowId r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(*e->Eval(t, r), *p.Matches(t, r));
  }
  EXPECT_EQ(PredicateToBoolExpr(Predicate::True())->kind(),
            BoolExpr::Kind::kTrue);
}

TEST(BoolExprTest, EvalFilter) {
  Table t = MakeTable();
  auto e = MakeComparison(Clause::Make("s", CompareOp::kEq, Value("red")));
  std::vector<bool> mask = *EvalFilter(*e, t);
  EXPECT_EQ(mask, (std::vector<bool>{true, false, true, false}));
}

TEST(BoolExprTest, ValidateCatchesUnknownColumns) {
  Table t = MakeTable();
  auto bad = MakeAnd(
      MakeComparison(Clause::Make("x", CompareOp::kGe, Value(0.0))),
      MakeComparison(Clause::Make("zz", CompareOp::kEq, Value(1.0))));
  EXPECT_TRUE(bad->Validate(t.schema()).IsNotFound());
}

}  // namespace
}  // namespace dbwipes
