// SessionManager tests: name validation, creation/reuse, the session
// cap with ResourceExhausted (retryable) refusal, idle eviction that
// skips busy sessions, and genuinely concurrent cross-session use. The
// concurrency tests carry the `stress` label and run under tsan in
// scripts/check.sh's stress stage.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "dbwipes/common/random.h"
#include "dbwipes/common/retry.h"
#include "dbwipes/core/session_manager.h"

namespace dbwipes {
namespace {

std::shared_ptr<Database> MakeDb() {
  Rng rng(47);
  auto t = std::make_shared<Table>(Schema{{"g", DataType::kInt64},
                                          {"v", DataType::kDouble}},
                                   "w");
  for (int g = 0; g < 4; ++g) {
    for (int i = 0; i < 30; ++i) {
      const bool bad = g >= 2 && i < 6;
      DBW_CHECK_OK(t->AppendRow({Value(static_cast<int64_t>(g)),
                                 Value(bad ? rng.Normal(100, 2)
                                           : rng.Normal(10, 2))}));
    }
  }
  auto db = std::make_shared<Database>();
  db->RegisterTable(t);
  return db;
}

TEST(SessionManagerTest, ValidatesNames) {
  EXPECT_TRUE(SessionManager::ValidateName("main").ok());
  EXPECT_TRUE(SessionManager::ValidateName("user-7.alpha_2").ok());
  EXPECT_FALSE(SessionManager::ValidateName("").ok());
  EXPECT_FALSE(SessionManager::ValidateName("has space").ok());
  EXPECT_FALSE(SessionManager::ValidateName("semi;colon").ok());
  EXPECT_FALSE(SessionManager::ValidateName("@at").ok());
  EXPECT_FALSE(SessionManager::ValidateName(std::string(65, 'x')).ok());
  EXPECT_TRUE(SessionManager::ValidateName(std::string(64, 'x')).ok());
}

TEST(SessionManagerTest, GetOrCreateReusesTheSameSession) {
  SessionManager manager(MakeDb(), ExplainOptions{});
  auto a = manager.GetOrCreate("alice");
  ASSERT_TRUE(a.ok());
  auto b = manager.GetOrCreate("alice");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->get(), b->get());
  EXPECT_EQ(manager.size(), 1u);

  auto c = manager.GetOrCreate("bob");
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->get(), c->get());
  EXPECT_EQ(manager.size(), 2u);

  std::vector<std::string> names = manager.Names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alice");  // sorted
  EXPECT_EQ(names[1], "bob");
}

TEST(SessionManagerTest, FindDoesNotCreate) {
  SessionManager manager(MakeDb(), ExplainOptions{});
  EXPECT_EQ(manager.Find("ghost"), nullptr);
  EXPECT_EQ(manager.size(), 0u);
  ASSERT_TRUE(manager.GetOrCreate("real").ok());
  EXPECT_NE(manager.Find("real"), nullptr);
}

TEST(SessionManagerTest, CapRefusesWithRetryableResourceExhausted) {
  SessionManager::Options options;
  options.max_sessions = 2;
  SessionManager manager(MakeDb(), ExplainOptions{}, options);
  ASSERT_TRUE(manager.GetOrCreate("a").ok());
  ASSERT_TRUE(manager.GetOrCreate("b").ok());

  auto refused = manager.GetOrCreate("c");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  // The session cap is load, not a malformed request: clients may
  // retry after dropping/evicting.
  EXPECT_TRUE(IsTransient(refused.status()));

  // Existing sessions are still reachable at the cap.
  EXPECT_TRUE(manager.GetOrCreate("a").ok());

  // Dropping one frees a slot.
  ASSERT_TRUE(manager.Drop("b").ok());
  EXPECT_TRUE(manager.GetOrCreate("c").ok());
}

TEST(SessionManagerTest, DropRemovesButInFlightHoldersSurvive) {
  SessionManager manager(MakeDb(), ExplainOptions{});
  auto held = manager.GetOrCreate("victim");
  ASSERT_TRUE(held.ok());
  std::shared_ptr<ManagedSession> alive = *held;

  ASSERT_TRUE(manager.Drop("victim").ok());
  EXPECT_EQ(manager.Find("victim"), nullptr);
  EXPECT_FALSE(manager.Drop("victim").ok());  // already gone

  // The dropped session object is still usable by its holder.
  EXPECT_TRUE(alive->session.ExecuteSql(
      "SELECT g, avg(v) AS a FROM w GROUP BY g").ok());
}

TEST(SessionManagerTest, EvictionRemovesIdleSkipsBusy) {
  SessionManager manager(MakeDb(), ExplainOptions{});
  auto idle = manager.GetOrCreate("idle");
  auto busy = manager.GetOrCreate("busy");
  ASSERT_TRUE(idle.ok());
  ASSERT_TRUE(busy.ok());

  // A session whose mutex is held is mid-command: never evicted, no
  // matter how stale its last-used time.
  std::lock_guard<std::mutex> in_flight((*busy)->mu);
  EXPECT_EQ(manager.EvictIdleOlderThan(0.0), 1u);
  EXPECT_EQ(manager.Find("idle"), nullptr);
  EXPECT_NE(manager.Find("busy"), nullptr);
}

TEST(SessionManagerTest, EvictIdleNoOpWithoutTimeout) {
  SessionManager manager(MakeDb(), ExplainOptions{});
  ASSERT_TRUE(manager.GetOrCreate("a").ok());
  EXPECT_EQ(manager.EvictIdle(), 0u);  // idle_timeout_ms unset
  EXPECT_EQ(manager.size(), 1u);
}

TEST(SessionManagerTest, IdleMsGrowsAndResetsOnUse) {
  SessionManager manager(MakeDb(), ExplainOptions{});
  ASSERT_TRUE(manager.GetOrCreate("a").ok());
  EXPECT_GE(manager.IdleMs("a"), 0.0);
  EXPECT_LT(manager.IdleMs("missing"), 0.0);
}

TEST(SessionManagerTest, ConcurrentCrossSessionExecution) {
  SessionManager manager(MakeDb(), ExplainOptions{});
  constexpr int kThreads = 8;
  constexpr int kIters = 25;
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&manager, &failures, t] {
      const std::string name = "worker-" + std::to_string(t);
      for (int i = 0; i < kIters; ++i) {
        auto ms = manager.GetOrCreate(name);
        if (!ms.ok()) {
          ++failures;
          continue;
        }
        std::lock_guard<std::mutex> lock((*ms)->mu);
        Session& s = (*ms)->session;
        if (!s.ExecuteSql("SELECT g, avg(v) AS a FROM w GROUP BY g").ok() ||
            !s.SelectResults({2, 3}).ok() ||
            !s.SetMetric(TooHigh(12.0)).ok() || !s.Debug().ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(manager.size(), static_cast<size_t>(kThreads));
}

TEST(SessionManagerTest, ConcurrentCreateOfTheSameNameYieldsOneSession) {
  SessionManager manager(MakeDb(), ExplainOptions{});
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<ManagedSession>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&manager, &seen, t] {
      auto ms = manager.GetOrCreate("contested");
      if (ms.ok()) seen[static_cast<size_t>(t)] = *ms;
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_NE(seen[0], nullptr);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<size_t>(t)].get(), seen[0].get());
  }
  EXPECT_EQ(manager.size(), 1u);
}

TEST(SessionManagerTest, ConcurrentDropAndUse) {
  SessionManager manager(MakeDb(), ExplainOptions{});
  constexpr int kIters = 50;
  std::atomic<bool> stop{false};

  std::thread user([&manager, &stop] {
    while (!stop.load()) {
      auto ms = manager.GetOrCreate("churn");
      if (!ms.ok()) continue;
      std::lock_guard<std::mutex> lock((*ms)->mu);
      (void)(*ms)->session.ExecuteSql(
          "SELECT g, avg(v) AS a FROM w GROUP BY g");
    }
  });
  for (int i = 0; i < kIters; ++i) {
    (void)manager.Drop("churn");
    std::this_thread::yield();
  }
  stop.store(true);
  user.join();
  // No crash, no tsan report: shared_ptr ownership kept every
  // in-flight session alive across the drops.
}

}  // namespace
}  // namespace dbwipes
