// End-to-end request telemetry tests (DESIGN.md §5k): request-id
// correlation across response / trace spans / profile / slow log / WAL
// frame, the TelemetryHistory ring, the `history` and `slowlog`
// commands, Prometheus text-format exposition (with a validity
// checker) and its HTTP listener, the watchdog's stall detection,
// golden-file schemas for ExplainProfileToJson and
// MetricsRegistry::SnapshotJson, and a torn-read regression: `stats`
// histogram snapshots must satisfy count == sum(buckets) under
// concurrent `wal checkpoint` + trace export.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dbwipes/common/http_listener.h"
#include "dbwipes/common/metrics.h"
#include "dbwipes/common/random.h"
#include "dbwipes/common/telemetry.h"
#include "dbwipes/common/trace.h"
#include "dbwipes/core/export.h"
#include "dbwipes/core/service.h"
#include "dbwipes/storage/wal.h"

#ifndef DBWIPES_GOLDEN_DIR
#define DBWIPES_GOLDEN_DIR "tests/golden"
#endif

namespace dbwipes {
namespace {

std::shared_ptr<Database> MakeDb() {
  Rng rng(41);
  auto t = std::make_shared<Table>(Schema{{"g", DataType::kInt64},
                                          {"tag", DataType::kString},
                                          {"v", DataType::kDouble}},
                                   "w");
  for (int g = 0; g < 4; ++g) {
    for (int i = 0; i < 40; ++i) {
      const bool bad = g >= 2 && i < 8;
      DBW_CHECK_OK(t->AppendRow({Value(static_cast<int64_t>(g)),
                                 Value(bad ? "bad" : "fine"),
                                 Value(bad ? rng.Normal(100, 2)
                                           : rng.Normal(10, 2))}));
    }
  }
  auto db = std::make_shared<Database>();
  db->RegisterTable(t);
  return db;
}

std::string TempDirFor(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" +
                          std::to_string(::getpid()) + "_" + name;
  std::system(("rm -rf '" + dir + "'").c_str());
  return dir;
}

bool IsOk(const std::string& response) {
  return response.compare(0, 11, "{\"ok\": true") == 0;
}

/// Extracts the integer value of `"name": <digits>` (spaces optional);
/// -1 when absent.
int64_t JsonInt(const std::string& json, const std::string& name) {
  const std::string key = "\"" + name + "\":";
  size_t pos = json.find(key);
  if (pos == std::string::npos) return -1;
  pos += key.size();
  while (pos < json.size() && json[pos] == ' ') ++pos;
  size_t end = pos;
  while (end < json.size() && (std::isdigit(json[end]) != 0)) ++end;
  if (end == pos) return -1;
  return std::stoll(json.substr(pos, end - pos));
}

/// Every occurrence of `"rid": <n>` / `"rid":<n>` in `json`.
std::vector<uint64_t> AllRids(const std::string& json) {
  std::vector<uint64_t> out;
  const std::string key = "\"rid\":";
  size_t pos = 0;
  while ((pos = json.find(key, pos)) != std::string::npos) {
    pos += key.size();
    while (pos < json.size() && json[pos] == ' ') ++pos;
    size_t end = pos;
    while (end < json.size() && (std::isdigit(json[end]) != 0)) ++end;
    if (end > pos) out.push_back(std::stoull(json.substr(pos, end - pos)));
    pos = end;
  }
  return out;
}

/// Sorted unique key paths ("a.b.c", arrays as "name[]") of a JSON
/// document — the schema shape the golden files pin down.
std::vector<std::string> JsonKeyPaths(const std::string& json) {
  std::set<std::string> paths;
  std::vector<std::string> stack;
  std::string pending;
  bool have_pending = false;
  size_t i = 0;
  while (i < json.size()) {
    const char c = json[i];
    if (c == '"') {
      std::string s;
      ++i;
      while (i < json.size() && json[i] != '"') {
        if (json[i] == '\\' && i + 1 < json.size()) ++i;
        s += json[i];
        ++i;
      }
      ++i;  // closing quote
      const size_t j = json.find_first_not_of(" \t\r\n", i);
      if (j != std::string::npos && json[j] == ':') {
        std::string path;
        for (const std::string& part : stack) {
          if (!part.empty()) path += part + ".";
        }
        path += s;
        paths.insert(path);
        pending = s;
        have_pending = true;
        i = j + 1;
      } else {
        have_pending = false;
      }
      continue;
    }
    if (c == '{') {
      stack.push_back(have_pending ? pending : "");
      have_pending = false;
    } else if (c == '[') {
      stack.push_back(have_pending ? pending + "[]" : "[]");
      have_pending = false;
    } else if (c == '}' || c == ']') {
      if (!stack.empty()) stack.pop_back();
    } else if (!std::isspace(static_cast<unsigned char>(c)) && c != ',') {
      have_pending = false;
    }
    ++i;
  }
  return {paths.begin(), paths.end()};
}

/// Golden-file comparison with an update mode: run the suite with
/// DBWIPES_UPDATE_GOLDEN=1 to (re)write the files after an intentional
/// schema change.
void ExpectMatchesGolden(const std::string& name, const std::string& actual) {
  const std::string path = std::string(DBWIPES_GOLDEN_DIR) + "/" + name;
  if (std::getenv("DBWIPES_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    out << actual;
    ASSERT_TRUE(out.good()) << "failed to write " << path;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (run with DBWIPES_UPDATE_GOLDEN=1 to create)";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), actual)
      << "schema drift vs " << path
      << " — if intentional, re-run with DBWIPES_UPDATE_GOLDEN=1";
}

/// Prometheus text-format 0.0.4 validity: every line is a `# TYPE` /
/// `# HELP` comment or `name[{labels}] value`; names match the
/// Prometheus charset; every sample belongs to a family announced by a
/// `# TYPE` line; histogram buckets are cumulative with a final +Inf
/// equal to `_count`.
bool IsValidPrometheusText(const std::string& text, std::string* why) {
  auto fail = [&](const std::string& message) {
    *why = message;
    return false;
  };
  auto valid_name = [](const std::string& n) {
    if (n.empty()) return false;
    for (size_t i = 0; i < n.size(); ++i) {
      const char c = n[i];
      const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                         c == '_' || c == ':';
      if (!(alpha || (i > 0 && c >= '0' && c <= '9'))) return false;
    }
    return true;
  };

  std::set<std::string> typed_families;
  std::string histogram_family;
  uint64_t last_cumulative = 0;
  bool saw_inf = false;
  uint64_t inf_value = 0;

  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) return fail("blank line");
    if (line[0] == '#') {
      std::istringstream in(line);
      std::string hash, kind, family, rest;
      in >> hash >> kind >> family;
      if (kind != "TYPE" && kind != "HELP") return fail("bad comment: " + line);
      if (kind == "TYPE") {
        if (!valid_name(family)) return fail("bad family name: " + line);
        std::string type;
        in >> type;
        if (type != "counter" && type != "gauge" && type != "histogram") {
          return fail("bad type: " + line);
        }
        typed_families.insert(family);
        if (type == "histogram") {
          histogram_family = family;
          last_cumulative = 0;
          saw_inf = false;
        }
      }
      continue;
    }
    // Sample line: name[{labels}] value
    const size_t space = line.rfind(' ');
    if (space == std::string::npos) return fail("no value: " + line);
    const std::string value_text = line.substr(space + 1);
    char* end = nullptr;
    std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str() || *end != '\0') {
      return fail("bad value: " + line);
    }
    std::string name_and_labels = line.substr(0, space);
    std::string labels;
    const size_t brace = name_and_labels.find('{');
    std::string name = name_and_labels;
    if (brace != std::string::npos) {
      if (name_and_labels.back() != '}') return fail("bad labels: " + line);
      labels = name_and_labels.substr(brace + 1,
                                      name_and_labels.size() - brace - 2);
      name = name_and_labels.substr(0, brace);
    }
    if (!valid_name(name)) return fail("bad metric name: " + line);
    // The family is the name minus a histogram/counter suffix.
    std::string family = name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const size_t len = std::string(suffix).size();
      if (family.size() > len &&
          family.compare(family.size() - len, len, suffix) == 0 &&
          typed_families.count(family.substr(0, family.size() - len)) > 0) {
        family = family.substr(0, family.size() - len);
        break;
      }
    }
    if (typed_families.count(family) == 0) {
      return fail("sample without # TYPE: " + line);
    }
    // Histogram bucket law: cumulative counts, +Inf present == _count.
    if (family == histogram_family && name == family + "_bucket") {
      const uint64_t v = static_cast<uint64_t>(std::stod(value_text));
      if (labels.find("le=\"+Inf\"") != std::string::npos) {
        saw_inf = true;
        inf_value = v;
        if (v < last_cumulative) return fail("+Inf below cumulative: " + line);
      } else {
        if (v < last_cumulative) {
          return fail("non-cumulative bucket: " + line);
        }
        last_cumulative = v;
      }
    }
    if (family == histogram_family && name == family + "_count") {
      if (!saw_inf) return fail("histogram missing +Inf: " + family);
      if (static_cast<uint64_t>(std::stod(value_text)) != inf_value) {
        return fail("_count != +Inf bucket: " + family);
      }
    }
  }
  return true;
}

/// Blocking HTTP GET against localhost:`port`; whole response (status
/// line + headers + body) or "" on connect failure.
std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string out;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

// ---------- Request ids ----------

TEST(RequestIdTest, MonotonicAndScopedPerThread) {
  const uint64_t a = NextRequestId();
  const uint64_t b = NextRequestId();
  EXPECT_GT(b, a);
  EXPECT_GT(a, 0u);  // id 0 means "none" and is never assigned

  EXPECT_EQ(CurrentRequestId(), 0u);
  {
    RequestScope outer(a);
    EXPECT_EQ(CurrentRequestId(), a);
    {
      RequestScope inner(b);  // nests (WAL replay rebinds frame rids)
      EXPECT_EQ(CurrentRequestId(), b);
    }
    EXPECT_EQ(CurrentRequestId(), a);
  }
  EXPECT_EQ(CurrentRequestId(), 0u);

  // Other threads never see this thread's binding.
  RequestScope scope(a);
  uint64_t seen = 99;
  std::thread([&] { seen = CurrentRequestId(); }).join();
  EXPECT_EQ(seen, 0u);
}

// ---------- TelemetryHistory ----------

TEST(TelemetryHistoryTest, RingEvictsOldestAndQueriesWindow) {
  TelemetryHistory history(/*points_per_series=*/4);
  for (int i = 0; i < 10; ++i) {
    history.Record("m", /*t_ms=*/100.0 * i, /*value=*/i);
  }
  // Whole ring: the latest 4 samples, oldest first.
  const auto all = history.Query("m", /*window_ms=*/0.0, /*now_ms=*/900.0);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all.front().value, 6.0);
  EXPECT_EQ(all.back().value, 9.0);

  // Window cuts off by timestamp.
  const auto recent = history.Query("m", /*window_ms=*/150.0, /*now_ms=*/900.0);
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent.front().value, 8.0);

  EXPECT_TRUE(history.Query("unknown", 0.0, 900.0).empty());
  EXPECT_EQ(history.Names(), std::vector<std::string>{"m"});
  // Memory is bounded by capacity, not by samples recorded.
  EXPECT_GT(history.MemoryBytes(), 0u);
  EXPECT_LT(history.MemoryBytes(), 4096u);
}

// ---------- Rid correlation ----------

/// The tentpole acceptance test: ONE request's rid is findable in its
/// JSON response, in >= 1 trace span per executed pipeline stage, in
/// the slow-log entry it produced, and in the WAL frame it wrote.
TEST(RidCorrelationTest, OneRidAcrossResponseSpansSlowLogAndWalFrame) {
  const std::string dir = TempDirFor("rid_e2e");
  uint64_t sql_rid = 0;
  {
    ServiceOptions options;
    options.wal.dir = dir;
    options.telemetry.slow_ms = 0.0;  // slow-log every request
    Service service(MakeDb(), options);

    Tracer::Global().SetEnabled(true);
    Tracer::Global().Clear();
    const std::string response =
        service.Execute("sql SELECT g, avg(v) AS a FROM w GROUP BY g");
    Tracer::Global().SetEnabled(false);
    ASSERT_TRUE(IsOk(response)) << response;

    const auto rids = AllRids(response);
    ASSERT_FALSE(rids.empty()) << response;
    sql_rid = rids[0];
    ASSERT_GT(sql_rid, 0u);

    // Trace spans: both sql stages carry the request's rid.
    const std::string trace = Tracer::Global().ExportJson();
    for (const char* stage : {"sql/parse", "sql/execute"}) {
      const size_t at = trace.find(stage);
      ASSERT_NE(at, std::string::npos) << stage;
      // The span's args (rid included) sit within the same event
      // object; search the surrounding event text.
      const size_t begin = trace.rfind('{', at);
      const size_t end = trace.find('}', at);
      ASSERT_NE(begin, std::string::npos);
      const std::string event = trace.substr(begin, end - begin + 1);
      EXPECT_NE(event.find("\"rid\":" + std::to_string(sql_rid)),
                std::string::npos)
          << stage << " missing rid: " << event;
    }

    // Slow log: threshold 0 logged the request, rid attached.
    const std::string slowlog = service.Execute("slowlog");
    ASSERT_TRUE(IsOk(slowlog)) << slowlog;
    EXPECT_NE(slowlog.find("\"rid\": " + std::to_string(sql_rid)),
              std::string::npos)
        << slowlog;
    EXPECT_NE(slowlog.find("\"cmd\": \"sql\""), std::string::npos) << slowlog;
  }

  // WAL frame: reopen the log and find the logged command's frame
  // carrying the same rid (checksummed frame metadata, so this
  // correlation survives a crash).
  auto wal = WriteAheadLog::Open({.dir = dir});
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  bool found = false;
  Status st = (*wal)->Replay(
      0, [&](uint64_t, uint64_t rid, uint8_t, const std::string& body) {
        if (body.find("sql SELECT") != std::string::npos) {
          EXPECT_EQ(rid, sql_rid) << body;
          found = true;
        }
        return Status::OK();
      });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(found) << "sql command frame not found in WAL";
}

/// Property: for every protocol command, every rid-carrying trace span
/// recorded during the request matches the rid in its response.
TEST(RidCorrelationTest, EveryResponseRidMatchesItsTraceSpans) {
  Service service(MakeDb());
  const std::vector<std::string> commands = {
      "sql SELECT g, avg(v) AS a FROM w GROUP BY g",
      "select_range a 20 1e9",
      "inputs_where v > 50",
      "metric too_high 12",
      "debug",
      "clean 0",
      "undo",
      "result",
      "state",
      "stats",
  };
  for (const std::string& command : commands) {
    Tracer::Global().SetEnabled(true);
    Tracer::Global().Clear();
    const std::string response = service.Execute(command);
    Tracer::Global().SetEnabled(false);
    ASSERT_TRUE(IsOk(response)) << command << " -> " << response;

    const auto response_rids = AllRids(response);
    ASSERT_FALSE(response_rids.empty()) << command;
    const uint64_t rid = response_rids[0];
    // A debug response embeds the profile's rid too — every rid in the
    // response is the same one.
    for (uint64_t r : response_rids) EXPECT_EQ(r, rid) << command;

    for (uint64_t span_rid : AllRids(Tracer::Global().ExportJson())) {
      EXPECT_EQ(span_rid, rid) << command;
    }
  }
}

TEST(RidCorrelationTest, ProfileCarriesRidAndReplayRebindsFrameRids) {
  const std::string dir = TempDirFor("rid_replay");
  uint64_t clean_rid = 0;
  {
    ServiceOptions options;
    options.wal.dir = dir;
    Service service(MakeDb(), options);
    ASSERT_TRUE(IsOk(
        service.Execute("sql SELECT g, avg(v) AS a FROM w GROUP BY g")));
    ASSERT_TRUE(IsOk(service.Execute("select_range a 20 1e9")));
    ASSERT_TRUE(IsOk(service.Execute("metric too_high 12")));
    ASSERT_TRUE(IsOk(service.Execute("profile on")));
    const std::string debug = service.Execute("debug");
    ASSERT_TRUE(IsOk(debug)) << debug;
    // Response rid == profile rid (the profile is part of the debug
    // response, so both rids came from the same request).
    const auto rids = AllRids(debug);
    ASSERT_GE(rids.size(), 2u) << debug.substr(0, 200);
    EXPECT_EQ(rids[0], rids[1]);

    const std::string cleaned = service.Execute("clean 0");
    ASSERT_TRUE(IsOk(cleaned)) << cleaned;
    clean_rid = AllRids(cleaned)[0];
  }
  {
    // Recovery replays the clean under its ORIGINAL rid: the replayed
    // frames keep their pre-crash ids (checked via the recovered
    // ranking applying cleanly + the WAL frames' rids surviving the
    // round trip).
    ServiceOptions options;
    options.wal.dir = dir;
    Service service(MakeDb(), options);
    const std::string status = service.Execute("wal status");
    EXPECT_EQ(JsonInt(status, "replay_errors"), 0) << status;
    const std::string state = service.Execute("state");
    EXPECT_EQ(JsonInt(state, "num_applied_predicates"), 1) << state;
  }
  // The clean survived checkpointing only if its frame (rid intact)
  // was still in the log at recovery; verify the recorded rid.
  auto wal = WriteAheadLog::Open({.dir = dir});
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  size_t frames = 0;
  ASSERT_TRUE((*wal)
                  ->Replay(0,
                           [&](uint64_t, uint64_t rid, uint8_t,
                               const std::string& body) {
                             ++frames;
                             if (body.find("clean") != std::string::npos) {
                               EXPECT_EQ(rid, clean_rid) << body;
                             }
                             return Status::OK();
                           })
                  .ok());
  (void)frames;  // may be 0 if a checkpoint truncated everything — the
                 // in-scope assertions above already covered that path
}

// ---------- history / slowlog commands ----------

TEST(TelemetryCommandsTest, HistoryCommandReturnsSampledSeries) {
  // A histogram the sampler must flatten into derived series. Observe
  // before the service exists so every sampler tick sees it (ticking
  // between construction and a later Observe would race the wait loop
  // below, which stops at the first service.commands point).
  MetricsRegistry::Global().GetHistogram("test.history_ms")->Observe(1.0);
  ServiceOptions options;
  options.telemetry.history_enabled = true;
  options.telemetry.sample_interval_ms = 5.0;
  Service service(MakeDb(), options);
  ASSERT_TRUE(IsOk(
      service.Execute("sql SELECT g, avg(v) AS a FROM w GROUP BY g")));

  // The sampler runs at 5ms cadence; wait (bounded) for points.
  std::string points;
  for (int i = 0; i < 400; ++i) {
    points = service.Execute("history service.commands 0");
    if (points.find("\"t_ms\"") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(IsOk(points)) << points;
  ASSERT_NE(points.find("\"t_ms\""), std::string::npos)
      << "sampler produced no points: " << points;

  const std::string listing = service.Execute("history");
  ASSERT_TRUE(IsOk(listing)) << listing;
  EXPECT_NE(listing.find("\"sampling\": true"), std::string::npos) << listing;
  EXPECT_NE(listing.find("service.commands"), std::string::npos) << listing;
  // Histograms are sampled as derived series. Ticks are recorded as
  // one atomic batch, so any tick that produced the service.commands
  // points above also recorded this series.
  EXPECT_NE(listing.find("test.history_ms.p99_ms"), std::string::npos)
      << listing;
  EXPECT_GT(JsonInt(listing, "memory_bytes"), 0) << listing;
}

TEST(TelemetryCommandsTest, SlowLogCapturesStagesAndShedReason) {
  ServiceOptions options;
  options.telemetry.slow_ms = 0.0;  // everything is "slow"
  Service service(MakeDb(), options);
  ASSERT_TRUE(IsOk(
      service.Execute("sql SELECT g, avg(v) AS a FROM w GROUP BY g")));
  ASSERT_TRUE(IsOk(service.Execute("select_range a 20 1e9")));
  ASSERT_TRUE(IsOk(service.Execute("metric too_high 12")));
  const std::string debug = service.Execute("debug");
  ASSERT_TRUE(IsOk(debug)) << debug;
  const uint64_t debug_rid = AllRids(debug)[0];

  const std::string slowlog = service.Execute("slowlog");
  ASSERT_TRUE(IsOk(slowlog)) << slowlog;
  // The debug entry carries its stage breakdown and cache hits.
  const size_t at = slowlog.find("\"rid\": " + std::to_string(debug_rid));
  ASSERT_NE(at, std::string::npos) << slowlog;
  const std::string entry = slowlog.substr(at, 400);
  EXPECT_NE(entry.find("\"stages\""), std::string::npos) << entry;
  EXPECT_NE(entry.find("\"rank_ms\""), std::string::npos) << entry;
  EXPECT_NE(entry.find("\"cache_hits\""), std::string::npos) << entry;

  // Slow requests also bump the alert counter.
  EXPECT_GT(JsonInt(service.Execute("stats"), "service.slow_requests"), 0);

  // The ring is bounded: its size never exceeds the configured cap.
  for (int i = 0; i < 200; ++i) service.Execute("ping");
  const std::string bounded = service.Execute("slowlog");
  size_t entries = 0;
  // Ring entries start `{"rid": ` — the response's own top-level rid
  // stamp does not match this pattern.
  for (size_t pos = 0;
       (pos = bounded.find("{\"rid\"", pos)) != std::string::npos; ++pos) {
    ++entries;
  }
  EXPECT_LE(entries, options.telemetry.slow_log_entries);
}

// ---------- Watchdog ----------

TEST(WatchdogTest, FlagsStalledRequests) {
  ServiceOptions options;
  options.telemetry.watchdog_enabled = true;
  options.telemetry.watchdog_interval_ms = 5.0;
  options.telemetry.stall_threshold_ms = 30.0;
  Service service(MakeDb(), options);

  // -1 = counter not yet registered (the watchdog's first scan may not
  // have run yet) — semantically zero.
  const int64_t before = std::max<int64_t>(
      0, JsonInt(service.Execute("stats"), "watchdog.stalled_requests"));
  // `ping 120` sleeps well past the 30ms stall threshold; the watchdog
  // (5ms cadence) must flag it while it is still running.
  std::thread slow([&] { service.Execute("ping 120"); });
  slow.join();
  const int64_t after =
      JsonInt(service.Execute("stats"), "watchdog.stalled_requests");
  EXPECT_GT(after, before);
  // The watchdog alerted ONCE for that request, not once per scan.
  EXPECT_LE(after, before + 1);
  EXPECT_GT(JsonInt(service.Execute("stats"), "watchdog.scans"), 0);
}

// ---------- Prometheus exposition + HTTP ----------

TEST(PrometheusTest, ExpositionTextIsValid) {
  Service service(MakeDb());
  ASSERT_TRUE(IsOk(
      service.Execute("sql SELECT g, avg(v) AS a FROM w GROUP BY g")));
  ASSERT_TRUE(IsOk(service.Execute("select_range a 20 1e9")));
  ASSERT_TRUE(IsOk(service.Execute("metric too_high 12")));
  ASSERT_TRUE(IsOk(service.Execute("debug")));

  MetricsRegistry::Global().GetGauge("test.prom_gauge")->Set(4);

  const std::string text = MetricsRegistry::Global().PrometheusText();
  std::string why;
  EXPECT_TRUE(IsValidPrometheusText(text, &why)) << why;
  // Spot-check the three metric kinds made it through with the
  // namespace prefix and sanitized names.
  EXPECT_NE(text.find("# TYPE dbwipes_service_commands_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dbwipes_test_prom_gauge gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dbwipes_explain_total_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("_bucket{le=\"+Inf\"}"), std::string::npos);
}

TEST(HttpListenerTest, ServesMetricsHealthzReadyz) {
  std::atomic<bool> ready{false};
  HttpListener listener;
  Status st = listener.Start(
      /*port=*/0, MakeObservabilityHandler([&] { return ready.load(); }));
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_GT(listener.port(), 0);

  // Make sure at least one metric exists.
  MetricsRegistry::Global().GetCounter("test.http")->Increment();

  const std::string metrics = HttpGet(listener.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200"), std::string::npos)
      << metrics.substr(0, 200);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("dbwipes_test_http_total"), std::string::npos);
  // The served body is itself valid exposition text.
  const size_t body_at = metrics.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  std::string why;
  EXPECT_TRUE(IsValidPrometheusText(metrics.substr(body_at + 4), &why)) << why;

  EXPECT_NE(HttpGet(listener.port(), "/healthz").find("HTTP/1.0 200"),
            std::string::npos);
  // readyz follows the readiness callback.
  EXPECT_NE(HttpGet(listener.port(), "/readyz").find("HTTP/1.0 503"),
            std::string::npos);
  ready.store(true);
  EXPECT_NE(HttpGet(listener.port(), "/readyz").find("HTTP/1.0 200"),
            std::string::npos);

  EXPECT_NE(HttpGet(listener.port(), "/nope").find("HTTP/1.0 404"),
            std::string::npos);
  listener.Stop();
  EXPECT_FALSE(listener.running());
}

// ---------- Golden schemas ----------

TEST(GoldenSchemaTest, ExplainProfileJsonKeyPaths) {
  // A profile with every optional section populated (shard lanes,
  // block timings), so the golden pins the COMPLETE schema.
  ExplainProfile profile;
  profile.rid = 7;
  profile.block_ms = {0.5, 0.25};
  profile.num_shards = 1;
  profile.shards.emplace_back();
  profile.has_deadline = true;
  profile.has_budget = true;
  const std::string json = ExplainProfileToJson(profile, /*pretty=*/false);
  std::string joined;
  for (const std::string& path : JsonKeyPaths(json)) joined += path + "\n";
  ExpectMatchesGolden("explain_profile_keys.txt", joined);
}

TEST(GoldenSchemaTest, MetricsSnapshotJsonShape) {
  // A LOCAL registry with fixed contents makes the whole document
  // deterministic, so the golden is the exact bytes — any accidental
  // format change (key order, number formatting, new fields) shows up
  // as a diff.
  MetricsRegistry registry;
  registry.GetCounter("alpha.count")->Increment(3);
  registry.GetGauge("beta.level")->Set(-2);
  MetricHistogram* h = registry.GetHistogram("gamma.ms");
  h->Observe(0.5);
  h->Observe(40.0);
  h->Observe(1e9);  // overflow
  ExpectMatchesGolden("metrics_snapshot.json",
                      registry.SnapshotJson(/*pretty=*/false) + "\n");
}

// ---------- Torn-read regression (satellite) ----------

/// Histogram snapshots must satisfy count == sum(buckets) even while
/// observations, WAL checkpoints (segment rotation), session eviction,
/// and trace export race the `stats` reader. Before count was derived
/// from the buckets, a torn read (count incremented, bucket not yet)
/// could violate the law.
TEST(TornReadTest, StatsHistogramLawHoldsUnderConcurrentCheckpointAndStats) {
  const std::string dir = TempDirFor("torn_stats");
  ServiceOptions options;
  options.wal.dir = dir;
  options.wal.segment_bytes = 1 << 12;  // force frequent rotation
  Service service(MakeDb(), options);
  ASSERT_TRUE(IsOk(
      service.Execute("sql SELECT g, avg(v) AS a FROM w GROUP BY g")));
  ASSERT_TRUE(IsOk(service.Execute("select_range a 20 1e9")));
  ASSERT_TRUE(IsOk(service.Execute("metric too_high 12")));

  /// Verifies count == sum(buckets) for every histogram entry in a
  /// stats snapshot: "name": {"count": C, ..., "buckets": [b0, ...]}.
  auto check_histogram_law = [](const std::string& stats) {
    size_t pos = 0;
    while ((pos = stats.find("\"buckets\":", pos)) != std::string::npos) {
      const size_t open = stats.find('[', pos);
      const size_t close = stats.find(']', open);
      ASSERT_NE(close, std::string::npos);
      uint64_t sum = 0;
      std::istringstream in(stats.substr(open + 1, close - open - 1));
      std::string tok;
      while (std::getline(in, tok, ',')) sum += std::stoull(tok);
      // The count for this histogram appears before its buckets array
      // within the same object.
      const size_t obj = stats.rfind('{', pos);
      const int64_t count = JsonInt(stats.substr(obj, pos - obj), "count");
      ASSERT_GE(count, 0);
      EXPECT_EQ(static_cast<uint64_t>(count), sum)
          << stats.substr(obj, close - obj + 1);
      pos = close;
    }
  };

  std::atomic<bool> stop{false};
  Tracer::Global().SetEnabled(true);
  std::thread churn([&] {
    // Drive observations + segment rotation + eviction pressure.
    int i = 0;
    while (!stop.load()) {
      service.Execute("debug");
      service.Execute("wal checkpoint");
      service.Execute("@scratch" + std::to_string(i % 4) + " state");
      service.Execute("session evict 1e-6");
      ++i;
    }
  });
  std::thread tracer([&] {
    while (!stop.load()) {
      (void)Tracer::Global().ExportJson();
    }
  });

  for (int i = 0; i < 60; ++i) {
    const std::string stats = service.Execute("stats");
    ASSERT_TRUE(IsOk(stats));
    check_histogram_law(stats);
  }
  stop.store(true);
  churn.join();
  tracer.join();
  Tracer::Global().SetEnabled(false);

  // One final quiescent check.
  check_histogram_law(service.Execute("stats"));
}

}  // namespace
}  // namespace dbwipes
