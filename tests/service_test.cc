#include <gtest/gtest.h>

#include "dbwipes/common/random.h"
#include "dbwipes/core/service.h"
#include "dbwipes/query/derived.h"

namespace dbwipes {
namespace {

std::shared_ptr<Database> MakeDb() {
  Rng rng(41);
  auto t = std::make_shared<Table>(Schema{{"g", DataType::kInt64},
                                          {"tag", DataType::kString},
                                          {"v", DataType::kDouble}},
                                   "w");
  for (int g = 0; g < 4; ++g) {
    for (int i = 0; i < 40; ++i) {
      const bool bad = g >= 2 && i < 8;
      DBW_CHECK_OK(t->AppendRow({Value(static_cast<int64_t>(g)),
                                 Value(bad ? "bad" : "fine"),
                                 Value(bad ? rng.Normal(100, 2)
                                           : rng.Normal(10, 2))}));
    }
  }
  auto db = std::make_shared<Database>();
  db->RegisterTable(t);
  return db;
}

bool IsOk(const std::string& json) {
  return json.find("\"ok\": true") != std::string::npos;
}

TEST(ServiceTest, FullProtocolFlow) {
  Service service(MakeDb());
  EXPECT_TRUE(IsOk(
      service.Execute("sql SELECT g, avg(v) AS a FROM w GROUP BY g")));
  const std::string result = service.Execute("result");
  EXPECT_TRUE(IsOk(result));
  EXPECT_NE(result.find("\"columns\""), std::string::npos);

  const std::string selected = service.Execute("select_range a 20 1e9");
  EXPECT_TRUE(IsOk(selected));
  EXPECT_NE(selected.find("\"num_selected\": 2"), std::string::npos);

  EXPECT_TRUE(IsOk(service.Execute("inputs_where v > 50")));

  const std::string metrics = service.Execute("metrics");
  EXPECT_TRUE(IsOk(metrics));
  EXPECT_NE(metrics.find("values are too high"), std::string::npos);

  EXPECT_TRUE(IsOk(service.Execute("metric too_high 12")));

  const std::string debug = service.Execute("debug");
  EXPECT_TRUE(IsOk(debug));
  EXPECT_NE(debug.find("tag = 'bad'"), std::string::npos);
  EXPECT_NE(debug.find("\"explanation\""), std::string::npos);

  const std::string cleaned = service.Execute("clean 0");
  EXPECT_TRUE(IsOk(cleaned));
  EXPECT_NE(cleaned.find("NOT"), std::string::npos);

  const std::string state = service.Execute("state");
  EXPECT_NE(state.find("\"num_applied_predicates\": 1"), std::string::npos);

  EXPECT_TRUE(IsOk(service.Execute("undo")));
  EXPECT_TRUE(IsOk(service.Execute("clean_where tag = 'bad'")));
  EXPECT_TRUE(IsOk(service.Execute("reset")));
}

TEST(ServiceTest, ErrorsAreJsonNotCrashes) {
  Service service(MakeDb());
  for (const char* bad :
       {"", "bogus", "sql", "sql SELECT FROM nothing", "result",
        "select_range", "select_range a 1", "select_groups",
        "inputs_where v > 0", "metric", "metric nope 1", "debug",
        "clean", "clean 0", "clean_where", "clean_where a = 1 OR b = 2",
        "undo", "metrics"}) {
    const std::string out = service.Execute(bad);
    EXPECT_NE(out.find("\"ok\": false"), std::string::npos) << bad;
    EXPECT_NE(out.find("\"error\""), std::string::npos) << bad;
  }
}

TEST(ServiceTest, SelectGroupsByIndex) {
  Service service(MakeDb());
  ASSERT_TRUE(IsOk(
      service.Execute("sql SELECT g, avg(v) AS a FROM w GROUP BY g")));
  const std::string out = service.Execute("select_groups 2 3");
  EXPECT_TRUE(IsOk(out));
  EXPECT_NE(out.find("\"num_selected\": 2"), std::string::npos);
  EXPECT_FALSE(IsOk(service.Execute("select_groups 99")));
}

TEST(ServiceTest, MetricKinds) {
  Service service(MakeDb());
  ASSERT_TRUE(IsOk(
      service.Execute("sql SELECT g, avg(v) AS a FROM w GROUP BY g")));
  ASSERT_TRUE(IsOk(service.Execute("select_groups 2")));
  for (const char* kind :
       {"too_high", "too_low", "not_equal", "total_above", "total_below"}) {
    EXPECT_TRUE(IsOk(service.Execute(std::string("metric ") + kind + " 5")))
        << kind;
  }
}

// ---------- derived columns (tested here to avoid another binary) ----------

TEST(DerivedColumnTest, BucketCreatesWindows) {
  Table t(Schema{{"minute", DataType::kInt64}, {"v", DataType::kDouble}},
          "r");
  for (int m : {0, 29, 30, 59, 60, 95}) {
    DBW_CHECK_OK(t.AppendRow({Value(static_cast<int64_t>(m)), Value(1.0)}));
  }
  auto derived = *WithDerivedColumn(t, "window", Bucket(Col("minute"), 30));
  EXPECT_EQ(derived->schema().field(2).name, "window");
  EXPECT_EQ(derived->schema().field(2).type, DataType::kInt64);
  EXPECT_EQ(derived->GetValue(0, 2), Value(int64_t{0}));
  EXPECT_EQ(derived->GetValue(1, 2), Value(int64_t{0}));
  EXPECT_EQ(derived->GetValue(2, 2), Value(int64_t{1}));
  EXPECT_EQ(derived->GetValue(4, 2), Value(int64_t{2}));
  EXPECT_EQ(derived->GetValue(5, 2), Value(int64_t{3}));
}

TEST(DerivedColumnTest, NonIntegralBecomesDouble) {
  Table t(Schema{{"x", DataType::kDouble}}, "r");
  DBW_CHECK_OK(t.AppendRow({Value(1.0)}));
  DBW_CHECK_OK(t.AppendRow({Value(2.0)}));
  auto derived = *WithDerivedColumn(t, "half", Div(Col("x"), Lit(Value(2.0))));
  EXPECT_EQ(derived->schema().field(1).type, DataType::kDouble);
  EXPECT_EQ(derived->GetValue(0, 1), Value(0.5));
}

TEST(DerivedColumnTest, NullPropagates) {
  Table t(Schema{{"x", DataType::kDouble}}, "r");
  DBW_CHECK_OK(t.AppendRow({Value::Null()}));
  DBW_CHECK_OK(t.AppendRow({Value(6.0)}));
  auto derived = *WithDerivedColumn(t, "b", Bucket(Col("x"), 2.0));
  EXPECT_TRUE(derived->GetValue(0, 1).is_null());
  EXPECT_EQ(derived->GetValue(1, 1), Value(int64_t{3}));
}

TEST(DerivedColumnTest, Validation) {
  Table t(Schema{{"x", DataType::kDouble}, {"s", DataType::kString}}, "r");
  DBW_CHECK_OK(t.AppendRow({Value(1.0), Value("a")}));
  EXPECT_TRUE(WithDerivedColumn(t, "x", Col("x")).status().code() ==
              StatusCode::kAlreadyExists);
  EXPECT_FALSE(WithDerivedColumn(t, "y", Col("nope")).ok());
  EXPECT_TRUE(WithDerivedColumn(t, "y", Bucket(Col("s"), 2.0)).status()
                  .IsTypeError());
  EXPECT_FALSE(WithDerivedColumn(t, "y", nullptr).ok());
}

TEST(DerivedColumnTest, DerivedColumnUsableInQueryAndExplanation) {
  // End-to-end: bucket raw minutes into windows on the fly and group
  // by the derived column — the paper's 30-minute windows without
  // materializing them at generation time.
  Rng rng(9);
  Table raw(Schema{{"minute", DataType::kInt64},
                   {"sensor", DataType::kInt64},
                   {"temp", DataType::kDouble}},
            "readings");
  for (int m = 0; m < 600; ++m) {
    for (int s = 0; s < 3; ++s) {
      const bool hot = s == 2 && m >= 300;
      DBW_CHECK_OK(raw.AppendRow({Value(static_cast<int64_t>(m)),
                                  Value(static_cast<int64_t>(s)),
                                  Value(hot ? rng.Normal(100, 2)
                                            : rng.Normal(20, 1))}));
    }
  }
  auto table = *WithDerivedColumn(raw, "window", Bucket(Col("minute"), 30.0));
  auto db = std::make_shared<Database>();
  db->RegisterTable(table);
  Session session(db);
  ASSERT_TRUE(session
                  .ExecuteSql("SELECT window, avg(temp) AS t FROM readings "
                              "GROUP BY window")
                  .ok());
  EXPECT_EQ(session.result().num_groups(), 20u);
  ASSERT_TRUE(session.SelectResultsInRange("t", 40.0, 1e9).ok());
  ASSERT_TRUE(session.SetMetric(TooHigh(25.0)).ok());
  Explanation exp = *session.Debug();
  ASSERT_FALSE(exp.predicates.empty());
  EXPECT_NE(exp.predicates[0].predicate.ToString().find("sensor"),
            std::string::npos)
      << exp.predicates[0].predicate.ToString();
}

}  // namespace
}  // namespace dbwipes
