// Failover kill matrix (CRASH label): fork a PRIMARY child that
// serves the replication stream while running a deterministic
// append workload, with ONE armed crash point — a WAL or replication
// fault site with a randomized hit number, or a SIGKILL from the
// parent at a randomized moment — then, after the primary dies
// mid-write / mid-handshake / mid-snapshot-transfer / mid-frame,
// promote the surviving follower in the parent and prove:
//
//   promoted state == EXACTLY the first R workload commands for some
//   R <= tried                      (prefix property: `debug` ranking
//                                    byte-identical to a reference
//                                    service replaying R appends)
//   promote bumps the epoch >= 2    (the old timeline is fenced off)
//   the promoted node accepts writes (role actually flipped)
//
// Kill modes cover both ends of the wire: the follower is attached
// BEFORE the workload for streaming-path kills, and only AFTER a
// checkpoint truncates the log for snapshot-bootstrap kills, so the
// matrix includes deaths during the snapshot transfer itself. The
// suite self-provides main(): the forked child must run the workload
// directly, not gtest.
//
// DBWIPES_FAILOVER_RUNS scales the total run count (default sized so
// a full pass exceeds 100 randomized kill points).

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dbwipes/common/exec_context.h"
#include "dbwipes/common/random.h"
#include "dbwipes/core/service.h"

namespace dbwipes {
namespace {

std::shared_ptr<Database> MakeDb() {
  Rng rng(53);
  auto t = std::make_shared<Table>(Schema{{"g", DataType::kInt64},
                                          {"tag", DataType::kString},
                                          {"v", DataType::kDouble}},
                                   "w");
  for (int g = 0; g < 4; ++g) {
    for (int i = 0; i < 40; ++i) {
      const bool bad = g >= 2 && i < 8;
      DBW_CHECK_OK(t->AppendRow({Value(static_cast<int64_t>(g)),
                                 Value(bad ? "bad" : "fine"),
                                 Value(bad ? rng.Normal(100, 2)
                                           : rng.Normal(10, 2))}));
    }
  }
  auto db = std::make_shared<Database>();
  db->RegisterTable(t);
  return db;
}

bool IsOk(const std::string& response) {
  return response.compare(0, 11, "{\"ok\": true") == 0;
}

long long JsonInt(const std::string& response, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const size_t at = response.find(needle);
  if (at == std::string::npos) return -1;
  return std::strtoll(response.c_str() + at + needle.size(), nullptr, 10);
}

/// The deterministic tail of a debug response (ranked predicates).
std::string RankedPredicates(const std::string& debug_response) {
  const size_t at = debug_response.find("\"predicates\":[");
  EXPECT_NE(at, std::string::npos) << debug_response.substr(0, 200);
  return at == std::string::npos ? debug_response : debug_response.substr(at);
}

/// Crash-test working directory: /dev/shm avoids paying real-disk
/// fsync latency across ~100 forks; fall back to the test tmpdir.
std::string CrashDirRoot() {
  if (::access("/dev/shm", W_OK) == 0) return "/dev/shm";
  return ::testing::TempDir();
}

// The workload: kSetupCommands logged commands establish the query
// session and shard the table (LSNs 1..4), then appends i carry
// deterministic contents (LSN 5 + i), so the parent can rebuild the
// exact state after any prefix of the stream.
constexpr size_t kSetupCommands = 4;
constexpr size_t kPreAppends = 6;   // before the log-truncating checkpoint
constexpr size_t kTotalAppends = 20;

std::string AppendCommandFor(size_t i) {
  return "append w 9 extra " + std::to_string(50.0 + static_cast<double>(i));
}

bool RunSetup(Service& service) {
  return IsOk(service.Execute(
             "sql SELECT g, avg(v) AS a FROM w GROUP BY g")) &&
         IsOk(service.Execute("select_range a 20 1e9")) &&
         IsOk(service.Execute("metric too_high 12")) &&
         IsOk(service.Execute("shards w 4"));
}

/// The forked primary's workload. Never returns — exits 0 (workload
/// complete and the follower drained), kFaultCrashExit (the armed
/// crash fired), or 3 (internal invariant broke; parent fails the run).
[[noreturn]] void RunPrimaryChild(const std::string& dir, int ack_fd,
                                  const std::string& site, size_t skip,
                                  size_t short_write_limit) {
  FaultInjector faults;
  if (!site.empty()) {
    FaultInjector::Fault fault;
    fault.crash = true;
    fault.skip = skip;
    fault.count = 1;
    fault.short_write_limit = short_write_limit;
    faults.Arm(site, fault);
  }
  ServiceOptions options;
  options.wal.dir = dir;
  options.wal.faults = &faults;
  options.replication.listen_port = 0;  // ephemeral
  options.replication.faults = &faults;
  Service service(MakeDb(), options);

  const std::string status = service.Execute("replication status");
  if (status.find("\"listening\": true") == std::string::npos) ::_exit(3);
  ::dprintf(ack_fd, "port %lld\n", JsonInt(status, "port"));

  if (!RunSetup(service)) ::_exit(3);

  for (size_t i = 0; i < kTotalAppends; ++i) {
    if (i == kPreAppends) {
      // Truncate the log: a follower attaching after this line MUST
      // bootstrap from a snapshot transfer (the mid-snapshot kills).
      if (!IsOk(service.Execute("wal checkpoint"))) ::_exit(3);
      ::dprintf(ack_fd, "cp\n");
    }
    ::dprintf(ack_fd, "t %zu\n", i);
    if (!IsOk(service.Execute(AppendCommandFor(i)))) ::_exit(3);
    ::dprintf(ack_fd, "a %zu\n", i);
    if (i >= kPreAppends) {
      // Pace the tail so streaming genuinely overlaps the workload
      // (and the parent's SIGKILL lands at varied stream positions).
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  // Completed runs drain the stream so the follower reaches FULL
  // parity (bounded wait: a follower that never attached or already
  // died must not wedge the run).
  const long long durable =
      JsonInt(service.Execute("wal status"), "durable_lsn");
  for (int poll = 0; poll < 300; ++poll) {
    const std::string rs = service.Execute("replication status");
    if (JsonInt(rs, "followers") >= 1 && JsonInt(rs, "min_acked_lsn") >= durable) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::_exit(0);
}

ServiceOptions FollowerOptions(int primary_port) {
  ServiceOptions options;  // memory-only follower: promote-ready state
  options.replication.follow = "127.0.0.1:" + std::to_string(primary_port);
  options.replication.heartbeat_timeout_ms = 400.0;
  options.replication.reconnect.initial_backoff_ms = 5.0;
  options.replication.reconnect.max_backoff_ms = 50.0;
  return options;
}

struct KillMode {
  const char* site;        // empty: parent SIGKILLs instead
  bool attach_at_cp;       // attach the follower only after the
                           // checkpoint (forces snapshot bootstrap)
  uint64_t skip_range;     // randomized fault skip in [0, range)
  uint64_t short_write_range;  // randomized torn-write byte cap
};

// Every replication-path crash site plus the WAL's own write/fsync
// (the primary dying mid-append) and a raw SIGKILL (the primary dying
// between ANY two instructions).
const KillMode kKillModes[] = {
    {"wal/write", false, 30, 48},
    {"wal/fsync", false, 30, 0},
    {"repl/send_frame", false, 26, 0},
    {"repl/snapshot_chunk", true, 2, 0},
    {"repl/handshake", true, 2, 0},
    {"", false, 0, 0},  // SIGKILL at a randomized stream position
};

struct FailoverOutcome {
  bool crashed = false;
  bool completed = false;
  size_t tried = 0;   // appends attempted by the child (count)
  size_t acked = 0;   // appends acknowledged by the child (count)
  bool follower_attached = false;
  bool parity_checked = false;
  long long frames_applied = 0;
  long long snapshot_installs = 0;
};

FailoverOutcome RunFailoverOnce(const KillMode& mode, Rng& rng,
                                const std::string& dir) {
  FailoverOutcome outcome;
  std::system(("rm -rf '" + dir + "'").c_str());
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    ADD_FAILURE() << "pipe: " << std::strerror(errno);
    return outcome;
  }
  const size_t skip =
      mode.skip_range > 0 ? rng.UniformInt(mode.skip_range) : 0;
  const size_t short_write =
      mode.short_write_range > 0 ? rng.UniformInt(mode.short_write_range) : 0;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ADD_FAILURE() << "fork: " << std::strerror(errno);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return outcome;
  }
  if (pid == 0) {
    ::close(pipe_fds[0]);
    RunPrimaryChild(dir, pipe_fds[1], mode.site, skip, short_write);
  }
  ::close(pipe_fds[1]);

  // Stream the ack pipe: the follower attaches mid-run (at `port` for
  // streaming-path kills, at `cp` for snapshot-path kills), so lines
  // act as they arrive rather than being parsed post-mortem.
  std::unique_ptr<Service> follower;
  std::thread killer;
  const bool sigkill_mode = mode.site[0] == '\0';
  auto attach_follower = [&](int port) {
    follower = std::make_unique<Service>(MakeDb(), FollowerOptions(port));
    outcome.follower_attached = true;
    if (sigkill_mode) {
      const long delay_ms = static_cast<long>(2 + rng.UniformInt(uint64_t{60}));
      killer = std::thread([pid, delay_ms] {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
        ::kill(pid, SIGKILL);
      });
    }
  };

  std::string buffered;
  char chunk[256];
  int primary_port = -1;
  while (true) {
    const ssize_t n = ::read(pipe_fds[0], chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF: the child exited (or was killed)
    buffered.append(chunk, static_cast<size_t>(n));
    size_t line_start = 0;
    size_t eol;
    while ((eol = buffered.find('\n', line_start)) != std::string::npos) {
      const std::string line = buffered.substr(line_start, eol - line_start);
      line_start = eol + 1;
      size_t value = 0;
      if (std::sscanf(line.c_str(), "port %d", &primary_port) == 1) {
        if (!mode.attach_at_cp) attach_follower(primary_port);
        continue;
      }
      if (line == "cp") {
        if (mode.attach_at_cp && follower == nullptr && primary_port > 0) {
          attach_follower(primary_port);
        }
        continue;
      }
      if (std::sscanf(line.c_str(), "t %zu", &value) == 1) {
        outcome.tried = value + 1;
      } else if (std::sscanf(line.c_str(), "a %zu", &value) == 1) {
        outcome.acked = value + 1;
      }
    }
    buffered.erase(0, line_start);
  }
  ::close(pipe_fds[0]);

  int wstatus = 0;
  if (::waitpid(pid, &wstatus, 0) != pid) {
    ADD_FAILURE() << "waitpid: " << std::strerror(errno);
  } else if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0) {
    outcome.completed = true;
  } else if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == kFaultCrashExit) {
    outcome.crashed = true;
  } else if (WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL) {
    outcome.crashed = true;
  } else {
    ADD_FAILURE() << "child (site '" << mode.site << "', skip " << skip
                  << ") died unexpectedly: exited="
                  << (WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1)
                  << " signal="
                  << (WIFSIGNALED(wstatus) ? WTERMSIG(wstatus) : 0);
  }
  if (killer.joinable()) killer.join();
  if (follower == nullptr) return outcome;

  // The primary is dead. Capture the follower's stream stats, promote
  // it, and hold the promoted state to the acknowledged-prefix oracle.
  const std::string pre_status = follower->Execute("replication status");
  outcome.frames_applied = JsonInt(pre_status, "frames_applied");
  outcome.snapshot_installs = JsonInt(pre_status, "snapshot_installs");

  const std::string promoted = follower->Execute("promote");
  EXPECT_TRUE(IsOk(promoted)) << promoted;
  EXPECT_GE(JsonInt(promoted, "epoch"), 2) << promoted;
  const long long last_applied = JsonInt(promoted, "last_applied_lsn");
  // The follower can never hold history the primary was not even
  // ASKED to write (setup + every attempted append).
  EXPECT_LE(last_applied,
            static_cast<long long>(kSetupCommands + outcome.tried))
      << "site '" << mode.site << "': follower invented history";

  if (last_applied >= static_cast<long long>(kSetupCommands)) {
    // Prefix oracle: the promoted state must be byte-identical to a
    // fresh service that replayed EXACTLY the first R appends.
    const size_t replayed =
        static_cast<size_t>(last_applied) - kSetupCommands;
    Service reference(MakeDb());
    EXPECT_TRUE(RunSetup(reference));
    for (size_t i = 0; i < replayed; ++i) {
      EXPECT_TRUE(IsOk(reference.Execute(AppendCommandFor(i))));
    }
    EXPECT_EQ(RankedPredicates(follower->Execute("debug")),
              RankedPredicates(reference.Execute("debug")))
        << "site '" << mode.site << "' skip " << skip << ": promoted state "
        << "is not the acknowledged prefix of " << replayed << " appends";
    outcome.parity_checked = true;
    // Promotion flipped the role: the same mutation a follower refuses
    // must now succeed.
    EXPECT_TRUE(IsOk(follower->Execute("append w 9 extra 999.0")));
  } else {
    // Killed before the setup frames landed: still a primary now, so a
    // logged session command must be accepted (not `not_primary`).
    EXPECT_TRUE(IsOk(follower->Execute(
        "sql SELECT g, avg(v) AS a FROM w GROUP BY g")));
  }
  return outcome;
}

size_t TotalRuns() {
  if (const char* env = std::getenv("DBWIPES_FAILOVER_RUNS")) {
    const long runs = std::strtol(env, nullptr, 10);
    if (runs > 0) return static_cast<size_t>(runs);
  }
  return 108;  // 6 kill modes x 18 = 108 randomized kill points
}

TEST(ReplicationFailoverTest, KillMatrixPromotedFollowerIsAnAckedPrefix) {
  const size_t modes = sizeof(kKillModes) / sizeof(kKillModes[0]);
  const size_t runs_per_mode = (TotalRuns() + modes - 1) / modes;
  const std::string dir = CrashDirRoot() + "/dbw_failover_" +
                          std::to_string(::getpid());

  size_t crashes = 0;
  size_t completions = 0;
  size_t parity_checks = 0;
  long long total_frames = 0;
  long long total_snapshot_installs = 0;
  for (const KillMode& mode : kKillModes) {
    Rng rng(1811 +
            std::hash<std::string>{}(std::string("kill") + mode.site) % 10000);
    for (size_t run = 0; run < runs_per_mode; ++run) {
      const FailoverOutcome outcome = RunFailoverOnce(mode, rng, dir);
      if (outcome.crashed) ++crashes;
      if (outcome.completed) ++completions;
      if (outcome.parity_checked) ++parity_checks;
      if (outcome.frames_applied > 0) total_frames += outcome.frames_applied;
      if (outcome.snapshot_installs > 0) {
        total_snapshot_installs += outcome.snapshot_installs;
      }
      if (::testing::Test::HasFatalFailure()) break;
    }
  }
  std::system(("rm -rf '" + dir + "'").c_str());

  // The matrix must actually kill primaries, and unfired runs must
  // complete at full parity — both outcomes exercised — and the
  // snapshot-bootstrap path must have both installed and been killed.
  EXPECT_GT(crashes, 0u);
  EXPECT_GT(completions, 0u);
  EXPECT_GT(total_frames, 0);
  EXPECT_GT(total_snapshot_installs, 0);
  EXPECT_GT(parity_checks, TotalRuns() / 4);
  std::fprintf(stderr,
               "[failover matrix] %zu modes x %zu runs: %zu crashes, "
               "%zu completions, %zu parity checks, %lld frames, "
               "%lld snapshot installs\n",
               modes, runs_per_mode, crashes, completions, parity_checks,
               total_frames, total_snapshot_installs);
}

}  // namespace
}  // namespace dbwipes

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
