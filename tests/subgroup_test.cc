#include <gtest/gtest.h>

#include "dbwipes/common/random.h"
#include "dbwipes/learn/subgroup.h"

namespace dbwipes {
namespace {

struct Planted {
  std::shared_ptr<Table> table;
  std::vector<RowId> rows;
  std::vector<int> labels;
};

// Positives concentrate in (cat = 'smoker' AND age > 65) — the paper's
// subgroup-discovery illustration.
Planted MakePatients(uint64_t seed, double noise = 0.02) {
  Rng rng(seed);
  Planted out;
  out.table = std::make_shared<Table>(Schema{{"habit", DataType::kString},
                                             {"age", DataType::kDouble},
                                             {"weight", DataType::kDouble}},
                                      "patients");
  for (int i = 0; i < 800; ++i) {
    const bool smoker = rng.Bernoulli(0.4);
    const double age = rng.UniformDouble(20, 90);
    const double weight = rng.Normal(75, 12);
    DBW_CHECK_OK(out.table->AppendRow(
        {Value(smoker ? "smoker" : "nonsmoker"), Value(age), Value(weight)}));
    out.rows.push_back(static_cast<RowId>(i));
    bool high_risk = smoker && age > 65;
    if (rng.Bernoulli(noise)) high_risk = !high_risk;
    out.labels.push_back(high_risk ? 1 : 0);
  }
  return out;
}

TEST(SubgroupTest, FindsPlantedSubgroup) {
  Planted p = MakePatients(1);
  FeatureView v = *FeatureView::Create(*p.table, {"habit", "age", "weight"});
  auto subgroups = *DiscoverSubgroups(v, p.rows, p.labels, {});
  ASSERT_FALSE(subgroups.empty());
  const Subgroup& best = subgroups[0];
  EXPECT_GT(best.wracc, 0.05);
  const std::string desc = best.predicate.ToString();
  EXPECT_NE(desc.find("habit = 'smoker'"), std::string::npos) << desc;
  EXPECT_NE(desc.find("age >"), std::string::npos) << desc;
  // Covered set should be mostly positive.
  EXPECT_GT(static_cast<double>(best.positives) /
                static_cast<double>(best.coverage),
            0.8);
}

TEST(SubgroupTest, WeightedCoveringYieldsDiverseRules) {
  // Two disjoint positive pockets; covering should surface both.
  Rng rng(2);
  auto t = std::make_shared<Table>(
      Schema{{"c", DataType::kString}, {"x", DataType::kDouble}}, "t");
  std::vector<RowId> rows;
  std::vector<int> labels;
  for (int i = 0; i < 600; ++i) {
    const size_t kind = rng.UniformInt(3u);
    const char* c = kind == 0 ? "alpha" : (kind == 1 ? "beta" : "gamma");
    DBW_CHECK_OK(t->AppendRow({Value(c), Value(rng.UniformDouble(0, 1))}));
    rows.push_back(static_cast<RowId>(i));
    labels.push_back(kind != 2 ? 1 : 0);  // alpha and beta both positive
  }
  FeatureView v = *FeatureView::Create(*t, {"c", "x"});
  SubgroupOptions opts;
  opts.num_rules = 4;
  opts.max_clauses = 1;
  auto subgroups = *DiscoverSubgroups(v, rows, labels, {}, opts);
  ASSERT_GE(subgroups.size(), 2u);
  std::string all;
  for (const Subgroup& sg : subgroups) all += sg.predicate.ToString() + ";";
  EXPECT_NE(all.find("alpha"), std::string::npos) << all;
  EXPECT_NE(all.find("beta"), std::string::npos) << all;
}

TEST(SubgroupTest, MaxClausesBoundsDescriptions) {
  Planted p = MakePatients(3);
  FeatureView v = *FeatureView::Create(*p.table, {"habit", "age", "weight"});
  SubgroupOptions opts;
  opts.max_clauses = 1;
  auto subgroups = *DiscoverSubgroups(v, p.rows, p.labels, {}, opts);
  for (const Subgroup& sg : subgroups) {
    EXPECT_LE(sg.predicate.num_clauses(), 1u);
  }
}

TEST(SubgroupTest, InitialWeightsBiasTheSearch) {
  // Upweight the 'gamma' pocket's examples: it should win round one
  // even though it is the smaller positive pocket.
  Rng rng(4);
  auto t = std::make_shared<Table>(Schema{{"c", DataType::kString}}, "t");
  std::vector<RowId> rows;
  std::vector<int> labels;
  std::vector<double> weights;
  for (int i = 0; i < 300; ++i) {
    const bool big_pocket = i % 3 != 0;
    const char* c = big_pocket ? "alpha" : "gamma";
    const bool positive = rng.Bernoulli(big_pocket ? 0.9 : 0.9);
    DBW_CHECK_OK(t->AppendRow({Value(positive ? c : "noise")}));
    rows.push_back(static_cast<RowId>(i));
    labels.push_back(positive ? 1 : 0);
    weights.push_back(big_pocket ? 1.0 : 20.0);
  }
  FeatureView v = *FeatureView::Create(*t, {"c"});
  SubgroupOptions opts;
  opts.num_rules = 1;
  opts.max_clauses = 1;
  auto subgroups = *DiscoverSubgroups(v, rows, labels, weights, opts);
  ASSERT_FALSE(subgroups.empty());
  EXPECT_NE(subgroups[0].predicate.ToString().find("gamma"),
            std::string::npos)
      << subgroups[0].predicate.ToString();
}

TEST(SubgroupTest, CoveredIndicesAreConsistent) {
  Planted p = MakePatients(5);
  FeatureView v = *FeatureView::Create(*p.table, {"habit", "age", "weight"});
  auto subgroups = *DiscoverSubgroups(v, p.rows, p.labels, {});
  for (const Subgroup& sg : subgroups) {
    EXPECT_EQ(sg.covered.size(), sg.coverage);
    BoundPredicate bound = *sg.predicate.Bind(*p.table);
    for (size_t idx : sg.covered) {
      EXPECT_TRUE(bound.Matches(p.rows[idx]))
          << sg.predicate.ToString() << " idx " << idx;
    }
  }
}

TEST(SubgroupTest, Validation) {
  Planted p = MakePatients(6);
  FeatureView v = *FeatureView::Create(*p.table, {"age"});
  EXPECT_FALSE(DiscoverSubgroups(v, {}, {}, {}).ok());
  EXPECT_FALSE(DiscoverSubgroups(v, {0, 1}, {0}, {}).ok());
  EXPECT_FALSE(DiscoverSubgroups(v, {0, 1}, {0, 0}, {}).ok());  // no positive
  EXPECT_FALSE(DiscoverSubgroups(v, {0, 1}, {0, 1}, {1.0}).ok());
}

TEST(SubgroupTest, AllPositiveLabelsFindNothingUseful) {
  // With every example positive, WRAcc of any rule is ~0; the search
  // should return empty rather than arbitrary rules.
  auto t = std::make_shared<Table>(Schema{{"x", DataType::kDouble}}, "t");
  std::vector<RowId> rows;
  std::vector<int> labels;
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    DBW_CHECK_OK(t->AppendRow({Value(rng.UniformDouble(0, 1))}));
    rows.push_back(static_cast<RowId>(i));
    labels.push_back(1);
  }
  FeatureView v = *FeatureView::Create(*t, {"x"});
  auto subgroups = *DiscoverSubgroups(v, rows, labels, {});
  EXPECT_TRUE(subgroups.empty());
}

class SubgroupSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SubgroupSeedSweep, RecoversPlantedRuleAcrossSeeds) {
  Planted p = MakePatients(GetParam());
  FeatureView v = *FeatureView::Create(*p.table, {"habit", "age", "weight"});
  auto subgroups = *DiscoverSubgroups(v, p.rows, p.labels, {});
  ASSERT_FALSE(subgroups.empty());
  EXPECT_NE(subgroups[0].predicate.ToString().find("smoker"),
            std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubgroupSeedSweep,
                         ::testing::Values(10, 20, 30, 40, 50));

}  // namespace
}  // namespace dbwipes
