// Crash-recovery kill matrix (CRASH label): fork a child that runs a
// deterministic append/checkpoint workload against a WAL directory
// with ONE armed crash point — an I/O fault site and a randomized hit
// number, covering every byte-landing spot from "partial frame
// written" to "killed between fsync and acknowledgement" — then, after
// the child dies with _exit(kFaultCrashExit) mid-syscall (the process
// equivalent of a power cut), recover in the parent and prove the
// durable state is EXACTLY the acknowledged prefix:
//
//   acked <= recovered rows <= tried        (the one in-flight row may
//                                            or may not have landed)
//   row j == f(j) for every recovered row   (byte-identical contents)
//   replay_errors == 0                      (every log record applies)
//
// Children are re-run against the same directory, so crashes DURING
// recovery (replay, the post-recovery checkpoint) are in the matrix
// too. The suite self-provides main(): the forked child must run the
// workload directly, not gtest.
//
// DBWIPES_CRASH_RUNS scales the per-site run count (default sized so a
// full pass exceeds 200 randomized kill points).

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "dbwipes/common/exec_context.h"
#include "dbwipes/common/random.h"
#include "dbwipes/core/service.h"
#include "dbwipes/core/snapshot.h"

namespace dbwipes {
namespace {

constexpr size_t kSeedRows = 8;

std::shared_ptr<Database> MakeCrashDb() {
  auto t = std::make_shared<Table>(Schema{{"g", DataType::kInt64},
                                          {"tag", DataType::kString},
                                          {"v", DataType::kDouble}},
                                   "w");
  for (size_t i = 0; i < kSeedRows; ++i) {
    DBW_CHECK_OK(t->AppendRow({Value(static_cast<int64_t>(-1)), Value("seed"),
                               Value(0.25 * static_cast<double>(i))}));
  }
  auto db = std::make_shared<Database>();
  db->RegisterTable(t);
  return db;
}

// The deterministic workload row: append i carries exactly these
// values, so the parent can verify recovered contents byte for byte.
int64_t RowG(size_t i) { return static_cast<int64_t>(i); }
std::string RowTag(size_t i) { return "s" + std::to_string(i % 7); }
double RowV(size_t i) { return static_cast<double>(i) * 1.5; }

std::string AppendCommandFor(size_t i) {
  return "append w " + std::to_string(RowG(i)) + " " + RowTag(i) + " " +
         std::to_string(RowV(i));
}

bool IsOk(const std::string& response) {
  return response.compare(0, 11, "{\"ok\": true") == 0;
}

long long JsonInt(const std::string& response, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const size_t at = response.find(needle);
  if (at == std::string::npos) return -1;
  return std::strtoll(response.c_str() + at + needle.size(), nullptr, 10);
}

/// Sum of `"w": {..., "rows": [a, b, ...]}` in a `stats` response;
/// -1 when "w" is not sharded yet (fresh world).
long long ShardedRowsOfW(const std::string& stats) {
  const size_t at = stats.find("\"w\": {");
  if (at == std::string::npos) return -1;
  const size_t rows_at = stats.find("\"rows\": [", at);
  if (rows_at == std::string::npos) return -1;
  long long total = 0;
  const char* p = stats.c_str() + rows_at + 9;
  while (*p != ']' && *p != '\0') {
    char* end = nullptr;
    total += std::strtoll(p, &end, 10);
    if (end == p) break;
    p = end;
    while (*p == ',' || *p == ' ') ++p;
  }
  return total;
}

/// Crash-test working directory: /dev/shm avoids paying real-disk
/// fsync latency ~400 times; fall back to the test tmpdir.
std::string CrashDirRoot() {
  if (::access("/dev/shm", W_OK) == 0) return "/dev/shm";
  return ::testing::TempDir();
}

ServiceOptions CrashServiceOptions(const std::string& dir,
                                   FaultInjector* faults) {
  ServiceOptions options;
  options.wal.dir = dir;
  options.wal.faults = faults;
  return options;
}

/// The forked child's workload. Never returns — exits 0 (workload
/// complete), kFaultCrashExit (the armed crash fired mid-I/O), or 3
/// (internal invariant broke; the parent fails the run).
[[noreturn]] void RunCrashChild(const std::string& dir, int ack_fd,
                                const std::string& site, size_t skip,
                                size_t short_write_limit, size_t ops,
                                size_t checkpoint_every) {
  FaultInjector faults;
  FaultInjector::Fault fault;
  fault.crash = true;
  fault.skip = skip;
  fault.count = 1;
  fault.short_write_limit = short_write_limit;
  // Armed BEFORE recovery runs: a small skip lands the kill inside
  // replay or the post-recovery checkpoint, not just the workload.
  faults.Arm(site, fault);

  Service service(MakeCrashDb(), CrashServiceOptions(dir, &faults));

  const std::string status = service.Execute("wal status");
  if (status.find("\"enabled\": true") == std::string::npos) ::_exit(3);
  if (JsonInt(status, "replay_errors") != 0) ::_exit(3);

  long long base = ShardedRowsOfW(service.Execute("stats"));
  if (base < 0) {
    // Fresh directory: shard the seed table so appends have a tail.
    if (!IsOk(service.Execute("shards w 2"))) ::_exit(3);
    base = static_cast<long long>(kSeedRows);
  }
  const size_t resume = static_cast<size_t>(base) - kSeedRows;
  ::dprintf(ack_fd, "base %zu\n", resume);

  for (size_t i = resume; i < resume + ops; ++i) {
    if (checkpoint_every > 0 && i > resume &&
        (i - resume) % checkpoint_every == 0) {
      // May crash inside snapshot write / rotate / truncate.
      service.Execute("wal checkpoint");
    }
    ::dprintf(ack_fd, "t %zu\n", i);
    const std::string r = service.Execute(AppendCommandFor(i));
    if (!IsOk(r)) ::_exit(3);  // crash faults never return errors
    ::dprintf(ack_fd, "a %zu\n", i);
  }
  ::_exit(0);
}

struct ChildOutcome {
  bool crashed = false;     // _exit(kFaultCrashExit)
  bool completed = false;   // _exit(0) — the armed point was never hit
  size_t acked = 0;         // appends acknowledged this run (count)
  size_t tried = 0;         // appends attempted this run (count)
  bool saw_base = false;
  size_t base = 0;          // child's recovered resume index
};

ChildOutcome RunChildOnce(const std::string& dir, const std::string& site,
                          size_t skip, size_t short_write_limit, size_t ops,
                          size_t checkpoint_every) {
  ChildOutcome outcome;
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    ADD_FAILURE() << "pipe: " << std::strerror(errno);
    return outcome;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ADD_FAILURE() << "fork: " << std::strerror(errno);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return outcome;
  }
  if (pid == 0) {
    ::close(pipe_fds[0]);
    RunCrashChild(dir, pipe_fds[1], site, skip, short_write_limit, ops,
                  checkpoint_every);
  }
  ::close(pipe_fds[1]);

  // Drain the ack pipe until the child exits (EOF). Lines are written
  // with unbuffered dprintf, so everything acknowledged before the
  // kill is visible here.
  std::string buffered;
  char chunk[512];
  ssize_t n;
  while ((n = ::read(pipe_fds[0], chunk, sizeof(chunk))) > 0) {
    buffered.append(chunk, static_cast<size_t>(n));
  }
  ::close(pipe_fds[0]);

  size_t line_start = 0;
  while (line_start < buffered.size()) {
    size_t eol = buffered.find('\n', line_start);
    if (eol == std::string::npos) break;  // torn final line: ignore
    const std::string line = buffered.substr(line_start, eol - line_start);
    line_start = eol + 1;
    size_t value = 0;
    if (std::sscanf(line.c_str(), "base %zu", &value) == 1) {
      outcome.saw_base = true;
      outcome.base = value;
    } else if (std::sscanf(line.c_str(), "t %zu", &value) == 1) {
      outcome.tried = value + 1;
    } else if (std::sscanf(line.c_str(), "a %zu", &value) == 1) {
      outcome.acked = value + 1;
    }
  }

  int wstatus = 0;
  if (::waitpid(pid, &wstatus, 0) != pid) {
    ADD_FAILURE() << "waitpid: " << std::strerror(errno);
    return outcome;
  }
  if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0) {
    outcome.completed = true;
  } else if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == kFaultCrashExit) {
    outcome.crashed = true;
  } else {
    ADD_FAILURE() << "child (site " << site << ", skip " << skip
                  << ") died unexpectedly: exited="
                  << (WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1)
                  << " signal="
                  << (WIFSIGNALED(wstatus) ? WTERMSIG(wstatus) : 0);
  }
  return outcome;
}

/// Recovers `dir` in-process and returns the durable append count K,
/// verifying replay cleanliness and the exact row contents f(0..K-1).
size_t VerifyRecovered(const std::string& dir) {
  Service service(MakeCrashDb(), [&dir]() {
    ServiceOptions options;
    options.wal.dir = dir;
    return options;
  }());
  const std::string status = service.Execute("wal status");
  EXPECT_NE(status.find("\"enabled\": true"), std::string::npos) << status;
  EXPECT_EQ(JsonInt(status, "replay_errors"), 0) << status;

  // Export the recovered world through a probe snapshot and inspect
  // the actual rows (the gate-free save path; the service is idle).
  const std::string probe = dir + "/probe.dbw";
  const std::string saved = service.Execute("snapshot save " + probe);
  EXPECT_TRUE(IsOk(saved)) << saved;
  auto snapshot = ReadSnapshot(probe);
  EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  std::remove(probe.c_str());
  if (!snapshot.ok()) return 0;

  const Table* w = nullptr;
  for (const auto& [name, table] : snapshot->tables) {
    if (name == "w") w = table.get();
  }
  EXPECT_NE(w, nullptr);
  if (w == nullptr) return 0;
  EXPECT_GE(w->num_rows(), kSeedRows);
  const size_t recovered = w->num_rows() - kSeedRows;
  for (size_t i = 0; i < recovered; ++i) {
    EXPECT_EQ(w->column(0).GetInt64(kSeedRows + i), RowG(i)) << "row " << i;
    EXPECT_EQ(w->column(1).GetString(kSeedRows + i), RowTag(i)) << "row " << i;
    EXPECT_DOUBLE_EQ(w->column(2).GetDouble(kSeedRows + i), RowV(i))
        << "row " << i;
  }
  return recovered;
}

size_t RunsPerSite() {
  if (const char* env = std::getenv("DBWIPES_CRASH_RUNS")) {
    const long runs = std::strtol(env, nullptr, 10);
    const size_t sites = AllIoFaultSites().size();
    if (runs > 0 && sites > 0) {
      return (static_cast<size_t>(runs) + sites - 1) / sites;
    }
  }
  return 15;  // 14 sites x 15 = 210 kill points per full pass
}

TEST(CrashRecoveryTest, KillMatrixRecoversTheAcknowledgedPrefixExactly) {
  const std::vector<std::string>& sites = AllIoFaultSites();
  ASSERT_FALSE(sites.empty());
  const size_t runs_per_site = RunsPerSite();
  constexpr size_t kOps = 12;
  constexpr size_t kCheckpointEvery = 5;

  size_t crashes = 0;
  size_t completions = 0;
  for (const std::string& site : sites) {
    const std::string dir = CrashDirRoot() + "/dbw_crash_" +
                            std::to_string(::getpid()) + "_" + [&site]() {
                              std::string s = site;
                              for (char& c : s) {
                                if (c == '/') c = '_';
                              }
                              return s;
                            }();
    std::system(("rm -rf '" + dir + "'").c_str());

    // Deterministic per-site randomization of the kill point: vary
    // which hit fires and (for write sites) how many bytes land first,
    // so successive runs tear the frame at different offsets.
    Rng rng(977 + std::hash<std::string>{}(site) % 10000);
    size_t durable = 0;  // rows proven recovered after the last run
    for (size_t run = 0; run < runs_per_site; ++run) {
      // Sites on the append path get hit ~kOps times a run; snapshot/
      // checkpoint sites only ~kOps/kCheckpointEvery times. Bound the
      // skip by the realistic hit count so most runs actually kill.
      const size_t skip = site.rfind("wal/", 0) == 0
                              ? rng.UniformInt(uint64_t{14})
                              : rng.UniformInt(uint64_t{5});
      const size_t short_write = site == "wal/write" || site == "snapshot/write"
                                     ? rng.UniformInt(uint64_t{48})
                                     : 0;
      const ChildOutcome outcome =
          RunChildOnce(dir, site, skip, short_write, kOps, kCheckpointEvery);
      if (outcome.crashed) ++crashes;
      if (outcome.completed) ++completions;
      if (outcome.saw_base) {
        // The child recovered exactly what the last verification saw:
        // nothing lost, nothing invented between runs.
        EXPECT_EQ(outcome.base, durable)
            << "site " << site << " run " << run;
      }

      // acked/tried are GLOBAL append indexes (+1), because the child
      // resumes from the recovered count — so they bound the durable
      // row count directly. A child killed before its base line leaves
      // both at 0: the durable count must then be exactly unchanged.
      const size_t floor = std::max(durable, outcome.acked);
      const size_t ceiling = std::max(floor, outcome.tried);
      const size_t recovered = VerifyRecovered(dir);
      ASSERT_GE(recovered, floor) << "site " << site << " run " << run
                                  << ": an acknowledged append was lost";
      ASSERT_LE(recovered, ceiling) << "site " << site << " run " << run
                                    << ": recovery invented rows";
      durable = recovered;
    }
    std::system(("rm -rf '" + dir + "'").c_str());
  }
  // The matrix must actually kill children, and unfired runs (skip
  // beyond the hit count) must complete — both outcomes exercised.
  EXPECT_GT(crashes, 0u);
  EXPECT_GT(completions, 0u);
  std::fprintf(stderr, "[crash matrix] %zu sites x %zu runs: %zu crashes, %zu completions\n",
               sites.size(), runs_per_site, crashes, completions);
}

// Focused double-crash case: kill during the WORKLOAD, then kill the
// NEXT child during its recovery checkpoint, then verify — recovery
// must be idempotent under repeated interruption.
TEST(CrashRecoveryTest, CrashDuringRecoveryIsRecoverable) {
  const std::string dir = CrashDirRoot() + "/dbw_crash_recovery_" +
                          std::to_string(::getpid());
  std::system(("rm -rf '" + dir + "'").c_str());

  ChildOutcome first = RunChildOnce(dir, "wal/write", 6, 13, 10, 4);
  ASSERT_TRUE(first.crashed || first.completed);
  // Low skips on the snapshot path land inside the recovery-time
  // checkpoint of the second child.
  for (size_t skip = 0; skip < 4; ++skip) {
    RunChildOnce(dir, "snapshot/write", skip, 11, 6, 3);
    const size_t recovered = VerifyRecovered(dir);
    ASSERT_GE(recovered, first.acked);
  }
  std::system(("rm -rf '" + dir + "'").c_str());
}

}  // namespace
}  // namespace dbwipes

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
