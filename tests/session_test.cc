// F1: the Figure-1 interaction loop, verified as a state machine —
// each frontend step hands the right artifacts to the next backend
// stage, out-of-order gestures are rejected, and cleaning feeds back
// into the query form.

#include <gtest/gtest.h>

#include "dbwipes/common/random.h"
#include "dbwipes/core/session.h"

namespace dbwipes {
namespace {

std::shared_ptr<Database> MakeDb(std::vector<RowId>* bad_rows = nullptr) {
  Rng rng(17);
  auto t = std::make_shared<Table>(Schema{{"g", DataType::kInt64},
                                          {"tag", DataType::kString},
                                          {"v", DataType::kDouble}},
                                   "w");
  for (int g = 0; g < 5; ++g) {
    for (int i = 0; i < 40; ++i) {
      const bool bad = g >= 3 && i < 8;
      DBW_CHECK_OK(t->AppendRow({Value(static_cast<int64_t>(g)),
                                 Value(bad ? "bad" : "fine"),
                                 Value(bad ? rng.Normal(100, 2)
                                           : rng.Normal(10, 2))}));
      if (bad && bad_rows != nullptr) {
        bad_rows->push_back(static_cast<RowId>(t->num_rows() - 1));
      }
    }
  }
  auto db = std::make_shared<Database>();
  db->RegisterTable(t);
  return db;
}

constexpr char kQuery[] = "SELECT g, avg(v) AS a FROM w GROUP BY g";

TEST(SessionTest, HappyPathLoop) {
  Session session(MakeDb());
  // Step 1: query.
  ASSERT_TRUE(session.ExecuteSql(kQuery).ok());
  EXPECT_EQ(session.result().num_groups(), 5u);
  // Step 2: select suspicious results.
  ASSERT_TRUE(session.SelectResultsInRange("a", 20.0, 1e9).ok());
  EXPECT_EQ(session.selected_groups(), (std::vector<size_t>{3, 4}));
  // Step 3: zoom.
  Table zoomed = *session.Zoom();
  EXPECT_EQ(zoomed.num_rows(), 80u);
  EXPECT_EQ(zoomed.schema().field(0).name, "_rowid");
  // Step 4: select suspicious inputs.
  ASSERT_TRUE(session.SelectInputsWhere("v > 50").ok());
  EXPECT_EQ(session.selected_inputs().size(), 16u);
  // Step 5: metric.
  auto suggestions = *session.SuggestErrorMetrics();
  ASSERT_FALSE(suggestions.empty());
  EXPECT_EQ(suggestions[0].label, "values are too high");
  ASSERT_TRUE(
      session.SetMetric(suggestions[0].make(suggestions[0].default_expected))
          .ok());
  // Step 6: debug.
  Explanation exp = *session.Debug();
  ASSERT_FALSE(exp.predicates.empty());
  EXPECT_EQ(exp.predicates[0].predicate.ToString(), "tag = 'bad'");
  // Step 7: clean.
  ASSERT_TRUE(session.ApplyPredicate(0).ok());
  for (size_t g = 0; g < session.result().num_groups(); ++g) {
    EXPECT_LT(session.result().AggValue(g, 0), 15.0);
  }
  EXPECT_NE(session.CurrentSql().find("NOT"), std::string::npos);
  EXPECT_EQ(session.applied_predicates().size(), 1u);
}

TEST(SessionTest, OutOfOrderGesturesRejected) {
  Session session(MakeDb());
  // Everything before a query fails.
  EXPECT_FALSE(session.SelectResults({0}).ok());
  EXPECT_FALSE(session.Zoom().ok());
  EXPECT_FALSE(session.SelectInputs({0}).ok());
  EXPECT_FALSE(session.SuggestErrorMetrics().ok());
  EXPECT_FALSE(session.SetMetric(TooHigh(0)).ok());
  EXPECT_FALSE(session.Debug().ok());
  EXPECT_FALSE(session.ApplyPredicateDirect(
                          Predicate({Clause::Make("tag", CompareOp::kEq,
                                                  Value("bad"))}))
                   .ok());
  EXPECT_FALSE(session.ResetCleaning().ok());
  EXPECT_FALSE(session.DescribePlan().ok());

  ASSERT_TRUE(session.ExecuteSql(kQuery).ok());
  // Zoom / input selection / metric suggestions before S selection.
  EXPECT_FALSE(session.Zoom().ok());
  EXPECT_FALSE(session.SelectInputs({0}).ok());
  EXPECT_FALSE(session.SuggestErrorMetrics().ok());
  // Debug without metric.
  ASSERT_TRUE(session.SelectResults({3, 4}).ok());
  EXPECT_FALSE(session.Debug().ok());
  // ApplyPredicate without explanation.
  EXPECT_FALSE(session.ApplyPredicate(0).ok());
}

TEST(SessionTest, SelectionValidation) {
  Session session(MakeDb());
  ASSERT_TRUE(session.ExecuteSql(kQuery).ok());
  EXPECT_TRUE(session.SelectResults({99}).IsOutOfRange());
  EXPECT_TRUE(session.SelectResultsInRange("a", 1e8, 1e9).IsNotFound());
  EXPECT_TRUE(session.SelectResultsInRange("nope", 0, 1).IsNotFound());
  ASSERT_TRUE(session.SelectResults({3}).ok());
  EXPECT_TRUE(session.SelectInputsWhere("v > 1e12").IsNotFound());
  EXPECT_TRUE(session.SelectInputsWhere("nosuchcol > 0").IsNotFound());
  EXPECT_TRUE(session.SetMetric(nullptr).IsInvalidArgument());
  EXPECT_TRUE(session.SetMetric(TooHigh(0), 5).IsOutOfRange());
}

TEST(SessionTest, SelectionsDeduplicatedAndSorted) {
  Session session(MakeDb());
  ASSERT_TRUE(session.ExecuteSql(kQuery).ok());
  ASSERT_TRUE(session.SelectResults({4, 3, 4, 3}).ok());
  EXPECT_EQ(session.selected_groups(), (std::vector<size_t>{3, 4}));
  ASSERT_TRUE(session.SelectInputs({5, 1, 5}).ok());
  EXPECT_EQ(session.selected_inputs(), (std::vector<RowId>{1, 5}));
}

TEST(SessionTest, NewQueryResetsState) {
  Session session(MakeDb());
  ASSERT_TRUE(session.ExecuteSql(kQuery).ok());
  ASSERT_TRUE(session.SelectResults({3}).ok());
  ASSERT_TRUE(session.ExecuteSql(kQuery).ok());
  EXPECT_TRUE(session.selected_groups().empty());
  EXPECT_FALSE(session.has_explanation());
}

TEST(SessionTest, CleaningAccumulatesAndResets) {
  Session session(MakeDb());
  ASSERT_TRUE(session.ExecuteSql(kQuery).ok());
  const std::string original = session.CurrentSql();
  ASSERT_TRUE(session
                  .ApplyPredicateDirect(Predicate(
                      {Clause::Make("tag", CompareOp::kEq, Value("bad"))}))
                  .ok());
  ASSERT_TRUE(session
                  .ApplyPredicateDirect(Predicate(
                      {Clause::Make("v", CompareOp::kLt, Value(0.0))}))
                  .ok());
  EXPECT_EQ(session.applied_predicates().size(), 2u);
  // Both predicates appear in the SQL the query form would show.
  const std::string sql = session.CurrentSql();
  EXPECT_NE(sql.find("tag = 'bad'"), std::string::npos);
  EXPECT_NE(sql.find("v < 0"), std::string::npos);
  ASSERT_TRUE(session.ResetCleaning().ok());
  EXPECT_EQ(session.CurrentSql(), original);
  EXPECT_TRUE(session.applied_predicates().empty());
}

TEST(SessionTest, ApplyEmptyPredicateRejected) {
  Session session(MakeDb());
  ASSERT_TRUE(session.ExecuteSql(kQuery).ok());
  EXPECT_TRUE(
      session.ApplyPredicateDirect(Predicate::True()).IsInvalidArgument());
}

TEST(SessionTest, DescribePlanShowsCoarseProvenance) {
  Session session(MakeDb());
  ASSERT_TRUE(session.ExecuteSql(kQuery).ok());
  const std::string plan = *session.DescribePlan();
  EXPECT_NE(plan.find("Scan"), std::string::npos);
  EXPECT_NE(plan.find("GroupBy"), std::string::npos);
  EXPECT_NE(plan.find("Aggregate"), std::string::npos);
}

TEST(SessionTest, MetricSuggestionsTrackSelectionDirection) {
  Session session(MakeDb());
  ASSERT_TRUE(session.ExecuteSql(kQuery).ok());
  // Selecting the high groups suggests "too high" first...
  ASSERT_TRUE(session.SelectResultsInRange("a", 20.0, 1e9).ok());
  EXPECT_EQ((*session.SuggestErrorMetrics())[0].label,
            "values are too high");
  // ...and the low groups "too low".
  ASSERT_TRUE(session.SelectResultsInRange("a", 0.0, 15.0).ok());
  EXPECT_EQ((*session.SuggestErrorMetrics())[0].label, "values are too low");
}

TEST(SessionTest, DebugWithExplicitDPrimeImprovesF1) {
  std::vector<RowId> bad_rows;
  auto db = MakeDb(&bad_rows);
  Session session(db);
  ASSERT_TRUE(session.ExecuteSql(kQuery).ok());
  ASSERT_TRUE(session.SelectResultsInRange("a", 20.0, 1e9).ok());
  ASSERT_TRUE(session.SelectInputsWhere("v > 50").ok());
  ASSERT_TRUE(session.SetMetric(TooHigh(12.0)).ok());
  Explanation exp = *session.Debug();
  ASSERT_FALSE(exp.predicates.empty());
  EXPECT_GT(exp.predicates[0].f1, 0.95);
  EXPECT_EQ(exp.predicates[0].predicate.ToString(), "tag = 'bad'");
}

}  // namespace
}  // namespace dbwipes
