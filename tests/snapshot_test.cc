// Crash-consistent snapshot tests: payload round-trip, the service
// restore oracle (a restored session's `debug` reproduces the
// pre-snapshot ranking byte for byte), and the torn-file matrix —
// truncation at every header byte and sampled payload offsets, a bit
// flip at every byte of the file, and a foreign format version must
// all fail cleanly with the prior service state untouched. Runs under
// the asan-smoke preset (SMOKE label), so the corruption matrix also
// proves the parser never reads out of bounds.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "dbwipes/common/random.h"
#include "dbwipes/core/service.h"
#include "dbwipes/core/snapshot.h"

namespace dbwipes {
namespace {

std::shared_ptr<Database> MakeDb() {
  Rng rng(53);
  auto t = std::make_shared<Table>(Schema{{"g", DataType::kInt64},
                                          {"tag", DataType::kString},
                                          {"v", DataType::kDouble}},
                                   "w");
  for (int g = 0; g < 4; ++g) {
    for (int i = 0; i < 40; ++i) {
      const bool bad = g >= 2 && i < 8;
      DBW_CHECK_OK(t->AppendRow({Value(static_cast<int64_t>(g)),
                                 Value(bad ? "bad" : "fine"),
                                 Value(bad ? rng.Normal(100, 2)
                                           : rng.Normal(10, 2))}));
    }
  }
  auto db = std::make_shared<Database>();
  db->RegisterTable(t);
  return db;
}

std::string TempPath(const std::string& name) {
  // PID-qualified so concurrently running test binaries (e.g. two
  // sanitizer presets of this same suite) never share a file.
  return ::testing::TempDir() + "/" + std::to_string(::getpid()) + "_" + name;
}

/// Drops the per-request `"rid": N` field so two responses for the
/// same logical command compare equal.
std::string StripRid(std::string response) {
  const size_t pos = response.find(", \"rid\": ");
  if (pos == std::string::npos) return response;
  size_t end = pos + 9;
  while (end < response.size() && response[end] >= '0' && response[end] <= '9')
    ++end;
  return response.erase(pos, end - pos);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// The deterministic tail of a debug response: the ranked-predicate
/// array (predicate text, scores, precision/recall). Excludes the
/// wall-clock timings and profile, which legitimately differ run to
/// run.
std::string RankedPredicates(const std::string& debug_response) {
  const size_t at = debug_response.find("\"predicates\":[");
  EXPECT_NE(at, std::string::npos) << debug_response.substr(0, 200);
  return debug_response.substr(at);
}

void DriveFullFlow(Service& service) {
  for (const char* cmd : {
           "sql SELECT g, avg(v) AS a FROM w GROUP BY g",
           "clean_where v > 200",
           "select_range a 20 1e9",
           "inputs_where v > 50",
           "metric too_high 12",
           "set_deadline 60000",
           "@side sql SELECT g, sum(v) AS s FROM w GROUP BY g",
           "@side select_groups 2 3",
           "@side metric total_above 500 0",
       }) {
    ASSERT_NE(service.Execute(cmd).find("\"ok\": true"), std::string::npos)
        << cmd;
  }
}

TEST(SnapshotPayloadTest, RoundTripsTablesAndSessions) {
  auto db = MakeDb();
  ServiceSnapshot snap;
  snap.tables.emplace_back("w", db->GetTable("w").ValueOrDie());

  ServiceSnapshot::SessionState s;
  s.name = "main";
  s.settings.deadline_ms = 1500.0;
  s.settings.profile_enabled = true;
  s.replay.original_sql = "SELECT g, avg(v) AS a FROM w GROUP BY g";
  s.replay.applied_predicates.push_back(Predicate(
      {Clause::Make("tag", CompareOp::kEq, Value(std::string("bad")))}));
  s.replay.selected_groups = {2, 3};
  s.replay.selected_inputs = {81, 95, 120};
  s.replay.has_metric = true;
  s.replay.metric_kind = "too_high";
  s.replay.metric_expected = 12.0;
  s.replay.agg_index = 0;
  snap.sessions.push_back(s);

  const std::string payload = SerializeSnapshotPayload(snap);
  auto parsed = ParseSnapshotPayload(payload);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  ASSERT_EQ(parsed->tables.size(), 1u);
  EXPECT_EQ(parsed->tables[0].first, "w");
  const Table& t = *parsed->tables[0].second;
  const Table& orig = *snap.tables[0].second;
  ASSERT_EQ(t.num_rows(), orig.num_rows());
  ASSERT_EQ(t.schema().num_fields(), orig.schema().num_fields());
  for (RowId r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      EXPECT_EQ(t.column(c).GetValue(r), orig.column(c).GetValue(r))
          << "cell (" << r << ", " << c << ")";
    }
  }

  ASSERT_EQ(parsed->sessions.size(), 1u);
  const ServiceSnapshot::SessionState& p = parsed->sessions[0];
  EXPECT_EQ(p.name, "main");
  EXPECT_DOUBLE_EQ(p.settings.deadline_ms, 1500.0);
  EXPECT_TRUE(p.settings.profile_enabled);
  EXPECT_EQ(p.replay.original_sql, s.replay.original_sql);
  ASSERT_EQ(p.replay.applied_predicates.size(), 1u);
  EXPECT_EQ(p.replay.applied_predicates[0].ToString(),
            s.replay.applied_predicates[0].ToString());
  EXPECT_EQ(p.replay.selected_groups, s.replay.selected_groups);
  EXPECT_EQ(p.replay.selected_inputs, s.replay.selected_inputs);
  EXPECT_TRUE(p.replay.has_metric);
  EXPECT_EQ(p.replay.metric_kind, "too_high");
  EXPECT_DOUBLE_EQ(p.replay.metric_expected, 12.0);
  EXPECT_EQ(p.replay.agg_index, 0u);
}

TEST(SnapshotFileTest, WriteLeavesNoTempFileBehind) {
  const std::string path = TempPath("clean_write.dbwsnap");
  ServiceSnapshot snap;
  ASSERT_TRUE(WriteSnapshot(path, snap).ok());
  EXPECT_FALSE(ReadFile(path).empty());
  // The temp sibling was renamed away.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(SnapshotFileTest, MissingFileFailsCleanly) {
  auto r = ReadSnapshot(TempPath("never_written.dbwsnap"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

// --- The restore oracle ---

TEST(SnapshotServiceTest, RestoredSessionReproducesExplainByteForByte) {
  const std::string path = TempPath("oracle.dbwsnap");
  std::string expected_main, expected_side;
  {
    Service service(MakeDb());
    DriveFullFlow(service);
    const std::string main_debug = service.Execute("debug");
    ASSERT_NE(main_debug.find("\"ok\": true"), std::string::npos)
        << main_debug;
    expected_main = RankedPredicates(main_debug);
    const std::string side_debug = service.Execute("@side debug");
    ASSERT_NE(side_debug.find("\"ok\": true"), std::string::npos)
        << side_debug;
    expected_side = RankedPredicates(side_debug);
    ASSERT_NE(service.Execute("snapshot save " + path).find("\"ok\": true"),
              std::string::npos);
  }

  // A brand-new process: empty database, nothing but the snapshot.
  Service restored(std::make_shared<Database>());
  const std::string load = restored.Execute("snapshot load " + path);
  ASSERT_NE(load.find("\"ok\": true"), std::string::npos) << load;
  EXPECT_NE(load.find("\"tables\": 1"), std::string::npos) << load;
  EXPECT_NE(load.find("\"sessions\": 2"), std::string::npos) << load;

  const std::string main_debug = restored.Execute("debug");
  ASSERT_NE(main_debug.find("\"ok\": true"), std::string::npos) << main_debug;
  EXPECT_EQ(RankedPredicates(main_debug), expected_main);

  const std::string side_debug = restored.Execute("@side debug");
  ASSERT_NE(side_debug.find("\"ok\": true"), std::string::npos) << side_debug;
  EXPECT_EQ(RankedPredicates(side_debug), expected_side);

  // Settings survived too: main's deadline and the cleaning predicate.
  auto main_session = restored.sessions().Find("main");
  ASSERT_NE(main_session, nullptr);
  EXPECT_DOUBLE_EQ(main_session->settings.deadline_ms, 60000.0);
  const std::string state = restored.Execute("state");
  EXPECT_NE(state.find("\"num_applied_predicates\": 1"), std::string::npos)
      << state;
  std::remove(path.c_str());
}

TEST(SnapshotServiceTest, SaveLoadOnPartialSessionStates) {
  // Sessions in every intermediate stage of the loop survive a
  // round-trip: no query, query only, query + selection (no metric).
  const std::string path = TempPath("partial.dbwsnap");
  {
    Service service(MakeDb());
    ASSERT_NE(service.Execute("@empty state").find("\"ok\": true"),
              std::string::npos);
    ASSERT_NE(service
                  .Execute("@queried sql SELECT g, avg(v) AS a FROM w "
                           "GROUP BY g")
                  .find("\"ok\": true"),
              std::string::npos);
    ASSERT_NE(service.Execute("@selected sql SELECT g, avg(v) AS a FROM w "
                              "GROUP BY g")
                  .find("\"ok\": true"),
              std::string::npos);
    ASSERT_NE(service.Execute("@selected select_groups 2").find("\"ok\": true"),
              std::string::npos);
    ASSERT_NE(service.Execute("snapshot save " + path).find("\"ok\": true"),
              std::string::npos);
  }
  Service restored(std::make_shared<Database>());
  ASSERT_NE(restored.Execute("snapshot load " + path).find("\"ok\": true"),
            std::string::npos);
  EXPECT_NE(restored.Execute("@empty state").find("\"has_result\": false"),
            std::string::npos);
  EXPECT_NE(restored.Execute("@queried state").find("\"has_result\": true"),
            std::string::npos);
  EXPECT_NE(
      restored.Execute("@selected state").find("\"num_selected_groups\": 1"),
      std::string::npos);
  std::remove(path.c_str());
}

TEST(SnapshotPayloadTest, V1PayloadGatesTheShardSection) {
  auto db = MakeDb();
  ServiceSnapshot snap;
  snap.tables.emplace_back("w", db->GetTable("w").ValueOrDie());

  // Older payloads are the same bytes minus the trailing sections: v2
  // lacks the v3 block (u64 wal_lsn + u32 retry attempts + f64 retry
  // backoff = 20 bytes), v1 additionally lacks the shard section (here
  // empty, so just its U32 layout count).
  const std::string v3 = SerializeSnapshotPayload(snap);
  ASSERT_GE(v3.size(), 24u);
  const std::string v2 = v3.substr(0, v3.size() - 20);
  const std::string v1 = v2.substr(0, v2.size() - 4);

  // Old files still load; each version's parse is exact — no shard
  // section expected in v1, one required in v2, a wal_lsn required in
  // v3, nothing trailing.
  EXPECT_TRUE(ParseSnapshotPayload(v1, 1).ok());
  EXPECT_TRUE(ParseSnapshotPayload(v2, 2).ok());
  EXPECT_TRUE(ParseSnapshotPayload(v3, 3).ok());
  EXPECT_FALSE(ParseSnapshotPayload(v1, 2).ok());
  EXPECT_FALSE(ParseSnapshotPayload(v2, 1).ok());
  EXPECT_FALSE(ParseSnapshotPayload(v2, 3).ok());
  EXPECT_FALSE(ParseSnapshotPayload(v3, 2).ok());
}

TEST(SnapshotServiceTest, ShardLayoutSurvivesSaveAndLoad) {
  const std::string path = TempPath("sharded.dbwsnap");
  std::string expected;
  {
    Service service(MakeDb());
    ASSERT_NE(service.Execute("shards w 3").find("\"ok\": true"),
              std::string::npos);
    // Appends skew the tail shard: the restored layout must reproduce
    // the UNEVEN boundaries, not just the shard count.
    for (const char* cmd : {"append w 1 fine 10.5", "append w 2 bad 95"}) {
      ASSERT_NE(service.Execute(cmd).find("\"ok\": true"), std::string::npos)
          << cmd;
    }
    DriveFullFlow(service);
    const std::string save = service.Execute("snapshot save " + path);
    EXPECT_NE(save.find("\"ok\": true"), std::string::npos) << save;
    EXPECT_NE(save.find("\"sharded\": 1"), std::string::npos) << save;
    expected = RankedPredicates(service.Execute("debug"));
  }

  Service restored(MakeDb());
  const std::string load = restored.Execute("snapshot load " + path);
  EXPECT_NE(load.find("\"ok\": true"), std::string::npos) << load;
  EXPECT_NE(load.find("\"sharded\": 1"), std::string::npos) << load;

  // 160 rows split 3 ways is {54, 53, 53}; both appends rode the tail.
  const std::string stats = restored.Execute("stats");
  EXPECT_NE(stats.find("\"w\": {\"count\": 3, \"rows\": [54, 53, 55]"),
            std::string::npos)
      << stats;

  // The restored debug runs sharded (profile says so) and reproduces
  // the pre-snapshot ranking byte for byte.
  const std::string debug = restored.Execute("debug");
  EXPECT_NE(debug.find("\"shards\":{\"count\":3"), std::string::npos)
      << debug.substr(0, 400);
  EXPECT_EQ(RankedPredicates(debug), expected);
  std::remove(path.c_str());
}

// --- The torn-snapshot matrix ---

class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("corruption.dbwsnap");
    Service service(MakeDb());
    DriveFullFlow(service);
    ASSERT_NE(service.Execute("snapshot save " + path_).find("\"ok\": true"),
              std::string::npos);
    bytes_ = ReadFile(path_);
    ASSERT_GT(bytes_.size(), 28u);  // header + payload
  }

  void TearDown() override { std::remove(path_.c_str()); }

  /// Writes `mutated` over the snapshot and expects a clean, precise
  /// load failure.
  void ExpectRejected(const std::string& mutated, const std::string& what) {
    WriteFile(path_, mutated);
    auto r = ReadSnapshot(path_);
    ASSERT_FALSE(r.ok()) << what << ": corrupt snapshot was accepted";
    EXPECT_FALSE(r.status().ToString().empty());
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(SnapshotCorruptionTest, TruncationAtEveryHeaderByte) {
  // Every prefix of the 28-byte header, including the empty file.
  for (size_t n = 0; n < 28; ++n) {
    ExpectRejected(bytes_.substr(0, n),
                   "truncated to " + std::to_string(n) + " bytes");
  }
}

TEST_F(SnapshotCorruptionTest, TruncationThroughoutThePayload) {
  // Header intact, payload cut at every boundary in a stride sweep
  // plus the exact end-1 (one missing byte must be caught).
  for (size_t n = 28; n < bytes_.size(); n += 7) {
    ExpectRejected(bytes_.substr(0, n),
                   "payload truncated to " + std::to_string(n) + " bytes");
  }
  ExpectRejected(bytes_.substr(0, bytes_.size() - 1), "one byte short");
}

TEST_F(SnapshotCorruptionTest, BitFlipAtEveryByte) {
  // A single flipped bit anywhere in the file — magic, version,
  // declared size, checksum, or payload — must be detected.
  for (size_t i = 0; i < bytes_.size(); ++i) {
    std::string mutated = bytes_;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x01);
    ExpectRejected(mutated, "bit flip at byte " + std::to_string(i));
  }
}

TEST_F(SnapshotCorruptionTest, TrailingGarbageIsRejected) {
  ExpectRejected(bytes_ + std::string(16, '\0'), "trailing bytes");
}

TEST_F(SnapshotCorruptionTest, ForeignVersionIsRefusedByName) {
  std::string mutated = bytes_;
  mutated[8] = static_cast<char>(kSnapshotFormatVersion + 1);
  WriteFile(path_, mutated);
  auto r = ReadSnapshot(path_);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("version"), std::string::npos)
      << r.status().ToString();
}

TEST_F(SnapshotCorruptionTest, ForeignFileIsRefusedAsNotASnapshot) {
  WriteFile(path_, "{\"this\": \"is json, not a snapshot\"}");
  auto r = ReadSnapshot(path_);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("magic"), std::string::npos)
      << r.status().ToString();
}

TEST_F(SnapshotCorruptionTest, FailedLoadLeavesPriorStateUntouchedAndSaveable) {
  Service service(MakeDb());
  DriveFullFlow(service);
  const std::string before = service.Execute("state");

  // Corrupt the file, then try (and fail) to load it.
  std::string mutated = bytes_;
  mutated[mutated.size() / 2] = static_cast<char>(
      mutated[mutated.size() / 2] ^ 0xFF);
  WriteFile(path_, mutated);
  const std::string load = service.Execute("snapshot load " + path_);
  EXPECT_NE(load.find("\"ok\": false"), std::string::npos) << load;
  // I/O-class failures are flagged retryable (the file may be
  // re-uploaded), and the error is precise, not generic.
  EXPECT_NE(load.find("\"retryable\": true"), std::string::npos) << load;

  // Prior state is byte-identical and the session still works.
  EXPECT_EQ(StripRid(service.Execute("state")), StripRid(before));
  const std::string debug = service.Execute("debug");
  EXPECT_NE(debug.find("\"ok\": true"), std::string::npos) << debug;

  // And a fresh save over the corrupt file succeeds.
  const std::string save = service.Execute("snapshot save " + path_);
  EXPECT_NE(save.find("\"ok\": true"), std::string::npos) << save;
  auto reread = ReadSnapshot(path_);
  EXPECT_TRUE(reread.ok()) << reread.status().ToString();
}

// An injected failure at EVERY I/O step of the durable save — opening
// the temp file, writing it (including a short write), fsyncing it,
// the atomic rename, the parent-directory fsync — must surface an
// error, leave no temp litter, and leave `path` holding a VALID
// snapshot: the previous one for failures before the rename, either
// one for the dirsync step after it.
TEST(SnapshotDurabilityTest, EveryIoFaultSiteFailsCleanly) {
  const std::string path = TempPath("fault_matrix.dbwsnap");
  ServiceSnapshot old_snapshot;
  old_snapshot.wal_lsn = 7;
  ASSERT_TRUE(WriteSnapshot(path, old_snapshot).ok());

  ServiceSnapshot new_snapshot;
  new_snapshot.wal_lsn = 99;

  const char* pre_rename_sites[] = {"snapshot/open", "snapshot/write",
                                    "snapshot/fsync", "snapshot/rename"};
  for (const char* site : pre_rename_sites) {
    FaultInjector faults;
    FaultInjector::Fault fault;
    fault.status = Status::IoError(std::string("injected at ") + site);
    fault.count = 1;
    if (std::string(site) == "snapshot/write") fault.short_write_limit = 5;
    faults.Arm(site, fault);

    Status st = WriteSnapshot(path, new_snapshot, &faults);
    EXPECT_FALSE(st.ok()) << site;
    EXPECT_NE(::access((path + ".tmp").c_str(), F_OK), 0)
        << site << ": temp file left behind";
    auto read = ReadSnapshot(path);
    ASSERT_TRUE(read.ok()) << site << ": " << read.status().ToString();
    EXPECT_EQ(read->wal_lsn, 7u) << site << ": prior snapshot clobbered";
  }

  {
    // dirsync fails AFTER the atomic rename: the save reports failure
    // (not yet durable against power loss) but the file is the new,
    // fully valid snapshot — never a torn mix.
    FaultInjector faults;
    faults.ArmError("snapshot/dirsync", Status::IoError("injected dirsync"));
    Status st = WriteSnapshot(path, new_snapshot, &faults);
    EXPECT_FALSE(st.ok());
    EXPECT_NE(::access((path + ".tmp").c_str(), F_OK), 0);
    auto read = ReadSnapshot(path);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    EXPECT_EQ(read->wal_lsn, 99u);
  }

  // Unarmed, the save goes through.
  EXPECT_TRUE(WriteSnapshot(path, new_snapshot).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dbwipes
