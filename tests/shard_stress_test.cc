// Shard concurrency stress: appends racing shard-parallel explains.
// The ShardSet's reader/writer lease is the whole locking story — an
// explain holds one read lease end to end, an append takes the writer
// side — so every explain must observe a single consistent world and
// every response must be well-formed, under the tsan preset too (the
// stress ctest label is what the tsan stage runs).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dbwipes/common/random.h"
#include "dbwipes/core/dbwipes.h"
#include "dbwipes/core/service.h"
#include "dbwipes/storage/shard.h"

namespace dbwipes {
namespace {

std::shared_ptr<Table> MakeTable(size_t rows) {
  Rng rng(17);
  auto t = std::make_shared<Table>(Schema{{"g", DataType::kInt64},
                                          {"tag", DataType::kString},
                                          {"v", DataType::kDouble}},
                                   "w");
  for (size_t r = 0; r < rows; ++r) {
    const int64_t g = static_cast<int64_t>(r % 4);
    const bool bad = g >= 2 && rng.Bernoulli(0.2);
    DBW_CHECK_OK(t->AppendRow({Value(g), Value(bad ? "bad" : "fine"),
                               Value(bad ? rng.Normal(100, 2)
                                         : rng.Normal(10, 2))}));
  }
  return t;
}

TEST(ShardStressTest, ConcurrentAppendsAndExplains) {
  auto table = MakeTable(240);
  auto db = std::make_shared<Database>();
  db->RegisterTable(table);
  auto set = *ShardSet::Create(*table, 4);
  db->RegisterShardSet("w", set);
  DBWipes engine(db);

  // One result up front: its lineage stays valid as the table only
  // grows, so explains and appends can overlap freely.
  QueryResult result = *engine.Query("SELECT g, avg(v) AS a FROM w GROUP BY g");
  ExplanationRequest request;
  request.selected_groups = {2, 3};
  request.metric = TooHigh(15.0);

  std::atomic<bool> done{false};
  std::atomic<size_t> appended{0}, explained{0};

  std::thread appender([&] {
    Rng rng(99);
    for (int i = 0; i < 120; ++i) {
      const int64_t g = static_cast<int64_t>(i % 4);
      ASSERT_TRUE(set->Append({Value(g), Value("fine"),
                               Value(rng.Normal(10, 2))})
                      .ok());
      appended.fetch_add(1);
      std::this_thread::yield();
    }
    done.store(true);
  });

  std::vector<std::thread> explainers;
  for (int t = 0; t < 2; ++t) {
    explainers.emplace_back([&] {
      while (!done.load()) {
        auto exp = engine.Explain(result, request);
        ASSERT_TRUE(exp.ok()) << exp.status().ToString();
        ASSERT_FALSE(exp->predicates.empty());
        explained.fetch_add(1);
      }
    });
  }

  appender.join();
  for (std::thread& t : explainers) t.join();
  EXPECT_EQ(appended.load(), 120u);
  EXPECT_GT(explained.load(), 0u);

  // The world is quiet again: a final explain still nails the anomaly,
  // and at most the tail shard went cold from the appends.
  Explanation final_exp = *engine.Explain(result, request);
  ASSERT_FALSE(final_exp.predicates.empty());
  EXPECT_NE(final_exp.predicates[0].predicate.ToString().find("tag = 'bad'"),
            std::string::npos)
      << final_exp.predicates[0].predicate.ToString();
  Explanation warm = *engine.Explain(result, request);
  ASSERT_EQ(warm.profile.shards.size(), 4u);
  for (const ExplainProfile::ShardLane& lane : warm.profile.shards) {
    EXPECT_EQ(lane.cache_misses, 0u) << "lane " << lane.shard_index;
  }
}

TEST(ShardStressTest, ServiceAppendStatsAndDebugConcurrently) {
  auto db = std::make_shared<Database>();
  db->RegisterTable(MakeTable(240));
  Service service(db);
  ASSERT_NE(service.Execute("shards w 4").find("\"ok\": true"),
            std::string::npos);
  for (const char* cmd : {"sql SELECT g, avg(v) AS a FROM w GROUP BY g",
                          "select_groups 2 3", "metric too_high 15"}) {
    ASSERT_NE(service.Execute(cmd).find("\"ok\": true"), std::string::npos)
        << cmd;
  }

  std::atomic<bool> done{false};
  std::thread appender([&] {
    for (int i = 0; i < 80; ++i) {
      const std::string out =
          service.Execute("append w " + std::to_string(i % 4) + " fine 10.5");
      ASSERT_NE(out.find("\"ok\": true"), std::string::npos) << out;
      std::this_thread::yield();
    }
    done.store(true);
  });
  std::thread stats_poller([&] {
    while (!done.load()) {
      const std::string out = service.Execute("stats");
      ASSERT_NE(out.find("\"ok\": true"), std::string::npos) << out;
      ASSERT_NE(out.find("\"w\": {\"count\": 4"), std::string::npos) << out;
      std::this_thread::yield();
    }
  });
  std::thread debugger([&] {
    while (!done.load()) {
      const std::string out = service.Execute("debug");
      ASSERT_NE(out.find("\"ok\": true"), std::string::npos) << out;
    }
  });

  appender.join();
  stats_poller.join();
  debugger.join();

  // All 80 appends landed in the tail shard.
  const std::string stats = service.Execute("stats");
  EXPECT_NE(stats.find("\"appends\": 80"), std::string::npos) << stats;
}

}  // namespace
}  // namespace dbwipes
