#include <gtest/gtest.h>

#include <cmath>

#include "dbwipes/common/random.h"
#include "dbwipes/common/stats.h"
#include "dbwipes/expr/parser.h"
#include "dbwipes/query/aggregate.h"
#include "dbwipes/query/database.h"

namespace dbwipes {
namespace {

// ---------- aggregators ----------

TEST(AggregatorTest, CountSumAvg) {
  auto count = MakeAggregator(AggKind::kCount);
  auto sum = MakeAggregator(AggKind::kSum);
  auto avg = MakeAggregator(AggKind::kAvg);
  for (double v : {1.0, 2.0, 3.0}) {
    count->Add(v);
    sum->Add(v);
    avg->Add(v);
  }
  EXPECT_DOUBLE_EQ(count->Value(), 3.0);
  EXPECT_DOUBLE_EQ(sum->Value(), 6.0);
  EXPECT_DOUBLE_EQ(avg->Value(), 2.0);
  sum->Remove(2.0);
  avg->Remove(3.0);
  EXPECT_DOUBLE_EQ(sum->Value(), 4.0);
  EXPECT_DOUBLE_EQ(avg->Value(), 1.5);
}

TEST(AggregatorTest, MinMaxWithRemoval) {
  auto mn = MakeAggregator(AggKind::kMin);
  auto mx = MakeAggregator(AggKind::kMax);
  for (double v : {5.0, 1.0, 9.0, 1.0}) {
    mn->Add(v);
    mx->Add(v);
  }
  EXPECT_DOUBLE_EQ(mn->Value(), 1.0);
  EXPECT_DOUBLE_EQ(mx->Value(), 9.0);
  // Removing one duplicate of the min keeps the other.
  mn->Remove(1.0);
  EXPECT_DOUBLE_EQ(mn->Value(), 1.0);
  mn->Remove(1.0);
  EXPECT_DOUBLE_EQ(mn->Value(), 5.0);
  mx->Remove(9.0);
  EXPECT_DOUBLE_EQ(mx->Value(), 5.0);
}

TEST(AggregatorTest, StddevMatchesPostgresSampleSemantics) {
  auto sd = MakeAggregator(AggKind::kStddev);
  sd->Add(2.0);
  EXPECT_TRUE(std::isnan(sd->Value()));  // stddev of one value is NULL
  sd->Add(4.0);
  sd->Add(6.0);
  EXPECT_NEAR(sd->Value(), 2.0, 1e-12);  // sample stddev of {2,4,6}
  auto var = MakeAggregator(AggKind::kVar);
  for (double v : {2.0, 4.0, 6.0}) var->Add(v);
  EXPECT_NEAR(var->Value(), 4.0, 1e-12);
}

TEST(AggregatorTest, EmptyStateConventions) {
  EXPECT_DOUBLE_EQ(MakeAggregator(AggKind::kCount)->Value(), 0.0);
  EXPECT_DOUBLE_EQ(MakeAggregator(AggKind::kSum)->Value(), 0.0);
  EXPECT_TRUE(std::isnan(MakeAggregator(AggKind::kAvg)->Value()));
  EXPECT_TRUE(std::isnan(MakeAggregator(AggKind::kMin)->Value()));
  EXPECT_TRUE(std::isnan(MakeAggregator(AggKind::kMax)->Value()));
}

TEST(AggregatorTest, CloneIsIndependent) {
  auto a = MakeAggregator(AggKind::kSum);
  a->Add(1.0);
  auto b = a->Clone();
  b->Add(2.0);
  EXPECT_DOUBLE_EQ(a->Value(), 1.0);
  EXPECT_DOUBLE_EQ(b->Value(), 3.0);
}

class AggregatorRemoveProperty
    : public ::testing::TestWithParam<std::tuple<AggKind, uint64_t>> {};

TEST_P(AggregatorRemoveProperty, AddRemoveMatchesRecompute) {
  const auto [kind, seed] = GetParam();
  Rng rng(seed);
  std::vector<double> values;
  auto agg = MakeAggregator(kind);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.Normal(0, 10);
    values.push_back(v);
    agg->Add(v);
  }
  // Remove a random half.
  rng.Shuffle(&values);
  for (int i = 0; i < 50; ++i) {
    agg->Remove(values.back());
    values.pop_back();
  }
  auto fresh = MakeAggregator(kind);
  for (double v : values) fresh->Add(v);
  EXPECT_EQ(agg->Count(), fresh->Count());
  if (std::isnan(fresh->Value())) {
    EXPECT_TRUE(std::isnan(agg->Value()));
  } else {
    EXPECT_NEAR(agg->Value(), fresh->Value(), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSeeds, AggregatorRemoveProperty,
    ::testing::Combine(::testing::Values(AggKind::kCount, AggKind::kSum,
                                         AggKind::kAvg, AggKind::kMin,
                                         AggKind::kMax, AggKind::kStddev,
                                         AggKind::kVar, AggKind::kMedian),
                       ::testing::Values(1u, 2u, 3u)));

TEST(AggregatorTest, MedianSemantics) {
  auto med = MakeAggregator(AggKind::kMedian);
  EXPECT_TRUE(std::isnan(med->Value()));
  med->Add(5.0);
  EXPECT_DOUBLE_EQ(med->Value(), 5.0);
  med->Add(1.0);
  EXPECT_DOUBLE_EQ(med->Value(), 3.0);  // even count -> midpoint
  med->Add(9.0);
  EXPECT_DOUBLE_EQ(med->Value(), 5.0);
  med->Add(5.0);  // duplicate
  EXPECT_DOUBLE_EQ(med->Value(), 5.0);
  med->Remove(1.0);
  EXPECT_DOUBLE_EQ(med->Value(), 5.0);
  med->Remove(5.0);
  EXPECT_DOUBLE_EQ(med->Value(), 7.0);  // {5, 9}
}

TEST(AggregatorTest, MedianInQuery) {
  Table t(Schema{{"g", DataType::kInt64}, {"v", DataType::kDouble}});
  for (double v : {1.0, 2.0, 100.0}) {
    DBW_CHECK_OK(t.AppendRow({Value(int64_t{0}), Value(v)}));
  }
  QueryResult r = *ExecuteQuery(
      *ParseQuery("SELECT g, median(v) AS m, avg(v) AS a FROM t GROUP BY g"),
      t);
  EXPECT_DOUBLE_EQ(r.AggValue(0, 0), 2.0);   // median robust to outlier
  EXPECT_NEAR(r.AggValue(0, 1), 34.33, 0.01);
}

// ---------- executor ----------

std::shared_ptr<Table> MakeSales() {
  auto t = std::make_shared<Table>(
      Schema{{"region", DataType::kString},
             {"product", DataType::kString},
             {"units", DataType::kInt64},
             {"price", DataType::kDouble}},
      "sales");
  auto add = [&](const char* r, const char* p, int64_t u, double pr) {
    DBW_CHECK_OK(t->AppendRow({Value(r), Value(p), Value(u), Value(pr)}));
  };
  add("east", "pen", 10, 1.5);
  add("east", "pad", 5, 3.0);
  add("west", "pen", 20, 1.5);
  add("west", "pad", 1, 3.5);
  add("west", "pen", 2, 2.0);
  return t;
}

TEST(ExecutorTest, GroupByAvgWithLineage) {
  auto t = MakeSales();
  AggregateQuery q = *ParseQuery(
      "SELECT region, avg(units) AS u FROM sales GROUP BY region");
  QueryResult r = *ExecuteQuery(q, *t);
  ASSERT_EQ(r.num_groups(), 2u);
  // Groups sorted by key: east, west.
  EXPECT_EQ(r.GroupKey(0)[0], Value("east"));
  EXPECT_DOUBLE_EQ(r.AggValue(0, 0), 7.5);
  EXPECT_NEAR(r.AggValue(1, 0), 23.0 / 3.0, 1e-12);
  EXPECT_EQ(r.lineage[0], (std::vector<RowId>{0, 1}));
  EXPECT_EQ(r.lineage[1], (std::vector<RowId>{2, 3, 4}));
}

TEST(ExecutorTest, WhereFilterAffectsLineage) {
  auto t = MakeSales();
  AggregateQuery q = *ParseQuery(
      "SELECT region, sum(units) AS u FROM sales WHERE product = 'pen' "
      "GROUP BY region");
  QueryResult r = *ExecuteQuery(q, *t);
  ASSERT_EQ(r.num_groups(), 2u);
  EXPECT_DOUBLE_EQ(r.AggValue(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(r.AggValue(1, 0), 22.0);
  EXPECT_EQ(r.lineage[1], (std::vector<RowId>{2, 4}));
}

TEST(ExecutorTest, MultipleAggregatesAndCountStar) {
  auto t = MakeSales();
  AggregateQuery q = *ParseQuery(
      "SELECT region, count(*) AS n, min(price) AS lo, max(price) AS hi "
      "FROM sales GROUP BY region");
  QueryResult r = *ExecuteQuery(q, *t);
  EXPECT_EQ(r.rows->GetValue(0, 1), Value(int64_t{2}));
  EXPECT_EQ(r.rows->GetValue(1, 1), Value(int64_t{3}));
  EXPECT_DOUBLE_EQ(r.AggValue(1, 1), 1.5);
  EXPECT_DOUBLE_EQ(r.AggValue(1, 2), 3.5);
}

TEST(ExecutorTest, MultiAttributeGroupBy) {
  auto t = MakeSales();
  AggregateQuery q = *ParseQuery(
      "SELECT region, product, sum(units) AS u FROM sales "
      "GROUP BY region, product");
  QueryResult r = *ExecuteQuery(q, *t);
  ASSERT_EQ(r.num_groups(), 4u);
  // Sorted by (region, product): east/pad, east/pen, west/pad, west/pen.
  EXPECT_EQ(r.GroupKey(0), (std::vector<Value>{Value("east"), Value("pad")}));
  EXPECT_DOUBLE_EQ(r.AggValue(0, 0), 5.0);
  EXPECT_EQ(r.GroupKey(3), (std::vector<Value>{Value("west"), Value("pen")}));
  EXPECT_DOUBLE_EQ(r.AggValue(3, 0), 22.0);
  EXPECT_EQ(r.lineage[3], (std::vector<RowId>{2, 4}));
}

TEST(ExecutorTest, NoGroupByProducesOneGroup) {
  auto t = MakeSales();
  AggregateQuery q = *ParseQuery("SELECT sum(units) AS total FROM sales");
  QueryResult r = *ExecuteQuery(q, *t);
  ASSERT_EQ(r.num_groups(), 1u);
  EXPECT_DOUBLE_EQ(r.AggValue(0, 0), 38.0);
  EXPECT_EQ(r.lineage[0].size(), 5u);
}

TEST(ExecutorTest, NullsSkippedByAggregatesButTracedInLineage) {
  Table t(Schema{{"g", DataType::kInt64}, {"v", DataType::kDouble}});
  DBW_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value(10.0)}));
  DBW_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value::Null()}));
  DBW_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value(20.0)}));
  AggregateQuery q = *ParseQuery(
      "SELECT g, avg(v) AS a, count(*) AS n FROM t GROUP BY g");
  QueryResult r = *ExecuteQuery(q, t);
  EXPECT_DOUBLE_EQ(r.AggValue(0, 0), 15.0);  // NULL skipped
  EXPECT_EQ(r.rows->GetValue(0, 2), Value(int64_t{3}));  // count(*) counts it
  EXPECT_EQ(r.lineage[0].size(), 3u);
}

TEST(ExecutorTest, AllNullGroupYieldsNullAggregate) {
  Table t(Schema{{"g", DataType::kInt64}, {"v", DataType::kDouble}});
  DBW_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value::Null()}));
  AggregateQuery q = *ParseQuery("SELECT g, avg(v) AS a FROM t GROUP BY g");
  QueryResult r = *ExecuteQuery(q, t);
  EXPECT_TRUE(r.rows->GetValue(0, 1).is_null());
  EXPECT_TRUE(std::isnan(r.AggValue(0, 0)));
}

TEST(ExecutorTest, NullGroupKeyFormsItsOwnGroup) {
  Table t(Schema{{"g", DataType::kString}, {"v", DataType::kDouble}});
  DBW_CHECK_OK(t.AppendRow({Value("a"), Value(1.0)}));
  DBW_CHECK_OK(t.AppendRow({Value::Null(), Value(2.0)}));
  DBW_CHECK_OK(t.AppendRow({Value::Null(), Value(4.0)}));
  AggregateQuery q = *ParseQuery("SELECT g, sum(v) AS s FROM t GROUP BY g");
  QueryResult r = *ExecuteQuery(q, t);
  ASSERT_EQ(r.num_groups(), 2u);
  // NULL sorts first.
  EXPECT_TRUE(r.rows->GetValue(0, 0).is_null());
  EXPECT_DOUBLE_EQ(r.AggValue(0, 0), 6.0);
}

TEST(ExecutorTest, ValidationErrors) {
  auto t = MakeSales();
  EXPECT_TRUE(ExecuteQuery(*ParseQuery("SELECT avg(zzz) FROM sales"), *t)
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(
      ExecuteQuery(*ParseQuery("SELECT avg(units) FROM sales GROUP BY zzz"),
                   *t)
          .status()
          .IsNotFound());
  // Arithmetic over a string column.
  EXPECT_TRUE(
      ExecuteQuery(*ParseQuery("SELECT avg(product + 1) FROM sales"), *t)
          .status()
          .IsTypeError());
}

TEST(ExecutorTest, LineageCaptureCanBeDisabled) {
  auto t = MakeSales();
  ExecOptions opts;
  opts.capture_lineage = false;
  QueryResult r = *ExecuteQuery(
      *ParseQuery("SELECT region, sum(units) FROM sales GROUP BY region"),
      *t, opts);
  for (const auto& lin : r.lineage) EXPECT_TRUE(lin.empty());
}

TEST(ExecutorTest, DeterministicGroupOrder) {
  Rng rng(77);
  Table t(Schema{{"g", DataType::kInt64}, {"v", DataType::kDouble}});
  for (int i = 0; i < 500; ++i) {
    DBW_CHECK_OK(t.AppendRow(
        {Value(static_cast<int64_t>(rng.UniformInt(20u))), Value(1.0)}));
  }
  AggregateQuery q = *ParseQuery("SELECT g, sum(v) AS s FROM t GROUP BY g");
  QueryResult r = *ExecuteQuery(q, t);
  for (size_t g = 1; g < r.num_groups(); ++g) {
    EXPECT_TRUE(r.GroupKey(g - 1)[0] < r.GroupKey(g)[0]);
  }
}

// Oracle check: group-by results match a hand-rolled reference.
class ExecutorOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorOracleTest, AvgMatchesReference) {
  Rng rng(GetParam());
  Table t(Schema{{"g", DataType::kInt64}, {"v", DataType::kDouble}});
  std::map<int64_t, std::vector<double>> reference;
  for (int i = 0; i < 1000; ++i) {
    const int64_t g = static_cast<int64_t>(rng.UniformInt(13u));
    const double v = rng.Normal(0, 100);
    reference[g].push_back(v);
    DBW_CHECK_OK(t.AppendRow({Value(g), Value(v)}));
  }
  QueryResult r = *ExecuteQuery(
      *ParseQuery("SELECT g, avg(v) AS a, stddev(v) AS sd FROM t GROUP BY g"),
      t);
  ASSERT_EQ(r.num_groups(), reference.size());
  size_t idx = 0;
  for (const auto& [g, values] : reference) {
    EXPECT_EQ(r.GroupKey(idx)[0], Value(g));
    EXPECT_NEAR(r.AggValue(idx, 0), Mean(values), 1e-9);
    OnlineStats stats;
    for (double v : values) stats.Add(v);
    EXPECT_NEAR(r.AggValue(idx, 1), stats.sample_stddev(), 1e-9);
    ++idx;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorOracleTest,
                         ::testing::Values(11, 22, 33, 44));

// ---------- database ----------

TEST(DatabaseTest, RegisterAndQuery) {
  Database db;
  db.RegisterTable(MakeSales());
  EXPECT_EQ(db.TableNames(), (std::vector<std::string>{"sales"}));
  QueryResult r = *db.ExecuteSql(
      "SELECT region, sum(units) AS u FROM sales GROUP BY region");
  EXPECT_EQ(r.num_groups(), 2u);
  EXPECT_TRUE(db.ExecuteSql("SELECT sum(x) FROM missing").status()
                  .IsNotFound());
  EXPECT_TRUE(db.GetTable("missing").status().IsNotFound());
}

TEST(DatabaseTest, RegisterUnderExplicitName) {
  Database db;
  db.RegisterTable("alias", MakeSales());
  EXPECT_TRUE(db.GetTable("alias").ok());
  EXPECT_TRUE(db.ExecuteSql("SELECT sum(units) FROM alias").ok());
}

// ---------- Remove exactness / stability (the delta-scoring
// primitive) ----------

// Long interleaved Add/Remove sequences must stay close to a
// from-scratch recomputation over the surviving multiset. This is the
// contract RemovalScorer and CleanSnapshot rely on: min/max/median and
// count are exact; sum/avg/stddev/var accumulate only benign
// floating-point error.
class AggregatorInterleaveProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AggregatorInterleaveProperty, InterleavedAddRemoveMatchesRecompute) {
  Rng rng(GetParam());
  const std::vector<AggKind> kinds = {
      AggKind::kCount, AggKind::kSum,    AggKind::kAvg,    AggKind::kMin,
      AggKind::kMax,   AggKind::kStddev, AggKind::kVar,    AggKind::kMedian};
  for (AggKind kind : kinds) {
    AggregatorPtr agg = MakeAggregator(kind);
    std::vector<double> live;  // the multiset currently folded in

    auto recompute = [&]() {
      AggregatorPtr fresh = MakeAggregator(kind);
      for (double v : live) fresh->Add(v);
      return fresh->Value();
    };

    for (int step = 0; step < 3000; ++step) {
      // Grow on average, shrink regularly, and occasionally drain to
      // (near) empty so every count regime is visited.
      const bool remove = !live.empty() &&
                          (rng.Bernoulli(0.45) ||
                           (step % 500 == 499 && rng.Bernoulli(0.9)));
      if (remove) {
        const size_t idx = rng.UniformInt(static_cast<uint32_t>(live.size()));
        agg->Remove(live[idx]);
        live.erase(live.begin() + static_cast<ptrdiff_t>(idx));
      } else {
        // Mixed magnitudes stress cancellation in the running moments.
        // (Kept within ~3 decades of the bulk: Welford *removal* of a
        // transient 1e6-scale outlier is inherently ill-conditioned —
        // the residual moment is the difference of two huge numbers —
        // so larger spreads test the floating point format, not us.)
        const double v = rng.Bernoulli(0.1) ? rng.Normal(0.0, 1e3)
                                            : rng.Normal(10.0, 5.0);
        agg->Add(v);
        live.push_back(v);
      }
      if (step % 97 != 0) continue;  // spot-check; full check is O(n^2)

      ASSERT_EQ(agg->Count(), live.size());
      const double got = agg->Value();
      const double want = recompute();
      if (std::isnan(want)) {
        ASSERT_TRUE(std::isnan(got))
            << "kind " << static_cast<int>(kind) << " step " << step;
        continue;
      }
      // Tolerance scales with the magnitude of what was ever added;
      // exact kinds (count/min/max/median) pass with any tolerance.
      const double scale = std::max(1.0, std::abs(want));
      ASSERT_NEAR(got, want, 1e-6 * scale)
          << "kind " << static_cast<int>(kind) << " step " << step
          << " count " << live.size();
    }

    // Drain completely: the empty state must be recovered exactly.
    for (double v : live) agg->Remove(v);
    ASSERT_EQ(agg->Count(), 0u);
    AggregatorPtr empty = MakeAggregator(kind);
    const double drained = agg->Value();
    const double fresh_empty = empty->Value();
    if (std::isnan(fresh_empty)) {
      EXPECT_TRUE(std::isnan(drained)) << static_cast<int>(kind);
    } else {
      EXPECT_NEAR(drained, fresh_empty, 1e-6) << static_cast<int>(kind);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregatorInterleaveProperty,
                         ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace dbwipes
