#include <gtest/gtest.h>

#include "dbwipes/storage/column.h"
#include "dbwipes/storage/schema.h"
#include "dbwipes/storage/table.h"
#include "dbwipes/storage/value.h"

namespace dbwipes {
namespace {

// ---------- Value ----------

TEST(ValueTest, NullAndTypes) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value(int64_t{3}).is_int64());
  EXPECT_TRUE(Value(3.5).is_double());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_TRUE(Value(int64_t{3}).is_numeric());
  EXPECT_FALSE(Value("x").is_numeric());
}

TEST(ValueTest, NumericEqualityAcrossTypes) {
  EXPECT_EQ(Value(int64_t{2}), Value(2.0));
  EXPECT_FALSE(Value(int64_t{2}) == Value(2.5));
  EXPECT_EQ(Value(int64_t{2}).Hash(), Value(2.0).Hash());
}

TEST(ValueTest, Ordering) {
  EXPECT_TRUE(Value::Null() < Value(int64_t{0}));
  EXPECT_TRUE(Value(int64_t{1}) < Value(2.5));
  EXPECT_TRUE(Value(2.5) < Value("a"));  // numerics < strings
  EXPECT_TRUE(Value("a") < Value("b"));
  EXPECT_FALSE(Value::Null() < Value::Null());
}

TEST(ValueTest, AsDouble) {
  EXPECT_DOUBLE_EQ(*Value(int64_t{4}).AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(*Value(4.5).AsDouble(), 4.5);
  EXPECT_FALSE(Value("x").AsDouble().ok());
  EXPECT_FALSE(Value::Null().AsDouble().ok());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value(7.5).ToString(), "7.5");
  EXPECT_EQ(Value("hi").ToString(), "'hi'");
}

// ---------- Schema ----------

TEST(SchemaTest, LookupByName) {
  Schema s{{"a", DataType::kInt64}, {"b", DataType::kString}};
  EXPECT_EQ(s.num_fields(), 2u);
  EXPECT_EQ(*s.GetIndex("b"), 1u);
  EXPECT_TRUE(s.Contains("a"));
  EXPECT_FALSE(s.Contains("c"));
  EXPECT_TRUE(s.GetIndex("c").status().IsNotFound());
}

TEST(SchemaTest, ToStringFormat) {
  Schema s{{"a", DataType::kInt64}, {"b", DataType::kDouble}};
  EXPECT_EQ(s.ToString(), "a:int64, b:double");
}

// ---------- Column ----------

TEST(ColumnTest, Int64AppendAndRead) {
  Column c(DataType::kInt64);
  c.AppendInt64(5);
  c.AppendNull();
  c.AppendInt64(-3);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.null_count(), 1u);
  EXPECT_EQ(c.GetInt64(0), 5);
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_DOUBLE_EQ(c.AsDouble(2), -3.0);
  EXPECT_TRUE(c.GetValue(1).is_null());
}

TEST(ColumnTest, StringDictionaryEncoding) {
  Column c(DataType::kString);
  c.AppendString("red");
  c.AppendString("blue");
  c.AppendString("red");
  EXPECT_EQ(c.dictionary_size(), 2u);
  EXPECT_EQ(c.StringCode(0), c.StringCode(2));
  EXPECT_NE(c.StringCode(0), c.StringCode(1));
  EXPECT_EQ(c.DictionaryValue(c.StringCode(1)), "blue");
  EXPECT_EQ(c.FindCode("red"), c.StringCode(0));
  EXPECT_EQ(c.FindCode("green"), -1);
}

TEST(ColumnTest, AppendValueTypeChecks) {
  Column c(DataType::kInt64);
  EXPECT_TRUE(c.AppendValue(Value(int64_t{1})).ok());
  EXPECT_TRUE(c.AppendValue(Value::Null()).ok());
  EXPECT_TRUE(c.AppendValue(Value(1.5)).IsTypeError());
  EXPECT_TRUE(c.AppendValue(Value("x")).IsTypeError());

  Column d(DataType::kDouble);
  // int64 promotes into double columns.
  EXPECT_TRUE(d.AppendValue(Value(int64_t{2})).ok());
  EXPECT_DOUBLE_EQ(d.GetDouble(0), 2.0);
}

TEST(ColumnTest, MinMaxNumeric) {
  Column c(DataType::kDouble);
  c.AppendDouble(3.0);
  c.AppendNull();
  c.AppendDouble(-1.0);
  c.AppendDouble(9.0);
  EXPECT_DOUBLE_EQ(*c.MinNumeric(), -1.0);
  EXPECT_DOUBLE_EQ(*c.MaxNumeric(), 9.0);

  Column empty(DataType::kInt64);
  EXPECT_TRUE(empty.MinNumeric().status().IsNotFound());
  Column str(DataType::kString);
  EXPECT_TRUE(str.MaxNumeric().status().IsTypeError());
}

// ---------- Table ----------

Table MakeTable() {
  Table t(Schema{{"id", DataType::kInt64},
                 {"name", DataType::kString},
                 {"score", DataType::kDouble}},
          "people");
  DBW_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value("ann"), Value(9.5)}));
  DBW_CHECK_OK(t.AppendRow({Value(int64_t{2}), Value("bob"), Value(7.0)}));
  DBW_CHECK_OK(t.AppendRow({Value(int64_t{3}), Value::Null(), Value(5.5)}));
  return t;
}

TEST(TableTest, AppendAndRead) {
  Table t = MakeTable();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.GetValue(0, 1), Value("ann"));
  EXPECT_TRUE(t.GetValue(2, 1).is_null());
  auto row = t.GetRow(1);
  EXPECT_EQ(row[0], Value(int64_t{2}));
  EXPECT_EQ(row[2], Value(7.0));
}

TEST(TableTest, AppendRowValidation) {
  Table t = MakeTable();
  // Wrong arity.
  EXPECT_FALSE(t.AppendRow({Value(int64_t{4})}).ok());
  // Wrong type in the last column: nothing must be appended.
  EXPECT_TRUE(
      t.AppendRow({Value(int64_t{4}), Value("zed"), Value("oops")})
          .IsTypeError());
  EXPECT_EQ(t.num_rows(), 3u);
  for (size_t c = 0; c < t.num_columns(); ++c) {
    EXPECT_EQ(t.column(c).size(), 3u) << "column " << c << " corrupted";
  }
}

TEST(TableTest, SelectRowsInOrder) {
  Table t = MakeTable();
  Table s = t.Select({2, 0});
  EXPECT_EQ(s.num_rows(), 2u);
  EXPECT_EQ(s.GetValue(0, 0), Value(int64_t{3}));
  EXPECT_EQ(s.GetValue(1, 1), Value("ann"));
}

TEST(TableTest, FilterByMask) {
  Table t = MakeTable();
  Table f = t.Filter({true, false, true});
  EXPECT_EQ(f.num_rows(), 2u);
  EXPECT_EQ(f.GetValue(1, 0), Value(int64_t{3}));
}

TEST(TableTest, GetColumnByName) {
  Table t = MakeTable();
  EXPECT_TRUE(t.GetColumn("score").ok());
  EXPECT_TRUE(t.GetColumn("nope").status().IsNotFound());
}

TEST(TableTest, ToStringTruncates) {
  Table t = MakeTable();
  const std::string s = t.ToString(2);
  EXPECT_NE(s.find("ann"), std::string::npos);
  EXPECT_NE(s.find("1 more rows"), std::string::npos);
  EXPECT_EQ(s.find("5.5"), std::string::npos);
}

}  // namespace
}  // namespace dbwipes
