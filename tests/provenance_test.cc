#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "dbwipes/common/random.h"
#include "dbwipes/expr/parser.h"
#include "dbwipes/provenance/influence.h"
#include "dbwipes/provenance/lineage.h"

namespace dbwipes {
namespace {

std::shared_ptr<Table> MakeReadings() {
  auto t = std::make_shared<Table>(
      Schema{{"sensor", DataType::kInt64}, {"temp", DataType::kDouble}},
      "r");
  auto add = [&](int64_t s, double v) {
    DBW_CHECK_OK(t->AppendRow({Value(s), Value(v)}));
  };
  add(1, 20.0);
  add(1, 22.0);
  add(2, 21.0);
  add(2, 120.0);  // the anomaly
  add(2, 19.0);
  add(3, 18.0);
  return t;
}

QueryResult RunAvg(const Table& t) {
  return *ExecuteQuery(
      *ParseQuery("SELECT sensor, avg(temp) AS t FROM r GROUP BY sensor"), t);
}

// ---------- lineage ----------

TEST(LineageTest, BackwardAndForward) {
  auto t = MakeReadings();
  QueryResult r = RunAvg(*t);
  LineageStore store(r, t->num_rows());
  EXPECT_EQ(store.num_groups(), 3u);
  EXPECT_EQ(store.Backward(1), (std::vector<RowId>{2, 3, 4}));
  EXPECT_EQ(*store.Forward(3), 1u);
  EXPECT_EQ(*store.Forward(0), 0u);
  EXPECT_EQ(store.num_traced_rows(), 6u);
}

TEST(LineageTest, FilteredRowsHaveNoForwardTrace) {
  auto t = MakeReadings();
  QueryResult r = *ExecuteQuery(
      *ParseQuery(
          "SELECT sensor, avg(temp) AS t FROM r WHERE temp < 100 GROUP BY "
          "sensor"),
      *t);
  LineageStore store(r, t->num_rows());
  EXPECT_FALSE(store.Forward(3).has_value());  // the 120-degree row
  EXPECT_TRUE(store.Forward(2).has_value());
}

TEST(LineageTest, BackwardUnionDeduplicates) {
  auto t = MakeReadings();
  QueryResult r = RunAvg(*t);
  LineageStore store(r, t->num_rows());
  auto rows = store.BackwardUnion({0, 1, 1});
  EXPECT_EQ(rows, (std::vector<RowId>{0, 1, 2, 3, 4}));
}

TEST(OperatorGraphTest, PlanDescribesPipeline) {
  AggregateQuery q = *ParseQuery(
      "SELECT sensor, avg(temp) FROM r WHERE temp > 0 GROUP BY sensor");
  OperatorGraph g = DescribeQueryPlan(q);
  ASSERT_EQ(g.nodes.size(), 5u);
  EXPECT_EQ(g.nodes[0].name, "Scan");
  EXPECT_EQ(g.nodes[1].name, "Filter");
  EXPECT_EQ(g.nodes[2].name, "GroupBy");
  EXPECT_EQ(g.nodes[3].name, "Aggregate");
  const std::string s = g.ToString();
  EXPECT_NE(s.find("Scan"), std::string::npos);
  EXPECT_NE(s.find("keys: sensor"), std::string::npos);
}

TEST(OperatorGraphTest, PlanOmitsAbsentStages) {
  AggregateQuery q = *ParseQuery("SELECT avg(temp) FROM r");
  OperatorGraph g = DescribeQueryPlan(q);
  ASSERT_EQ(g.nodes.size(), 3u);  // Scan, Aggregate, Result
}

// ---------- influence ----------

ErrorFn TooHighFn(double c) {
  return [c](const std::vector<double>& values) {
    double worst = 0.0;
    for (double v : values) {
      if (!std::isnan(v)) worst = std::max(worst, v - c);
    }
    return worst;
  };
}

TEST(InfluenceTest, AnomalousTupleRanksFirst) {
  auto t = MakeReadings();
  QueryResult r = RunAvg(*t);
  // Group 1 (sensor 2) has avg (21+120+19)/3 = 53.3.
  auto inf = *LeaveOneOutInfluence(*t, r, {1}, TooHighFn(25.0));
  ASSERT_EQ(inf.size(), 3u);
  EXPECT_EQ(inf[0].row, 3u);  // the 120-degree reading
  EXPECT_GT(inf[0].influence, 0.0);
  // Removing an ordinary reading makes things worse (negative).
  EXPECT_LT(inf.back().influence, 0.0);
}

TEST(InfluenceTest, SelectionErrorMatchesMetric) {
  auto t = MakeReadings();
  QueryResult r = RunAvg(*t);
  const double err = *SelectionError(r, {1}, TooHighFn(25.0));
  EXPECT_NEAR(err, (21.0 + 120.0 + 19.0) / 3.0 - 25.0, 1e-9);
}

TEST(InfluenceTest, ErrorsOnBadArguments) {
  auto t = MakeReadings();
  QueryResult r = RunAvg(*t);
  EXPECT_TRUE(LeaveOneOutInfluence(*t, r, {}, TooHighFn(0)).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(LeaveOneOutInfluence(*t, r, {99}, TooHighFn(0)).status()
                  .IsOutOfRange());
  InfluenceOptions opts;
  opts.agg_index = 7;
  EXPECT_TRUE(LeaveOneOutInfluence(*t, r, {0}, TooHighFn(0), opts).status()
                  .IsOutOfRange());
}

TEST(InfluenceTest, NullArgumentTuplesHaveZeroInfluence) {
  Table t(Schema{{"g", DataType::kInt64}, {"v", DataType::kDouble}}, "r");
  DBW_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value(50.0)}));
  DBW_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value::Null()}));
  QueryResult r = *ExecuteQuery(
      *ParseQuery("SELECT g, avg(v) AS a FROM r GROUP BY g"), t);
  auto inf = *LeaveOneOutInfluence(t, r, {0}, TooHighFn(0.0));
  for (const TupleInfluence& ti : inf) {
    if (ti.row == 1) {
      EXPECT_EQ(ti.influence, 0.0);
    }
  }
}

// The core property: incremental influence == brute-force recompute,
// across aggregate kinds, metrics, and random data.
class InfluenceEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t, bool>> {
};

TEST_P(InfluenceEquivalence, IncrementalMatchesBruteForce) {
  const auto& [agg, seed, per_group] = GetParam();
  Rng rng(seed);
  Table t(Schema{{"g", DataType::kInt64}, {"v", DataType::kDouble}}, "r");
  for (int i = 0; i < 300; ++i) {
    DBW_CHECK_OK(t.AppendRow(
        {Value(static_cast<int64_t>(rng.UniformInt(5u))),
         rng.Bernoulli(0.05) ? Value::Null() : Value(rng.Normal(10, 5))}));
  }
  QueryResult r = *ExecuteQuery(
      *ParseQuery("SELECT g, " + agg + "(v) AS a FROM r GROUP BY g"), t);
  std::vector<size_t> all;
  for (size_t g = 0; g < r.num_groups(); ++g) all.push_back(g);

  InfluenceOptions opts;
  opts.per_group = per_group;
  auto fast = *LeaveOneOutInfluence(t, r, all, TooHighFn(8.0), opts);
  auto slow = *LeaveOneOutInfluenceBruteForce(t, r, all, TooHighFn(8.0),
                                              opts);
  ASSERT_EQ(fast.size(), slow.size());
  // Compare by row id (both sorted by influence; match via lookup).
  std::map<RowId, double> slow_by_row;
  for (const auto& ti : slow) slow_by_row[ti.row] = ti.influence;
  for (const auto& ti : fast) {
    EXPECT_NEAR(ti.influence, slow_by_row[ti.row], 1e-6) << "row " << ti.row;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AggsSeedsModes, InfluenceEquivalence,
    ::testing::Combine(::testing::Values("avg", "sum", "min", "max", "stddev",
                                         "count"),
                       ::testing::Values(100u, 200u),
                       ::testing::Bool()));

TEST(InfluenceTest, GlobalModeZeroesNonArgmaxGroups) {
  // Two groups, one far above the threshold. Under the global max
  // metric, tuples of the lower group cannot change the max -> zero
  // influence; under per-group mode they can.
  Table t(Schema{{"g", DataType::kInt64}, {"v", DataType::kDouble}}, "r");
  for (int i = 0; i < 5; ++i) {
    DBW_CHECK_OK(t.AppendRow({Value(int64_t{0}), Value(100.0 + i)}));
    DBW_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value(30.0 + i)}));
  }
  QueryResult r = *ExecuteQuery(
      *ParseQuery("SELECT g, avg(v) AS a FROM r GROUP BY g"), t);

  InfluenceOptions global;
  global.per_group = false;
  auto inf = *LeaveOneOutInfluence(t, r, {0, 1}, TooHighFn(20.0), global);
  for (const auto& ti : inf) {
    if (ti.selected_group == 1) {
      EXPECT_EQ(ti.influence, 0.0);
    }
  }
  InfluenceOptions per_group;
  per_group.per_group = true;
  auto inf2 = *LeaveOneOutInfluence(t, r, {0, 1}, TooHighFn(20.0), per_group);
  bool group1_nonzero = false;
  for (const auto& ti : inf2) {
    if (ti.selected_group == 1 && ti.influence != 0.0) group1_nonzero = true;
  }
  EXPECT_TRUE(group1_nonzero);
}

}  // namespace
}  // namespace dbwipes
