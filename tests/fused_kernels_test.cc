// Property tests for the fused-conjunction engine: on randomized
// tables (nulls, NaN doubles, absent string literals) a fused one-pass
// program must agree bit-for-bit with the per-clause word-AND path
// (DBWIPES_FUSED=off) and the boxed oracle, across shard slicings
// S ∈ {1, 2, 3, 7} and at both SIMD tiers (DBWIPES_SIMD=off must be
// bit-identical to the dispatched tier). Fault-matrix cases cover the
// "match/fused" injection site, budget-exhaustion rollback, and
// interrupt during fused evaluation.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "dbwipes/common/exec_context.h"
#include "dbwipes/common/random.h"
#include "dbwipes/expr/fused_kernels.h"
#include "dbwipes/expr/match_kernels.h"
#include "dbwipes/expr/predicate.h"

namespace dbwipes {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// int64 (10% null), double (10% null, 10% NaN among non-nulls),
/// string from a small dictionary (10% null).
Table RandomTable(Rng* rng, size_t rows) {
  Table t(Schema{{"i", DataType::kInt64},
                 {"d", DataType::kDouble},
                 {"s", DataType::kString}},
          "t");
  const char* cats[] = {"red", "green", "blue", "red-ish"};
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> row(3);
    row[0] = rng->Bernoulli(0.1) ? Value::Null()
                                 : Value(rng->UniformInt(-5, 5));
    if (rng->Bernoulli(0.1)) {
      row[1] = Value::Null();
    } else {
      row[1] = Value(rng->Bernoulli(0.1) ? kNaN : rng->Normal(0, 2));
    }
    row[2] = rng->Bernoulli(0.1)
                 ? Value::Null()
                 : Value(std::string(cats[rng->UniformInt(4u)]));
    DBW_CHECK_OK(t.AppendRow(row));
  }
  return t;
}

/// Clause mix that exercises every fused body: int64/double compares
/// (including NaN-literal probes, where kLe/kGe/kNe accept NaN),
/// dictionary eq/ne with literals present in and absent from the
/// dictionary, IN over codes and numerics, and CONTAINS.
Clause RandomClause(Rng* rng) {
  static const CompareOp kBinaryOps[] = {CompareOp::kEq, CompareOp::kNe,
                                         CompareOp::kLt, CompareOp::kLe,
                                         CompareOp::kGt, CompareOp::kGe};
  switch (rng->UniformInt(8u)) {
    case 0:
      return Clause::Make("i", kBinaryOps[rng->UniformInt(6u)],
                          Value(rng->UniformInt(-5, 5)));
    case 1:  // double literal against the int64 column (widening path)
      return Clause::Make("i", kBinaryOps[rng->UniformInt(6u)],
                          Value(rng->UniformDouble(-5.5, 5.5)));
    case 2:
      return Clause::Make("d", kBinaryOps[rng->UniformInt(6u)],
                          Value(rng->Normal(0, 2)));
    case 3:  // NaN literal: kLe/kGe/kNe are NaN-tolerant by design
      return Clause::Make("d", kBinaryOps[rng->UniformInt(6u)], Value(kNaN));
    case 4:
      return Clause::Make("s", rng->Bernoulli(0.5) ? CompareOp::kEq
                                                   : CompareOp::kNe,
                          Value(rng->Bernoulli(0.7) ? "red" : "missing"));
    case 5:
      return Clause::In("s", {Value("green"), Value("blue"),
                              Value("missing")});
    case 6:
      return Clause::In("i", {Value(int64_t{0}), Value(2.0),
                              Value(int64_t{-3})});
    default:
      return Clause::Make("s", CompareOp::kContains,
                          Value(rng->Bernoulli(0.5) ? "red" : "ee"));
  }
}

std::vector<RowId> FullUniverse(const Table& t) {
  std::vector<RowId> rows;
  for (RowId r = 0; r < t.num_rows(); ++r) rows.push_back(r);
  return rows;
}

/// Engine with fused compilation disabled regardless of environment.
std::unique_ptr<MatchEngine> PlainEngine(const Table& t,
                                         std::vector<RowId> rows) {
  setenv("DBWIPES_FUSED", "off", 1);
  auto e = std::make_unique<MatchEngine>(t, std::move(rows));
  unsetenv("DBWIPES_FUSED");
  return e;
}

/// Engine forced to the portable scalar tier regardless of the CPU.
std::unique_ptr<MatchEngine> ScalarEngine(const Table& t,
                                          std::vector<RowId> rows) {
  setenv("DBWIPES_SIMD", "off", 1);
  auto e = std::make_unique<MatchEngine>(t, std::move(rows));
  unsetenv("DBWIPES_SIMD");
  return e;
}

class FusedEquivalence : public ::testing::TestWithParam<uint64_t> {};

// Random conjunctions, one at a time: fused == word-AND == boxed.
TEST_P(FusedEquivalence, AgreesWithWordAndAndBoxedPaths) {
  Rng rng(GetParam());
  Table t = RandomTable(&rng, 500);
  std::vector<RowId> rows = FullUniverse(t);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Clause> clauses;
    const size_t n = 2 + rng.UniformInt(3u);  // K in {2, 3, 4}
    for (size_t i = 0; i < n; ++i) clauses.push_back(RandomClause(&rng));
    Predicate pred(clauses);

    MatchEngine fused(t, rows);
    ASSERT_TRUE(fused.fused_enabled());
    DBW_CHECK_OK(fused.Materialize({&pred}));
    auto fb = fused.MatchPrepared(pred);
    ASSERT_TRUE(fb.ok()) << pred.ToString() << ": " << fb.status().ToString();

    auto plain = PlainEngine(t, rows);
    DBW_CHECK_OK(plain->Materialize({&pred}));
    auto wb = plain->MatchPrepared(pred);
    ASSERT_TRUE(wb.ok()) << pred.ToString();
    ASSERT_TRUE(*fb == *wb) << pred.ToString();

    BoundPredicate bound = *pred.Bind(t);
    ASSERT_TRUE(*fb == bound.MatchBitmap(rows)) << pred.ToString();
  }
}

// A batch sharing clauses across predicates: exercises the bitmap-ref
// lowering (shared clauses stay in the clause cache, unique clauses go
// inline) and verifies the counter law over a mixed workload.
TEST_P(FusedEquivalence, SharedClauseBatchesAgreeAndObeyCounterLaw) {
  Rng rng(GetParam() ^ 0x5EEDu);
  Table t = RandomTable(&rng, 700);
  std::vector<RowId> rows = FullUniverse(t);

  std::vector<Clause> pool;
  for (int i = 0; i < 10; ++i) pool.push_back(RandomClause(&rng));
  std::vector<Predicate> storage;
  for (int i = 0; i < 30; ++i) {
    std::vector<Clause> cs;
    const size_t n = 1 + rng.UniformInt(3u);  // K in {1, 2, 3}
    for (size_t j = 0; j < n; ++j) {
      cs.push_back(rng.Bernoulli(0.5) ? pool[rng.UniformInt(10u)]
                                      : RandomClause(&rng));
    }
    storage.push_back(Predicate(cs));
  }
  std::vector<const Predicate*> preds;
  size_t multi = 0;
  for (const Predicate& p : storage) {
    preds.push_back(&p);
    if (p.num_clauses() >= 2) ++multi;
  }

  MatchEngine fused(t, rows);
  auto plain = PlainEngine(t, rows);
  DBW_CHECK_OK(fused.Materialize(preds));
  DBW_CHECK_OK(plain->Materialize(preds));

  // One fused-cache decision per multi-clause predicate, each resolved
  // exactly one way. Single-clause predicates never consult the cache.
  EXPECT_EQ(fused.fused_lookups(), multi);
  EXPECT_EQ(fused.fused_hits() + fused.fused_compiles() +
                fused.fused_fallbacks(),
            fused.fused_lookups());
  EXPECT_GT(fused.fused_compiles(), 0u);
  EXPECT_EQ(plain.get()->fused_lookups(), 0u);

  for (const Predicate* p : preds) {
    auto fb = fused.MatchPrepared(*p);
    auto wb = plain->MatchPrepared(*p);
    ASSERT_TRUE(fb.ok() && wb.ok()) << p->ToString();
    ASSERT_TRUE(*fb == *wb) << p->ToString();
    BoundPredicate bound = *p->Bind(t);
    ASSERT_TRUE(*fb == bound.MatchBitmap(rows)) << p->ToString();
  }

  // Re-materializing the same batch is pure hits: no new programs.
  const size_t programs = fused.num_fused_programs();
  const size_t compiles = fused.fused_compiles();
  DBW_CHECK_OK(fused.Materialize(preds));
  EXPECT_EQ(fused.num_fused_programs(), programs);
  EXPECT_EQ(fused.fused_compiles(), compiles);
  EXPECT_GT(fused.fused_hits(), 0u);
}

// Slicing the universe into S contiguous shard slices and evaluating
// each slice with its own fused engine must reproduce the global
// bitmap bit-for-bit, at every shard count.
TEST_P(FusedEquivalence, ShardSlicesConcatenateToGlobalBitmap) {
  Rng rng(GetParam() ^ 0x51A6u);
  Table t = RandomTable(&rng, 777);  // not a multiple of 64: tail words
  std::vector<RowId> rows = FullUniverse(t);

  std::vector<Predicate> storage;
  for (int i = 0; i < 12; ++i) {
    storage.push_back(Predicate({RandomClause(&rng), RandomClause(&rng),
                                 RandomClause(&rng)}));
  }
  std::vector<const Predicate*> preds;
  for (const Predicate& p : storage) preds.push_back(&p);

  MatchEngine global(t, rows);
  DBW_CHECK_OK(global.Materialize(preds));

  for (size_t shards : {size_t{1}, size_t{2}, size_t{3}, size_t{7}}) {
    std::vector<std::unique_ptr<MatchEngine>> slices;
    std::vector<size_t> offsets;
    const size_t per = (rows.size() + shards - 1) / shards;
    for (size_t s = 0; s < shards; ++s) {
      const size_t lo = std::min(rows.size(), s * per);
      const size_t hi = std::min(rows.size(), lo + per);
      offsets.push_back(lo);
      slices.push_back(std::make_unique<MatchEngine>(
          t, std::vector<RowId>(rows.begin() + lo, rows.begin() + hi)));
      ASSERT_TRUE(slices.back()->fused_enabled());
      DBW_CHECK_OK(slices.back()->Materialize(preds));
    }
    for (const Predicate* p : preds) {
      auto gb = global.MatchPrepared(*p);
      ASSERT_TRUE(gb.ok()) << p->ToString();
      for (size_t s = 0; s < shards; ++s) {
        auto sb = slices[s]->MatchPrepared(*p);
        ASSERT_TRUE(sb.ok()) << p->ToString();
        for (size_t j = 0; j < sb->num_bits(); ++j) {
          ASSERT_EQ(sb->Test(j), gb->Test(offsets[s] + j))
              << p->ToString() << " shards=" << shards << " slice=" << s
              << " local=" << j;
        }
      }
    }
  }
}

// The forced-scalar tier must be bit-identical to whatever tier the
// dispatcher picked (AVX2 on this container) — same bitmaps, word for
// word, on the same random workload.
TEST_P(FusedEquivalence, ForcedScalarTierIsBitIdenticalToDispatchedTier) {
  Rng rng(GetParam() ^ 0xC0DEu);
  Table t = RandomTable(&rng, 900);
  std::vector<RowId> rows = FullUniverse(t);

  std::vector<Predicate> storage;
  for (int i = 0; i < 20; ++i) {
    std::vector<Clause> cs;
    const size_t n = 2 + rng.UniformInt(2u);
    for (size_t j = 0; j < n; ++j) cs.push_back(RandomClause(&rng));
    storage.push_back(Predicate(cs));
  }
  std::vector<const Predicate*> preds;
  for (const Predicate& p : storage) preds.push_back(&p);

  MatchEngine dispatched(t, rows);
  auto scalar = ScalarEngine(t, rows);
  EXPECT_EQ(scalar->simd_tier(), SimdTier::kScalar);
  DBW_CHECK_OK(dispatched.Materialize(preds));
  DBW_CHECK_OK(scalar->Materialize(preds));
  for (const Predicate* p : preds) {
    auto db = dispatched.MatchPrepared(*p);
    auto sb = scalar->MatchPrepared(*p);
    ASSERT_TRUE(db.ok() && sb.ok()) << p->ToString();
    ASSERT_TRUE(*db == *sb)
        << p->ToString() << " dispatched tier "
        << SimdTierName(dispatched.simd_tier());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusedEquivalence,
                         ::testing::Values(11u, 47u, 4242u));

// ---------- fault matrix: the "match/fused" injection site ----------

TEST(FusedFaults, FusedSiteFailsMaterializeWithoutMutatingCaches) {
  Rng rng(21);
  Table t = RandomTable(&rng, 300);
  std::vector<RowId> rows = FullUniverse(t);
  Predicate pred({Clause::Make("i", CompareOp::kGe, Value(int64_t{0})),
                  Clause::Make("d", CompareOp::kLt, Value(1.0))});

  MatchEngine engine(t, rows);
  ASSERT_TRUE(engine.fused_enabled());
  FaultInjector faults;
  faults.ArmError("match/fused", Status::IoError("injected at match/fused"));
  ExecContext ctx;
  ctx.faults = &faults;
  ParallelOptions popts;
  popts.ctx = &ctx;

  Status st = engine.Materialize({&pred}, popts);
  ASSERT_TRUE(st.IsIoError()) << st.ToString();
  EXPECT_GE(faults.hits("match/fused"), 1u);
  // The site fires before any planning: no clause bitmaps, no fused
  // programs, no counters consumed.
  EXPECT_EQ(engine.num_cached_clauses(), 0u);
  EXPECT_EQ(engine.num_fused_programs(), 0u);
  EXPECT_EQ(engine.fused_lookups(), 0u);

  // Disarmed, the same engine recovers cleanly.
  faults.Disarm("match/fused");
  DBW_CHECK_OK(engine.Materialize({&pred}, popts));
  EXPECT_EQ(engine.num_fused_programs(), 1u);
  ASSERT_TRUE(engine.MatchPrepared(pred).ok());
}

TEST(FusedFaults, FusedSiteIsUnreachableWhenFusionIsDisabled) {
  Rng rng(22);
  Table t = RandomTable(&rng, 100);
  std::vector<RowId> rows = FullUniverse(t);
  Predicate pred({Clause::Make("i", CompareOp::kGe, Value(int64_t{0})),
                  Clause::Make("d", CompareOp::kLt, Value(1.0))});

  auto plain = PlainEngine(t, rows);
  FaultInjector faults;
  faults.ArmError("match/fused", Status::IoError("injected at match/fused"));
  ExecContext ctx;
  ctx.faults = &faults;
  ParallelOptions popts;
  popts.ctx = &ctx;
  DBW_CHECK_OK(plain->Materialize({&pred}, popts));
  EXPECT_EQ(faults.hits("match/fused"), 0u);
}

// ---------- budgets and interrupts ----------

TEST(FusedAnytime, BitmapBudgetExhaustionRollsBackFusedPrograms) {
  Rng rng(23);
  Table t = RandomTable(&rng, 400);
  std::vector<RowId> rows = FullUniverse(t);
  // A shared clause forces a materialized bitmap (the fused programs
  // reference it), which is what the budget meters.
  const Clause shared = Clause::Make("i", CompareOp::kLe, Value(int64_t{2}));
  Predicate p1({shared, Clause::Make("d", CompareOp::kGt, Value(0.0))});
  Predicate p2({shared, Clause::Make("s", CompareOp::kEq, Value("red"))});

  ResourceBudget budget(0, 1, 0);  // one byte of bitmap budget
  ExecContext ctx;
  ctx.budget = &budget;
  ParallelOptions popts;
  popts.ctx = &ctx;

  MatchEngine engine(t, rows);
  Status st = engine.Materialize({&p1, &p2}, popts);
  ASSERT_TRUE(st.IsResourceExhausted()) << st.ToString();
  EXPECT_EQ(engine.num_cached_clauses(), 0u);
  EXPECT_EQ(engine.num_fused_programs(), 0u);

  // Without the budget the identical batch succeeds on the same
  // engine: the rollback left no poisoned state behind.
  DBW_CHECK_OK(engine.Materialize({&p1, &p2}));
  EXPECT_EQ(engine.num_fused_programs(), 2u);
}

TEST(FusedAnytime, CancelledContextInterruptsFusedEvaluation) {
  Rng rng(24);
  Table t = RandomTable(&rng, 300);
  std::vector<RowId> rows = FullUniverse(t);
  Predicate pred({Clause::Make("i", CompareOp::kGe, Value(int64_t{-1})),
                  Clause::Make("d", CompareOp::kLe, Value(0.5))});

  MatchEngine engine(t, rows);
  DBW_CHECK_OK(engine.Materialize({&pred}));
  ASSERT_EQ(engine.num_fused_programs(), 1u);

  CancellationSource source;
  source.Cancel("query interrupted");
  ExecContext ctx;
  ctx.token = source.token();
  auto bm = engine.MatchPrepared(pred, ctx);
  ASSERT_FALSE(bm.ok());
  EXPECT_TRUE(bm.status().IsCancelled()) << bm.status().ToString();
  EXPECT_TRUE(bm.status().IsInterrupt());

  // The cached program is untouched: a fresh context evaluates fine.
  auto ok = engine.MatchPrepared(pred, ExecContext::None());
  ASSERT_TRUE(ok.ok());
}

TEST(FusedAnytime, StalenessIsDetectedBeforeFusedEvaluation) {
  Table t(Schema{{"i", DataType::kInt64}, {"d", DataType::kDouble}}, "t");
  DBW_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value(0.5)}));
  DBW_CHECK_OK(t.AppendRow({Value(int64_t{2}), Value(1.5)}));
  MatchEngine engine(t, {0, 1});
  Predicate pred({Clause::Make("i", CompareOp::kGe, Value(int64_t{1})),
                  Clause::Make("d", CompareOp::kLt, Value(1.0))});
  DBW_CHECK_OK(engine.Materialize({&pred}));
  ASSERT_TRUE(engine.MatchPrepared(pred).ok());

  DBW_CHECK_OK(t.AppendRow({Value(int64_t{3}), Value(2.5)}));
  auto stale = engine.MatchPrepared(pred);
  ASSERT_FALSE(stale.ok());  // snapshot invalidated, program not run
}

}  // namespace
}  // namespace dbwipes
