// Property tests for the vectorized match kernels: on randomized
// tables (nulls, NaN doubles, int64 columns probed with double
// literals, string literals absent from the dictionary) the kernel
// path (CompileClause/MatchEngine) must agree bit-for-bit with the
// boxed paths (Clause::Matches and BoundPredicate::MatchBitmap), at
// every thread count, and must fail with exactly the errors Bind
// produces for clauses the kernels cannot translate.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include "dbwipes/common/random.h"
#include "dbwipes/expr/match_kernels.h"
#include "dbwipes/expr/predicate.h"

namespace dbwipes {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// int64 (10% null), double (10% null, 10% NaN among non-nulls),
/// string from a small dictionary (10% null).
Table RandomTable(Rng* rng, size_t rows) {
  Table t(Schema{{"i", DataType::kInt64},
                 {"d", DataType::kDouble},
                 {"s", DataType::kString}},
          "t");
  const char* cats[] = {"red", "green", "blue", "red-ish"};
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> row(3);
    row[0] = rng->Bernoulli(0.1) ? Value::Null()
                                 : Value(rng->UniformInt(-5, 5));
    if (rng->Bernoulli(0.1)) {
      row[1] = Value::Null();
    } else {
      row[1] = Value(rng->Bernoulli(0.1) ? kNaN : rng->Normal(0, 2));
    }
    row[2] = rng->Bernoulli(0.1)
                 ? Value::Null()
                 : Value(std::string(cats[rng->UniformInt(4u)]));
    DBW_CHECK_OK(t.AppendRow(row));
  }
  return t;
}

/// Every CompareOp appears: the six binary comparisons on both numeric
/// columns (the int64 column is probed with both int64 and double
/// literals to exercise the widening path), string eq/ne with literals
/// both present in and absent from the dictionary, IN over numbers and
/// strings (with an absent member), and CONTAINS.
Clause RandomClause(Rng* rng) {
  static const CompareOp kBinaryOps[] = {CompareOp::kEq, CompareOp::kNe,
                                         CompareOp::kLt, CompareOp::kLe,
                                         CompareOp::kGt, CompareOp::kGe};
  switch (rng->UniformInt(7u)) {
    case 0:
      return Clause::Make("i", kBinaryOps[rng->UniformInt(6u)],
                          Value(rng->UniformInt(-5, 5)));
    case 1:  // double literal against the int64 column
      return Clause::Make("i", kBinaryOps[rng->UniformInt(6u)],
                          Value(rng->UniformDouble(-5.5, 5.5)));
    case 2:
      return Clause::Make("d", kBinaryOps[rng->UniformInt(6u)],
                          Value(rng->Normal(0, 2)));
    case 3:
      return Clause::Make("s", rng->Bernoulli(0.5) ? CompareOp::kEq
                                                   : CompareOp::kNe,
                          Value(rng->Bernoulli(0.7) ? "red" : "missing"));
    case 4:
      return Clause::In("s", {Value("green"), Value("blue"),
                              Value("missing")});
    case 5:
      return Clause::In("i", {Value(int64_t{0}), Value(2.0),
                              Value(int64_t{-3})});
    default:
      return Clause::Make("s", CompareOp::kContains,
                          Value(rng->Bernoulli(0.5) ? "red" : "ee"));
  }
}

/// Random strict subset of the table's rows (sorted, may repeat across
/// trials); sometimes the full table.
std::vector<RowId> RandomUniverse(Rng* rng, size_t num_rows) {
  std::vector<RowId> rows;
  if (rng->Bernoulli(0.3)) {
    for (RowId r = 0; r < num_rows; ++r) rows.push_back(r);
    return rows;
  }
  for (RowId r = 0; r < num_rows; ++r) {
    if (rng->Bernoulli(0.6)) rows.push_back(r);
  }
  return rows;
}

class KernelBoxedEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KernelBoxedEquivalence, AgreesWithBoxedPaths) {
  Rng rng(GetParam());
  Table t = RandomTable(&rng, 500);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Clause> clauses;
    const size_t n = 1 + rng.UniformInt(3u);
    for (size_t i = 0; i < n; ++i) clauses.push_back(RandomClause(&rng));
    Predicate pred(clauses);
    std::vector<RowId> rows = RandomUniverse(&rng, t.num_rows());

    MatchEngine engine(t, rows);
    auto kernel = engine.Match(pred);
    ASSERT_TRUE(kernel.ok()) << pred.ToString() << ": "
                             << kernel.status().ToString();

    BoundPredicate bound = *pred.Bind(t);
    const Bitmap boxed = bound.MatchBitmap(rows);
    ASSERT_TRUE(*kernel == boxed) << pred.ToString();

    // Spot-check against the slowest oracle too.
    for (size_t i = 0; i < rows.size(); ++i) {
      ASSERT_EQ(kernel->Test(i), *pred.Matches(t, rows[i]))
          << pred.ToString() << " row " << rows[i];
    }
  }
}

TEST_P(KernelBoxedEquivalence, DeterministicAtAnyThreadCount) {
  Rng rng(GetParam() ^ 0xABCDEF);
  Table t = RandomTable(&rng, 2000);
  std::vector<const Predicate*> preds;
  std::vector<Predicate> storage;
  for (int i = 0; i < 10; ++i) {
    storage.push_back(Predicate({RandomClause(&rng), RandomClause(&rng)}));
  }
  for (const Predicate& p : storage) preds.push_back(&p);

  std::vector<RowId> rows;
  for (RowId r = 0; r < t.num_rows(); ++r) rows.push_back(r);

  ParallelOptions serial;
  serial.num_threads = 1;
  ParallelOptions parallel;
  parallel.num_threads = 4;
  parallel.min_items_for_threading = 1;

  MatchEngine e1(t, rows);
  MatchEngine e4(t, rows);
  DBW_CHECK_OK(e1.Materialize(preds, serial));
  DBW_CHECK_OK(e4.Materialize(preds, parallel));
  for (const Predicate* p : preds) {
    ASSERT_TRUE(*e1.MatchPrepared(*p) == *e4.MatchPrepared(*p))
        << p->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelBoxedEquivalence,
                         ::testing::Values(7u, 41u, 1234u));

TEST(MatchEngine, AbsentStringLiteralNeverMatchesNulls) {
  Table t(Schema{{"s", DataType::kString}}, "t");
  DBW_CHECK_OK(t.AppendRow({Value("red")}));
  DBW_CHECK_OK(t.AppendRow({Value::Null()}));
  DBW_CHECK_OK(t.AppendRow({Value("blue")}));
  MatchEngine engine(t, {0, 1, 2});

  auto eq = engine.Match(
      Predicate({Clause::Make("s", CompareOp::kEq, Value("missing"))}));
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(eq->CountOnes(), 0u);  // not the null row either

  auto ne = engine.Match(
      Predicate({Clause::Make("s", CompareOp::kNe, Value("missing"))}));
  ASSERT_TRUE(ne.ok());
  EXPECT_TRUE(ne->Test(0));
  EXPECT_FALSE(ne->Test(1));  // NULL never matches
  EXPECT_TRUE(ne->Test(2));
}

TEST(MatchEngine, SharedClausesAreCachedOnce) {
  Rng rng(99);
  Table t = RandomTable(&rng, 200);
  std::vector<RowId> rows;
  for (RowId r = 0; r < t.num_rows(); ++r) rows.push_back(r);

  const Clause shared = Clause::Make("i", CompareOp::kLe, Value(int64_t{2}));
  Predicate p1({shared, Clause::Make("d", CompareOp::kGt, Value(0.0))});
  Predicate p2({shared, Clause::Make("s", CompareOp::kEq, Value("red"))});

  MatchEngine engine(t, rows);
  DBW_CHECK_OK(engine.Materialize({&p1, &p2}));
  // Fused planning: the shared clause is the only materialized bitmap
  // (counted once); each predicate's unique clause went inline into
  // its one-pass program instead of the clause cache.
  EXPECT_EQ(engine.num_cached_clauses(), 1u);
  EXPECT_EQ(engine.num_fused_programs(), 2u);
  EXPECT_EQ(engine.fused_compiles(), 2u);
  EXPECT_GE(engine.cache_hits(), 1u);  // shared ref probed twice

  // Re-materializing is all hits, in both caches.
  const size_t misses = engine.cache_misses();
  DBW_CHECK_OK(engine.Materialize({&p1, &p2}));
  EXPECT_EQ(engine.cache_misses(), misses);
  EXPECT_EQ(engine.fused_hits(), 2u);
  EXPECT_EQ(engine.num_fused_programs(), 2u);

  // With fused compilation off, the original per-clause law holds:
  // three distinct clause bitmaps, the shared one counted once.
  setenv("DBWIPES_FUSED", "off", 1);
  MatchEngine plain(t, rows);
  unsetenv("DBWIPES_FUSED");
  ASSERT_FALSE(plain.fused_enabled());
  DBW_CHECK_OK(plain.Materialize({&p1, &p2}));
  EXPECT_EQ(plain.num_cached_clauses(), 3u);  // shared counted once
  EXPECT_EQ(plain.num_fused_programs(), 0u);
  EXPECT_EQ(plain.fused_lookups(), 0u);
}

TEST(MatchEngine, UnsupportedClauseFailsExactlyLikeBind) {
  Rng rng(7);
  Table t = RandomTable(&rng, 50);
  // Ordered comparison on a string column: Bind rejects it, so the
  // engine must surface the same error instead of a bitmap.
  Predicate bad({Clause::Make("s", CompareOp::kLt, Value("red"))});
  auto bound = bad.Bind(t);
  ASSERT_FALSE(bound.ok());

  MatchEngine engine(t, {0, 1, 2});
  auto bm = engine.Match(bad);
  ASSERT_FALSE(bm.ok());
  EXPECT_EQ(bm.status().ToString(), bound.status().ToString());
}

TEST(MatchEngine, RejectsMatchAfterTableAppend) {
  Table t(Schema{{"i", DataType::kInt64}}, "t");
  DBW_CHECK_OK(t.AppendRow({Value(int64_t{1})}));
  MatchEngine engine(t, {0});
  Predicate pred({Clause::Make("i", CompareOp::kEq, Value(int64_t{1}))});
  ASSERT_TRUE(engine.Match(pred).ok());

  DBW_CHECK_OK(t.AppendRow({Value(int64_t{2})}));
  auto stale = engine.Match(pred);
  ASSERT_FALSE(stale.ok());  // snapshot invalidated by append
}

TEST(MatchEngine, EmptyPredicateMatchesEverything) {
  Rng rng(3);
  Table t = RandomTable(&rng, 130);  // not a multiple of 64: tail word
  std::vector<RowId> rows;
  for (RowId r = 0; r < t.num_rows(); ++r) rows.push_back(r);
  MatchEngine engine(t, rows);
  auto bm = engine.Match(Predicate::True());
  ASSERT_TRUE(bm.ok());
  EXPECT_EQ(bm->CountOnes(), rows.size());
}

}  // namespace
}  // namespace dbwipes
