// Differential/property tests: the three predicate-evaluation paths
// (row-at-a-time Predicate::Matches, compiled BoundPredicate, and the
// BoolExpr tree) must agree on random tables, the executor's WHERE
// handling must match a manual filter-then-aggregate oracle, and the
// delta-based scoring engine (RemovalScorer, bitmap matching, parallel
// ranking) must reproduce the serial from-scratch reference.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "dbwipes/common/random.h"
#include "dbwipes/core/predicate_ranker.h"
#include "dbwipes/core/removal.h"
#include "dbwipes/core/removal_scorer.h"
#include "dbwipes/core/session.h"
#include "dbwipes/datagen/fec_generator.h"
#include "dbwipes/datagen/intel_generator.h"
#include "dbwipes/expr/bool_expr.h"
#include "dbwipes/expr/parser.h"
#include "dbwipes/query/executor.h"
#include "dbwipes/query/incremental.h"

namespace dbwipes {
namespace {

Table RandomTable(Rng* rng, size_t rows) {
  Table t(Schema{{"i", DataType::kInt64},
                 {"d", DataType::kDouble},
                 {"s", DataType::kString}},
          "t");
  const char* cats[] = {"red", "green", "blue", "red-ish"};
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> row(3);
    row[0] = rng->Bernoulli(0.1)
                 ? Value::Null()
                 : Value(rng->UniformInt(-5, 5));
    row[1] = rng->Bernoulli(0.1) ? Value::Null()
                                 : Value(rng->Normal(0, 2));
    row[2] = rng->Bernoulli(0.1)
                 ? Value::Null()
                 : Value(std::string(cats[rng->UniformInt(4u)]));
    DBW_CHECK_OK(t.AppendRow(row));
  }
  return t;
}

Clause RandomClause(Rng* rng) {
  switch (rng->UniformInt(6u)) {
    case 0:
      return Clause::Make("i",
                          rng->Bernoulli(0.5) ? CompareOp::kLe
                                              : CompareOp::kGt,
                          Value(rng->UniformInt(-5, 5)));
    case 1:
      return Clause::Make("d",
                          rng->Bernoulli(0.5) ? CompareOp::kGe
                                              : CompareOp::kLt,
                          Value(rng->Normal(0, 2)));
    case 2:
      return Clause::Make("s",
                          rng->Bernoulli(0.5) ? CompareOp::kEq
                                              : CompareOp::kNe,
                          Value(rng->Bernoulli(0.8) ? "red" : "missing"));
    case 3:
      return Clause::In("s", {Value("green"), Value("blue")});
    case 4:
      return Clause::In("i", {Value(int64_t{0}), Value(int64_t{2}),
                              Value(int64_t{-3})});
    default:
      return Clause::Make("s", CompareOp::kContains, Value("red"));
  }
}

class PredicatePathEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PredicatePathEquivalence, AllThreePathsAgree) {
  Rng rng(GetParam());
  Table t = RandomTable(&rng, 300);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Clause> clauses;
    const size_t n = 1 + rng.UniformInt(3u);
    for (size_t i = 0; i < n; ++i) clauses.push_back(RandomClause(&rng));
    Predicate pred(clauses);
    BoundPredicate bound = *pred.Bind(t);
    BoolExprPtr expr = PredicateToBoolExpr(pred);
    const std::vector<bool> mask = bound.MatchAll();
    const std::vector<RowId> matching = bound.MatchingRows();

    size_t match_count = 0;
    for (RowId r = 0; r < t.num_rows(); ++r) {
      const bool slow = *pred.Matches(t, r);
      const bool fast = bound.Matches(r);
      const bool tree = *expr->Eval(t, r);
      ASSERT_EQ(slow, fast) << pred.ToString() << " row " << r;
      ASSERT_EQ(slow, tree) << pred.ToString() << " row " << r;
      ASSERT_EQ(slow, static_cast<bool>(mask[r]));
      if (slow) {
        ASSERT_EQ(matching[match_count], r);
        ++match_count;
      }
    }
    ASSERT_EQ(match_count, matching.size());

    // Parsing the rendered predicate gives the same matches.
    auto reparsed = ParsePredicate(pred.ToString());
    ASSERT_TRUE(reparsed.ok()) << pred.ToString();
    BoundPredicate bound2 = *reparsed->Bind(t);
    for (RowId r = 0; r < t.num_rows(); ++r) {
      ASSERT_EQ(bound.Matches(r), bound2.Matches(r)) << pred.ToString();
    }

    // Simplify() must preserve semantics.
    Predicate simplified = pred.Simplify();
    BoundPredicate bound3 = *simplified.Bind(t);
    for (RowId r = 0; r < t.num_rows(); ++r) {
      ASSERT_EQ(bound.Matches(r), bound3.Matches(r))
          << pred.ToString() << " vs " << simplified.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicatePathEquivalence,
                         ::testing::Values(101, 202, 303, 404, 505));

class ExecutorWhereOracle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorWhereOracle, WhereMatchesManualFilter) {
  Rng rng(GetParam());
  Table t = RandomTable(&rng, 400);
  for (int trial = 0; trial < 10; ++trial) {
    Predicate pred({RandomClause(&rng)});
    const std::string sql =
        "SELECT i, sum(d) AS s, count(*) AS n FROM t WHERE " +
        pred.ToString() + " GROUP BY i";
    auto parsed = ParseQuery(sql);
    ASSERT_TRUE(parsed.ok()) << sql;
    QueryResult r = *ExecuteQuery(*parsed, t);

    // Oracle: filter manually, then aggregate per key.
    BoundPredicate bound = *pred.Bind(t);
    std::map<Value, std::pair<double, int64_t>> expect;  // key -> (sum, n)
    std::map<Value, bool> has_d;
    for (RowId row = 0; row < t.num_rows(); ++row) {
      if (!bound.Matches(row)) continue;
      const Value key = t.GetValue(row, 0);
      auto& acc = expect[key];
      ++acc.second;
      if (!t.column(1).IsNull(row)) {
        acc.first += t.column(1).GetDouble(row);
        has_d[key] = true;
      }
    }
    ASSERT_EQ(r.num_groups(), expect.size()) << sql;
    size_t gi = 0;
    for (const auto& [key, acc] : expect) {
      ASSERT_EQ(r.GroupKey(gi)[0], key) << sql;
      if (has_d.count(key)) {
        ASSERT_NEAR(r.AggValue(gi, 0), acc.first, 1e-9) << sql;
      } else {
        ASSERT_TRUE(std::isnan(r.AggValue(gi, 0))) << sql;
      }
      ASSERT_EQ(r.rows->GetValue(gi, 2), Value(acc.second)) << sql;
      ++gi;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorWhereOracle,
                         ::testing::Values(7, 14, 21));

// Cleaning-rewrite law: result(query AND NOT P) over any table equals
// result(query) computed over the table with P-matching rows deleted.
class CleaningRewriteLaw : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CleaningRewriteLaw, RewriteEqualsPhysicalDeletion) {
  Rng rng(GetParam());
  Table t = RandomTable(&rng, 400);
  AggregateQuery base = *ParseQuery(
      "SELECT s, avg(d) AS a, count(*) AS n FROM t GROUP BY s");
  for (int trial = 0; trial < 10; ++trial) {
    Predicate pred({RandomClause(&rng)});
    // Path 1: the session's rewrite.
    QueryResult rewritten =
        *ExecuteQuery(base.WithCleaningPredicate(pred), t);
    // Path 2: physically delete matching rows, run the base query.
    BoundPredicate bound = *pred.Bind(t);
    std::vector<bool> keep(t.num_rows());
    for (RowId r = 0; r < t.num_rows(); ++r) keep[r] = !bound.Matches(r);
    Table physical = t.Filter(keep);
    QueryResult direct = *ExecuteQuery(base, physical);

    ASSERT_EQ(rewritten.num_groups(), direct.num_groups())
        << pred.ToString();
    for (size_t g = 0; g < direct.num_groups(); ++g) {
      ASSERT_EQ(rewritten.GroupKey(g)[0], direct.GroupKey(g)[0]);
      const double a1 = rewritten.AggValue(g, 0);
      const double a2 = direct.AggValue(g, 0);
      if (std::isnan(a1) || std::isnan(a2)) {
        ASSERT_TRUE(std::isnan(a1) && std::isnan(a2));
      } else {
        ASSERT_NEAR(a1, a2, 1e-9);
      }
      ASSERT_EQ(rewritten.rows->GetValue(g, 2), direct.rows->GetValue(g, 2));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CleaningRewriteLaw,
                         ::testing::Values(31, 62, 93));

// Incremental-clean law: IncrementalClean(result, P) over a
// lineage-captured result equals re-executing `query AND NOT P` —
// rows, group order, aggregate values, and lineage alike.
class IncrementalCleanLaw : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalCleanLaw, MatchesFullReexecution) {
  Rng rng(GetParam());
  Table t = RandomTable(&rng, 500);
  AggregateQuery base = *ParseQuery(
      "SELECT i, avg(d) AS a, count(*) AS n, median(d) AS m FROM t "
      "GROUP BY i");
  QueryResult original = *ExecuteQuery(base, t);
  for (int trial = 0; trial < 10; ++trial) {
    Predicate pred({RandomClause(&rng)});
    QueryResult fast = *IncrementalClean(t, original, pred);
    QueryResult slow =
        *ExecuteQuery(base.WithCleaningPredicate(pred), t);

    ASSERT_EQ(fast.num_groups(), slow.num_groups()) << pred.ToString();
    ASSERT_EQ(fast.query.ToSql(), slow.query.ToSql());
    for (size_t g = 0; g < slow.num_groups(); ++g) {
      ASSERT_EQ(fast.GroupKey(g)[0], slow.GroupKey(g)[0]);
      for (size_t a = 0; a < 3; ++a) {
        const double x = fast.AggValue(g, a);
        const double y = slow.AggValue(g, a);
        if (std::isnan(x) || std::isnan(y)) {
          ASSERT_TRUE(std::isnan(x) && std::isnan(y)) << pred.ToString();
        } else {
          ASSERT_NEAR(x, y, 1e-9) << pred.ToString();
        }
      }
      ASSERT_EQ(fast.lineage[g], slow.lineage[g]) << pred.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalCleanLaw,
                         ::testing::Values(41, 82, 123));

// Snapshot-backed IncrementalClean must match both the rebuild path
// and full re-execution (aggregates within removal-error tolerance,
// groups/keys/lineage exactly).
class CleanSnapshotLaw : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CleanSnapshotLaw, SnapshotPathMatchesRebuildPath) {
  Rng rng(GetParam());
  Table t = RandomTable(&rng, 500);
  AggregateQuery base = *ParseQuery(
      "SELECT i, avg(d) AS a, count(*) AS n, median(d) AS m FROM t "
      "GROUP BY i");
  QueryResult original = *ExecuteQuery(base, t);
  auto snapshot_or = CleanSnapshot::Build(t, original);
  ASSERT_TRUE(snapshot_or.ok());
  const CleanSnapshot& snapshot = *snapshot_or;
  for (int trial = 0; trial < 10; ++trial) {
    Predicate pred({RandomClause(&rng)});
    QueryResult delta = *IncrementalClean(t, original, pred, &snapshot);
    QueryResult rebuild = *IncrementalClean(t, original, pred);

    ASSERT_EQ(delta.num_groups(), rebuild.num_groups()) << pred.ToString();
    ASSERT_EQ(delta.query.ToSql(), rebuild.query.ToSql());
    for (size_t g = 0; g < rebuild.num_groups(); ++g) {
      ASSERT_EQ(delta.GroupKey(g)[0], rebuild.GroupKey(g)[0]);
      for (size_t a = 0; a < 3; ++a) {
        const double x = delta.AggValue(g, a);
        const double y = rebuild.AggValue(g, a);
        if (std::isnan(x) || std::isnan(y)) {
          ASSERT_TRUE(std::isnan(x) && std::isnan(y)) << pred.ToString();
        } else {
          ASSERT_NEAR(x, y, 1e-9) << pred.ToString();
        }
      }
      ASSERT_EQ(delta.lineage[g], rebuild.lineage[g]) << pred.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CleanSnapshotLaw,
                         ::testing::Values(51, 102, 153));

TEST(IncrementalCleanTest, Validation) {
  Rng rng(1);
  Table t = RandomTable(&rng, 50);
  AggregateQuery base = *ParseQuery("SELECT i, sum(d) AS s FROM t GROUP BY i");
  QueryResult result = *ExecuteQuery(base, t);
  EXPECT_TRUE(IncrementalClean(t, result, Predicate::True()).status()
                  .IsInvalidArgument());
  ExecOptions no_lineage;
  no_lineage.capture_lineage = false;
  QueryResult bare = *ExecuteQuery(base, t, no_lineage);
  Predicate pred({Clause::Make("d", CompareOp::kGt, Value(0.0))});
  EXPECT_TRUE(IncrementalClean(t, bare, pred).status().IsInvalidArgument());
}

// ---------- delta scoring engine ----------

// Regression (sortedness hazard): ValuesAfterRemoval binary-searches
// the removed set, so unsorted input used to return silently wrong
// values; it must be rejected instead.
TEST(RemovalSortednessTest, UnsortedRemovedSetRejected) {
  Rng rng(9);
  Table t = RandomTable(&rng, 100);
  AggregateQuery q = *ParseQuery("SELECT i, sum(d) AS s FROM t GROUP BY i");
  QueryResult result = *ExecuteQuery(q, t);
  std::vector<size_t> groups(result.num_groups());
  for (size_t g = 0; g < groups.size(); ++g) groups[g] = g;
  auto metric = TooHigh(0.0);

  const std::vector<RowId> unsorted = {40, 7, 23};
  EXPECT_TRUE(ValuesAfterRemoval(t, result, groups, 0, unsorted)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ErrorAfterRemoval(t, result, groups, *metric, 0, unsorted)
                  .status()
                  .IsInvalidArgument());

  std::vector<RowId> sorted = unsorted;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(ValuesAfterRemoval(t, result, groups, 0, sorted).ok());
}

// RemovalScorer must agree with the from-scratch recomputation for
// every aggregate kind and arbitrary removal subsets — whichever of
// its three entry points (bitmap, byte mask, row ids) is used.
class RemovalScorerEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RemovalScorerEquivalence, MatchesFromScratchRecomputation) {
  Rng rng(GetParam());
  Table t = RandomTable(&rng, 400);
  for (const char* agg :
       {"count(*)", "sum(d)", "avg(d)", "min(d)", "max(d)", "stddev(d)",
        "var(d)", "median(d)"}) {
    const std::string sql =
        "SELECT i, " + std::string(agg) + " AS x FROM t GROUP BY i";
    QueryResult result = *ExecuteQuery(*ParseQuery(sql), t);
    ASSERT_GT(result.num_groups(), 2u) << sql;
    // Select a subset of groups, as the pipeline does.
    std::vector<size_t> selected;
    for (size_t g = 0; g < result.num_groups(); g += 2) selected.push_back(g);
    std::vector<RowId> suspects;
    for (size_t g : selected) {
      suspects.insert(suspects.end(), result.lineage[g].begin(),
                      result.lineage[g].end());
    }
    std::sort(suspects.begin(), suspects.end());
    suspects.erase(std::unique(suspects.begin(), suspects.end()),
                   suspects.end());
    if (suspects.empty()) continue;

    auto scorer_or =
        RemovalScorer::Create(t, result, selected, 0, suspects);
    ASSERT_TRUE(scorer_or.ok()) << sql;
    const RemovalScorer& scorer = *scorer_or;

    for (int trial = 0; trial < 15; ++trial) {
      Bitmap bm(suspects.size());
      std::vector<char> mask(suspects.size(), 0);
      std::vector<RowId> removed;
      const double p = trial < 5 ? 0.1 : (trial < 10 ? 0.5 : 0.95);
      for (size_t i = 0; i < suspects.size(); ++i) {
        if (rng.Bernoulli(p)) {
          bm.Set(i);
          mask[i] = 1;
          removed.push_back(suspects[i]);
        }
      }
      const std::vector<double> want =
          *ValuesAfterRemoval(t, result, selected, 0, removed);
      const std::vector<double> via_bitmap = scorer.ValuesAfterRemoval(bm);
      const std::vector<double> via_mask =
          scorer.ValuesAfterRemovalMask(mask);
      const std::vector<double> via_rows =
          scorer.ValuesAfterRemovalRows(removed);
      ASSERT_EQ(want.size(), via_bitmap.size());
      for (size_t g = 0; g < want.size(); ++g) {
        if (std::isnan(want[g])) {
          ASSERT_TRUE(std::isnan(via_bitmap[g])) << sql << " group " << g;
          ASSERT_TRUE(std::isnan(via_mask[g])) << sql << " group " << g;
          ASSERT_TRUE(std::isnan(via_rows[g])) << sql << " group " << g;
          continue;
        }
        const double tol =
            1e-9 * std::max(1.0, std::abs(want[g]));
        ASSERT_NEAR(via_bitmap[g], want[g], tol) << sql << " group " << g;
        ASSERT_NEAR(via_mask[g], want[g], tol) << sql << " group " << g;
        ASSERT_NEAR(via_rows[g], want[g], tol) << sql << " group " << g;
      }
      // Rows outside the suspect set cannot affect selected groups and
      // must be ignored by the row-based entry point.
      std::vector<RowId> with_foreign = removed;
      for (RowId r = 0; r < t.num_rows(); ++r) {
        if (!std::binary_search(suspects.begin(), suspects.end(), r)) {
          with_foreign.push_back(r);
          break;
        }
      }
      const std::vector<double> via_foreign =
          scorer.ValuesAfterRemovalRows(with_foreign);
      for (size_t g = 0; g < want.size(); ++g) {
        if (std::isnan(via_rows[g])) {
          ASSERT_TRUE(std::isnan(via_foreign[g]));
        } else {
          ASSERT_DOUBLE_EQ(via_foreign[g], via_rows[g]);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RemovalScorerEquivalence,
                         ::testing::Values(61, 122, 183));

// Tuple-set dedup must be exact: predicates removing the same tuples
// collapse to the best description, predicates removing different
// tuples never do (a hash alone could collapse them by collision).
TEST(RankerDedupTest, EqualSetsCollapseDistinctSetsSurvive) {
  // Columns a and b are identical, so `a <= k` and `b <= k` describe
  // the same repair; `a <= 1` is a different repair.
  Table t(Schema{{"g", DataType::kInt64},
                 {"v", DataType::kDouble},
                 {"a", DataType::kInt64},
                 {"b", DataType::kInt64}},
          "t");
  for (int i = 0; i < 40; ++i) {
    const int64_t code = i % 4;
    DBW_CHECK_OK(t.AppendRow({Value(int64_t{i % 2}),
                              Value(100.0 + code * 10.0), Value(code),
                              Value(code)}));
  }
  QueryResult result =
      *ExecuteQuery(*ParseQuery("SELECT g, avg(v) AS x FROM t GROUP BY g"), t);
  std::vector<size_t> selected = {0, 1};
  std::vector<RowId> suspects;
  for (size_t g : selected) {
    suspects.insert(suspects.end(), result.lineage[g].begin(),
                    result.lineage[g].end());
  }
  std::sort(suspects.begin(), suspects.end());

  auto make = [](Clause c) {
    EnumeratedPredicate ep;
    ep.predicate = Predicate({std::move(c)});
    ep.strategy = "test";
    return ep;
  };
  std::vector<EnumeratedPredicate> predicates;
  predicates.push_back(make(Clause::Make("a", CompareOp::kLe,
                                         Value(int64_t{2}))));
  predicates.push_back(make(Clause::Make("b", CompareOp::kLe,
                                         Value(int64_t{2}))));
  predicates.push_back(make(Clause::Make("a", CompareOp::kLe,
                                         Value(int64_t{1}))));

  auto metric = TooHigh(100.0);
  for (auto engine : {RankerOptions::Engine::kDeltaParallel,
                      RankerOptions::Engine::kReferenceSerial}) {
    RankerOptions opts;
    opts.engine = engine;
    PredicateRanker ranker(opts);
    auto ranked = ranker.Rank(t, result, selected, *metric, 0, suspects,
                              /*reference_positive=*/{},
                              /*per_group_baseline=*/20.0, predicates);
    ASSERT_TRUE(ranked.ok());
    // The a/b twins collapsed; the tighter predicate survives.
    ASSERT_EQ(ranked->size(), 2u);
    EXPECT_NE((*ranked)[0].predicate.CanonicalString(),
              (*ranked)[1].predicate.CanonicalString());
  }
}

// ---------- ranking engine equivalence on the demo scenarios ----------

struct RankSignature {
  std::vector<std::string> order;  // canonical predicate + strategy
  std::vector<double> scores;
  std::vector<size_t> matched;
};

RankSignature SignatureOf(const Explanation& exp) {
  RankSignature sig;
  for (const RankedPredicate& rp : exp.predicates) {
    sig.order.push_back(rp.predicate.CanonicalString() + " | " + rp.strategy);
    sig.scores.push_back(rp.score);
    sig.matched.push_back(rp.matched_in_suspects);
  }
  return sig;
}

/// Runs a full demo-scenario pipeline under the given ranker engine /
/// thread count and returns the ranked output's signature.
template <typename SessionSetup>
RankSignature RunScenario(const LabeledDataset& data,
                          const SessionSetup& setup,
                          RankerOptions::Engine engine, size_t threads) {
  ExplainOptions options;
  options.ranker.engine = engine;
  options.ranker.num_threads = threads;
  auto db = std::make_shared<Database>();
  db->RegisterTable(data.table);
  Session session(db, options);
  setup(&session);
  auto exp = session.Debug();
  DBW_CHECK_OK(exp.status());
  return SignatureOf(*exp);
}

/// The delta+parallel engine must produce byte-identical orderings to
/// the serial reference, and identical output at every thread count.
template <typename SessionSetup>
void CheckEngineEquivalence(const LabeledDataset& data,
                            const SessionSetup& setup) {
  const RankSignature reference = RunScenario(
      data, setup, RankerOptions::Engine::kReferenceSerial, 1);
  ASSERT_FALSE(reference.order.empty());
  for (size_t threads : {1u, 2u, 8u}) {
    const RankSignature delta = RunScenario(
        data, setup, RankerOptions::Engine::kDeltaParallel, threads);
    ASSERT_EQ(delta.order, reference.order) << threads << " threads";
    ASSERT_EQ(delta.matched, reference.matched);
    ASSERT_EQ(delta.scores.size(), reference.scores.size());
    for (size_t i = 0; i < reference.scores.size(); ++i) {
      // Delta removal may differ from a fresh fold in the last ulps.
      EXPECT_NEAR(delta.scores[i], reference.scores[i], 1e-9);
    }
  }
  // Determinism across runs at the same thread count.
  const RankSignature again = RunScenario(
      data, setup, RankerOptions::Engine::kDeltaParallel, 8);
  const RankSignature once = RunScenario(
      data, setup, RankerOptions::Engine::kDeltaParallel, 8);
  ASSERT_EQ(again.order, once.order);
  ASSERT_EQ(again.scores, once.scores);  // bitwise: same FP operations
}

TEST(RankerEngineEquivalence, IntelScenario) {
  IntelOptions gen;
  gen.duration_days = 3;
  gen.reading_interval_minutes = 10.0;
  gen.faults = {{15, 1 * 1440, 600, 122.0}, {18, 2 * 1440, 600, 110.0}};
  LabeledDataset data = *GenerateIntelDataset(gen);
  CheckEngineEquivalence(data, [](Session* session) {
    DBW_CHECK_OK(session->ExecuteSql(
        "SELECT window, avg(temp) AS t, stddev(temp) AS sd "
        "FROM readings GROUP BY window"));
    DBW_CHECK_OK(session->SelectResultsInRange("sd", 8.0, 1e9));
    DBW_CHECK_OK(session->SelectInputsWhere("temp > 100"));
    DBW_CHECK_OK(session->SetMetric(TooHigh(2.0), /*agg_index=*/1));
  });
}

TEST(RankerEngineEquivalence, FecScenario) {
  FecOptions gen;
  gen.num_donations = 12000;
  gen.num_reattributions = 120;
  LabeledDataset data = *GenerateFecDataset(gen);
  CheckEngineEquivalence(data, [](Session* session) {
    DBW_CHECK_OK(session->ExecuteSql(
        "SELECT day, sum(amount) AS total FROM donations "
        "WHERE candidate = 'MCCAIN' GROUP BY day"));
    DBW_CHECK_OK(session->SelectResultsInRange("total", -1e15, -1.0));
    DBW_CHECK_OK(session->SelectInputsWhere("amount < 0"));
    DBW_CHECK_OK(session->SetMetric(TooLow(0.0)));
  });
}

}  // namespace
}  // namespace dbwipes
