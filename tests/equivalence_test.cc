// Differential/property tests: the three predicate-evaluation paths
// (row-at-a-time Predicate::Matches, compiled BoundPredicate, and the
// BoolExpr tree) must agree on random tables, and the executor's WHERE
// handling must match a manual filter-then-aggregate oracle.

#include <gtest/gtest.h>

#include <cmath>

#include "dbwipes/common/random.h"
#include "dbwipes/expr/bool_expr.h"
#include "dbwipes/expr/parser.h"
#include "dbwipes/query/executor.h"
#include "dbwipes/query/incremental.h"

namespace dbwipes {
namespace {

Table RandomTable(Rng* rng, size_t rows) {
  Table t(Schema{{"i", DataType::kInt64},
                 {"d", DataType::kDouble},
                 {"s", DataType::kString}},
          "t");
  const char* cats[] = {"red", "green", "blue", "red-ish"};
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> row(3);
    row[0] = rng->Bernoulli(0.1)
                 ? Value::Null()
                 : Value(rng->UniformInt(-5, 5));
    row[1] = rng->Bernoulli(0.1) ? Value::Null()
                                 : Value(rng->Normal(0, 2));
    row[2] = rng->Bernoulli(0.1)
                 ? Value::Null()
                 : Value(std::string(cats[rng->UniformInt(4u)]));
    DBW_CHECK_OK(t.AppendRow(row));
  }
  return t;
}

Clause RandomClause(Rng* rng) {
  switch (rng->UniformInt(6u)) {
    case 0:
      return Clause::Make("i",
                          rng->Bernoulli(0.5) ? CompareOp::kLe
                                              : CompareOp::kGt,
                          Value(rng->UniformInt(-5, 5)));
    case 1:
      return Clause::Make("d",
                          rng->Bernoulli(0.5) ? CompareOp::kGe
                                              : CompareOp::kLt,
                          Value(rng->Normal(0, 2)));
    case 2:
      return Clause::Make("s",
                          rng->Bernoulli(0.5) ? CompareOp::kEq
                                              : CompareOp::kNe,
                          Value(rng->Bernoulli(0.8) ? "red" : "missing"));
    case 3:
      return Clause::In("s", {Value("green"), Value("blue")});
    case 4:
      return Clause::In("i", {Value(int64_t{0}), Value(int64_t{2}),
                              Value(int64_t{-3})});
    default:
      return Clause::Make("s", CompareOp::kContains, Value("red"));
  }
}

class PredicatePathEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PredicatePathEquivalence, AllThreePathsAgree) {
  Rng rng(GetParam());
  Table t = RandomTable(&rng, 300);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Clause> clauses;
    const size_t n = 1 + rng.UniformInt(3u);
    for (size_t i = 0; i < n; ++i) clauses.push_back(RandomClause(&rng));
    Predicate pred(clauses);
    BoundPredicate bound = *pred.Bind(t);
    BoolExprPtr expr = PredicateToBoolExpr(pred);
    const std::vector<bool> mask = bound.MatchAll();
    const std::vector<RowId> matching = bound.MatchingRows();

    size_t match_count = 0;
    for (RowId r = 0; r < t.num_rows(); ++r) {
      const bool slow = *pred.Matches(t, r);
      const bool fast = bound.Matches(r);
      const bool tree = *expr->Eval(t, r);
      ASSERT_EQ(slow, fast) << pred.ToString() << " row " << r;
      ASSERT_EQ(slow, tree) << pred.ToString() << " row " << r;
      ASSERT_EQ(slow, static_cast<bool>(mask[r]));
      if (slow) {
        ASSERT_EQ(matching[match_count], r);
        ++match_count;
      }
    }
    ASSERT_EQ(match_count, matching.size());

    // Parsing the rendered predicate gives the same matches.
    auto reparsed = ParsePredicate(pred.ToString());
    ASSERT_TRUE(reparsed.ok()) << pred.ToString();
    BoundPredicate bound2 = *reparsed->Bind(t);
    for (RowId r = 0; r < t.num_rows(); ++r) {
      ASSERT_EQ(bound.Matches(r), bound2.Matches(r)) << pred.ToString();
    }

    // Simplify() must preserve semantics.
    Predicate simplified = pred.Simplify();
    BoundPredicate bound3 = *simplified.Bind(t);
    for (RowId r = 0; r < t.num_rows(); ++r) {
      ASSERT_EQ(bound.Matches(r), bound3.Matches(r))
          << pred.ToString() << " vs " << simplified.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicatePathEquivalence,
                         ::testing::Values(101, 202, 303, 404, 505));

class ExecutorWhereOracle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorWhereOracle, WhereMatchesManualFilter) {
  Rng rng(GetParam());
  Table t = RandomTable(&rng, 400);
  for (int trial = 0; trial < 10; ++trial) {
    Predicate pred({RandomClause(&rng)});
    const std::string sql =
        "SELECT i, sum(d) AS s, count(*) AS n FROM t WHERE " +
        pred.ToString() + " GROUP BY i";
    auto parsed = ParseQuery(sql);
    ASSERT_TRUE(parsed.ok()) << sql;
    QueryResult r = *ExecuteQuery(*parsed, t);

    // Oracle: filter manually, then aggregate per key.
    BoundPredicate bound = *pred.Bind(t);
    std::map<Value, std::pair<double, int64_t>> expect;  // key -> (sum, n)
    std::map<Value, bool> has_d;
    for (RowId row = 0; row < t.num_rows(); ++row) {
      if (!bound.Matches(row)) continue;
      const Value key = t.GetValue(row, 0);
      auto& acc = expect[key];
      ++acc.second;
      if (!t.column(1).IsNull(row)) {
        acc.first += t.column(1).GetDouble(row);
        has_d[key] = true;
      }
    }
    ASSERT_EQ(r.num_groups(), expect.size()) << sql;
    size_t gi = 0;
    for (const auto& [key, acc] : expect) {
      ASSERT_EQ(r.GroupKey(gi)[0], key) << sql;
      if (has_d.count(key)) {
        ASSERT_NEAR(r.AggValue(gi, 0), acc.first, 1e-9) << sql;
      } else {
        ASSERT_TRUE(std::isnan(r.AggValue(gi, 0))) << sql;
      }
      ASSERT_EQ(r.rows->GetValue(gi, 2), Value(acc.second)) << sql;
      ++gi;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorWhereOracle,
                         ::testing::Values(7, 14, 21));

// Cleaning-rewrite law: result(query AND NOT P) over any table equals
// result(query) computed over the table with P-matching rows deleted.
class CleaningRewriteLaw : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CleaningRewriteLaw, RewriteEqualsPhysicalDeletion) {
  Rng rng(GetParam());
  Table t = RandomTable(&rng, 400);
  AggregateQuery base = *ParseQuery(
      "SELECT s, avg(d) AS a, count(*) AS n FROM t GROUP BY s");
  for (int trial = 0; trial < 10; ++trial) {
    Predicate pred({RandomClause(&rng)});
    // Path 1: the session's rewrite.
    QueryResult rewritten =
        *ExecuteQuery(base.WithCleaningPredicate(pred), t);
    // Path 2: physically delete matching rows, run the base query.
    BoundPredicate bound = *pred.Bind(t);
    std::vector<bool> keep(t.num_rows());
    for (RowId r = 0; r < t.num_rows(); ++r) keep[r] = !bound.Matches(r);
    Table physical = t.Filter(keep);
    QueryResult direct = *ExecuteQuery(base, physical);

    ASSERT_EQ(rewritten.num_groups(), direct.num_groups())
        << pred.ToString();
    for (size_t g = 0; g < direct.num_groups(); ++g) {
      ASSERT_EQ(rewritten.GroupKey(g)[0], direct.GroupKey(g)[0]);
      const double a1 = rewritten.AggValue(g, 0);
      const double a2 = direct.AggValue(g, 0);
      if (std::isnan(a1) || std::isnan(a2)) {
        ASSERT_TRUE(std::isnan(a1) && std::isnan(a2));
      } else {
        ASSERT_NEAR(a1, a2, 1e-9);
      }
      ASSERT_EQ(rewritten.rows->GetValue(g, 2), direct.rows->GetValue(g, 2));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CleaningRewriteLaw,
                         ::testing::Values(31, 62, 93));

// Incremental-clean law: IncrementalClean(result, P) over a
// lineage-captured result equals re-executing `query AND NOT P` —
// rows, group order, aggregate values, and lineage alike.
class IncrementalCleanLaw : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalCleanLaw, MatchesFullReexecution) {
  Rng rng(GetParam());
  Table t = RandomTable(&rng, 500);
  AggregateQuery base = *ParseQuery(
      "SELECT i, avg(d) AS a, count(*) AS n, median(d) AS m FROM t "
      "GROUP BY i");
  QueryResult original = *ExecuteQuery(base, t);
  for (int trial = 0; trial < 10; ++trial) {
    Predicate pred({RandomClause(&rng)});
    QueryResult fast = *IncrementalClean(t, original, pred);
    QueryResult slow =
        *ExecuteQuery(base.WithCleaningPredicate(pred), t);

    ASSERT_EQ(fast.num_groups(), slow.num_groups()) << pred.ToString();
    ASSERT_EQ(fast.query.ToSql(), slow.query.ToSql());
    for (size_t g = 0; g < slow.num_groups(); ++g) {
      ASSERT_EQ(fast.GroupKey(g)[0], slow.GroupKey(g)[0]);
      for (size_t a = 0; a < 3; ++a) {
        const double x = fast.AggValue(g, a);
        const double y = slow.AggValue(g, a);
        if (std::isnan(x) || std::isnan(y)) {
          ASSERT_TRUE(std::isnan(x) && std::isnan(y)) << pred.ToString();
        } else {
          ASSERT_NEAR(x, y, 1e-9) << pred.ToString();
        }
      }
      ASSERT_EQ(fast.lineage[g], slow.lineage[g]) << pred.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalCleanLaw,
                         ::testing::Values(41, 82, 123));

TEST(IncrementalCleanTest, Validation) {
  Rng rng(1);
  Table t = RandomTable(&rng, 50);
  AggregateQuery base = *ParseQuery("SELECT i, sum(d) AS s FROM t GROUP BY i");
  QueryResult result = *ExecuteQuery(base, t);
  EXPECT_TRUE(IncrementalClean(t, result, Predicate::True()).status()
                  .IsInvalidArgument());
  ExecOptions no_lineage;
  no_lineage.capture_lineage = false;
  QueryResult bare = *ExecuteQuery(base, t, no_lineage);
  Predicate pred({Clause::Make("d", CompareOp::kGt, Value(0.0))});
  EXPECT_TRUE(IncrementalClean(t, bare, pred).status().IsInvalidArgument());
}

}  // namespace
}  // namespace dbwipes
