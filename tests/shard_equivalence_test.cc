// Shard-equivalence property tests: explaining over a sharded table
// must be BIT-identical to the unsharded run — same predicates, same
// order, same scores to the last ulp — at every shard count, on random
// datasets, under anytime cuts (budgets, deadlines), and across the
// whole fault matrix. Sharding is an execution strategy, never a
// semantics change. Runs under the asan and tsan presets via the
// `faults` ctest label.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dbwipes/common/random.h"
#include "dbwipes/core/dbwipes.h"
#include "dbwipes/core/predicate_ranker.h"
#include "dbwipes/core/preprocessor.h"
#include "dbwipes/core/session.h"
#include "dbwipes/expr/parser.h"
#include "dbwipes/query/executor.h"
#include "dbwipes/storage/shard.h"

namespace dbwipes {
namespace {

/// Random planted-anomaly world: interleaved groups (so every range
/// shard owns suspects), a mix of int/string/double attributes with
/// NULLs, and 'bad'-tagged rows in groups >= 2 carrying high readings.
std::shared_ptr<Table> RandomWorld(uint64_t seed, size_t rows) {
  Rng rng(seed);
  auto t = std::make_shared<Table>(Schema{{"g", DataType::kInt64},
                                          {"tag", DataType::kString},
                                          {"knob", DataType::kDouble},
                                          {"hue", DataType::kString},
                                          {"v", DataType::kDouble}},
                                   "w");
  const char* hues[] = {"red", "green", "blue"};
  for (size_t r = 0; r < rows; ++r) {
    const int64_t g = static_cast<int64_t>(r % 4);
    const bool bad = g >= 2 && rng.Bernoulli(0.15);
    std::vector<Value> row(5);
    row[0] = Value(g);
    row[1] = Value(bad ? "bad" : "fine");
    row[2] = rng.Bernoulli(0.1) ? Value::Null() : Value(rng.Normal(0, 2));
    row[3] = rng.Bernoulli(0.1) ? Value::Null()
                                : Value(std::string(hues[rng.UniformInt(3u)]));
    row[4] = Value(bad ? rng.Normal(100, 3) : rng.Normal(10, 3));
    DBW_CHECK_OK(t->AppendRow(row));
  }
  return t;
}

struct Scenario {
  std::shared_ptr<Table> table;
  std::shared_ptr<Database> db;
  std::unique_ptr<DBWipes> engine;
  QueryResult result;
  ExplanationRequest request;
};

/// Builds the same world sharded `num_shards` ways; 0 = unsharded.
Scenario MakeScenario(uint64_t seed, size_t rows, size_t num_shards) {
  Scenario sc;
  sc.table = RandomWorld(seed, rows);
  sc.db = std::make_shared<Database>();
  sc.db->RegisterTable(sc.table);
  if (num_shards > 0) {
    sc.db->RegisterShardSet("w", *ShardSet::Create(*sc.table, num_shards));
  }
  sc.engine = std::make_unique<DBWipes>(sc.db);
  sc.result = *sc.engine->Query("SELECT g, avg(v) AS a FROM w GROUP BY g");
  sc.request.selected_groups = {2, 3};
  sc.request.metric = TooHigh(15.0);
  return sc;
}

void ExpectIdentical(const Explanation& got, const Explanation& want,
                     const std::string& what) {
  EXPECT_EQ(got.partial, want.partial) << what;
  EXPECT_EQ(got.ranked_considered, want.ranked_considered) << what;
  EXPECT_EQ(got.total_enumerated, want.total_enumerated) << what;
  EXPECT_EQ(got.preprocess.suspect_inputs, want.preprocess.suspect_inputs)
      << what;
  ASSERT_EQ(got.predicates.size(), want.predicates.size()) << what;
  for (size_t i = 0; i < want.predicates.size(); ++i) {
    const RankedPredicate& a = got.predicates[i];
    const RankedPredicate& b = want.predicates[i];
    EXPECT_EQ(a.predicate.CanonicalString(), b.predicate.CanonicalString())
        << what << " rank " << i;
    // Bit-identical, not approximately equal: the sharded fold visits
    // the same operands in the same order as the fused one.
    EXPECT_EQ(a.score, b.score) << what << " rank " << i;
    EXPECT_EQ(a.error_after, b.error_after) << what << " rank " << i;
    EXPECT_EQ(a.error_improvement, b.error_improvement)
        << what << " rank " << i;
    EXPECT_EQ(a.precision, b.precision) << what << " rank " << i;
    EXPECT_EQ(a.recall, b.recall) << what << " rank " << i;
    EXPECT_EQ(a.f1, b.f1) << what << " rank " << i;
    EXPECT_EQ(a.matched_in_suspects, b.matched_in_suspects)
        << what << " rank " << i;
  }
}

class ShardEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShardEquivalence, ExplainIsBitIdenticalAtEveryShardCount) {
  const uint64_t seed = GetParam();
  const size_t rows = 150 + static_cast<size_t>(seed % 5) * 97;
  Scenario fused = MakeScenario(seed, rows, 0);
  Explanation want = *fused.engine->Explain(fused.result, fused.request);
  ASSERT_FALSE(want.predicates.empty());

  for (size_t num_shards : {1u, 2u, 3u, 7u}) {
    Scenario sharded = MakeScenario(seed, rows, num_shards);
    // Twice per shard count: cold engines, then warm ones — cache
    // reuse must not perturb a single bit either.
    for (int run = 0; run < 2; ++run) {
      Explanation got =
          *sharded.engine->Explain(sharded.result, sharded.request);
      ExpectIdentical(got, want,
                      "seed " + std::to_string(seed) + " shards " +
                          std::to_string(num_shards) + " run " +
                          std::to_string(run));
      EXPECT_EQ(got.profile.num_shards, num_shards);
    }
  }
}

TEST_P(ShardEquivalence, BudgetCutIsBitIdenticalAtEveryShardCount) {
  // A scored-removal budget cuts ranking after a deterministic block
  // prefix, so even the PARTIAL result must be identical across shard
  // counts. The ranker is where the budget is charged, so this goes
  // through RankAnytime with a wide manual candidate family — the full
  // Explain pipeline merges candidates down to a handful, too few for
  // a removal cap to ever bite. (Removal budgets, not bitmap budgets:
  // per-shard bitmap byte charges legitimately differ with the layout.)
  const uint64_t seed = GetParam();
  auto table = RandomWorld(seed, 300);
  QueryResult result =
      *ExecuteQuery(*ParseQuery("SELECT g, avg(v) AS a FROM w GROUP BY g"),
                    *table);
  auto metric = TooHigh(15.0);
  PreprocessResult pre = *Preprocessor::Run(*table, result, {2, 3}, *metric);
  std::vector<EnumeratedPredicate> candidates;
  for (int i = -40; i < 40; ++i) {
    EnumeratedPredicate ep;
    ep.predicate =
        Predicate({Clause::Make("knob", CompareOp::kGe, Value(i * 0.05))});
    candidates.push_back(std::move(ep));
  }

  auto run = [&](size_t num_shards) {
    // The charge lands one kScoreBlock at a time, so a two-block cap
    // over 80 candidates always stops before the third block.
    ResourceBudget budget(
        0, 0, /*max_scored_removals=*/2 * PredicateRanker::kScoreBlock);
    ExecContext ctx;
    ctx.budget = &budget;
    std::shared_ptr<ShardSet> set;
    ShardPlan plan;
    const ShardPlan* plan_ptr = nullptr;
    if (num_shards > 0) {
      set = *ShardSet::Create(*table, num_shards);
      plan = ShardPlan::Build(*set, pre.suspect_inputs);
      plan_ptr = &plan;
    }
    PredicateRanker ranker;
    auto outcome = ranker.RankAnytime(*table, result, {2, 3}, *metric, 0,
                                      pre.suspect_inputs, {},
                                      pre.per_group_baseline_error, candidates,
                                      ctx, plan_ptr);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_TRUE(outcome->partial) << "budget did not bite";
    return *outcome;
  };

  RankOutcome want = run(0);
  EXPECT_EQ(want.scored_prefix, 2 * PredicateRanker::kScoreBlock);
  for (size_t num_shards : {1u, 3u, 7u}) {
    RankOutcome got = run(num_shards);
    const std::string what =
        "seed " + std::to_string(seed) + " shards " +
        std::to_string(num_shards);
    EXPECT_EQ(got.partial, want.partial) << what;
    EXPECT_EQ(got.scored_prefix, want.scored_prefix) << what;
    ASSERT_EQ(got.predicates.size(), want.predicates.size()) << what;
    for (size_t i = 0; i < want.predicates.size(); ++i) {
      EXPECT_EQ(got.predicates[i].predicate.CanonicalString(),
                want.predicates[i].predicate.CanonicalString())
          << what << " rank " << i;
      EXPECT_EQ(got.predicates[i].score, want.predicates[i].score)
          << what << " rank " << i;
      EXPECT_EQ(got.predicates[i].error_after, want.predicates[i].error_after)
          << what << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardEquivalence,
                         ::testing::Values(11u, 12u, 13u));

// ---------- deadline cuts ----------

/// A deadline expiring mid-ranking on a sharded world must keep the
/// prefix-consistency contract: the partial ranking equals a full
/// (fused, unsharded) run restricted to the same candidate prefix.
TEST(ShardDeadlineTest, DeadlineCutStaysPrefixConsistent) {
  auto table = RandomWorld(21, 400);
  auto db = std::make_shared<Database>();
  db->RegisterTable(table);
  auto set = *ShardSet::Create(*table, 3);
  db->RegisterShardSet("w", set);

  QueryResult result =
      *ExecuteQuery(*ParseQuery("SELECT g, avg(v) AS a FROM w GROUP BY g"),
                    *table);
  auto metric = TooHigh(15.0);
  PreprocessResult pre =
      *Preprocessor::Run(*table, result, {2, 3}, *metric);

  // A wide threshold family: enough candidates for several blocks.
  std::vector<EnumeratedPredicate> candidates;
  for (int i = -40; i < 40; ++i) {
    EnumeratedPredicate ep;
    ep.predicate = Predicate(
        {Clause::Make("knob", CompareOp::kGe, Value(i * 0.05))});
    candidates.push_back(std::move(ep));
  }
  ShardPlan plan = ShardPlan::Build(*set, pre.suspect_inputs);

  PredicateRanker ranker;
  // Latency at each scoring block makes a short deadline bite between
  // blocks rather than before the first one.
  FaultInjector faults;
  FaultInjector::Fault slow;
  slow.latency_ms = 5.0;
  faults.Arm("ranker/score", slow);
  ExecContext ctx;
  ctx.deadline = Deadline::After(12.0);
  ctx.faults = &faults;
  auto got = ranker.RankAnytime(*table, result, {2, 3}, *metric, 0,
                                pre.suspect_inputs, {},
                                pre.per_group_baseline_error, candidates, ctx,
                                &plan);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(got->partial);
  ASSERT_LT(got->scored_prefix, candidates.size());

  std::vector<EnumeratedPredicate> prefix(
      candidates.begin(),
      candidates.begin() + static_cast<ptrdiff_t>(got->scored_prefix));
  if (prefix.empty()) {
    EXPECT_TRUE(got->predicates.empty());
    return;
  }
  auto full = ranker.Rank(*table, result, {2, 3}, *metric, 0,
                          pre.suspect_inputs, {},
                          pre.per_group_baseline_error, prefix);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_EQ(got->predicates.size(), full->size());
  for (size_t i = 0; i < full->size(); ++i) {
    EXPECT_EQ(got->predicates[i].predicate.CanonicalString(),
              (*full)[i].predicate.CanonicalString())
        << "rank " << i;
    EXPECT_EQ(got->predicates[i].score, (*full)[i].score) << "rank " << i;
  }
}

// ---------- fault injection, per shard ----------

std::shared_ptr<Database> ShardedSmallDb(size_t num_shards) {
  auto table = RandomWorld(31, 160);
  auto db = std::make_shared<Database>();
  db->RegisterTable(table);
  db->RegisterShardSet("w", *ShardSet::Create(*table, num_shards));
  return db;
}

void PrepareSession(Session& session) {
  ASSERT_TRUE(
      session.ExecuteSql("SELECT g, avg(v) AS a FROM w GROUP BY g").ok());
  ASSERT_TRUE(session.SelectResults({2, 3}).ok());
  ASSERT_TRUE(session.SetMetric(TooHigh(15.0)).ok());
}

/// Every registered fault site — the per-shard "ranker/shard" site
/// included — must surface an injected error as a clean Status on a
/// sharded world, at more than one shard count.
TEST(ShardFaultMatrixTest, EverySiteErrorsCleanlyOnShardedWorlds) {
  for (size_t num_shards : {1u, 3u}) {
    auto db = ShardedSmallDb(num_shards);
    for (const std::string& site : AllFaultSites()) {
      Session session(db);
      PrepareSession(session);
      FaultInjector faults;
      faults.ArmError(site, Status::IoError("injected at " + site));
      ExecContext ctx;
      ctx.faults = &faults;
      auto exp = session.Debug(ctx);
      ASSERT_FALSE(exp.ok())
          << site << " swallowed the injected fault at S=" << num_shards;
      EXPECT_TRUE(exp.status().IsIoError()) << site;
      EXPECT_GE(faults.hits(site), 1u)
          << site << " never hit at S=" << num_shards << " — dead site?";
    }
  }
}

/// The per-shard site fires once per shard: a complete explain on an
/// S-shard world trips an armed latency fault exactly S times.
TEST(ShardFaultMatrixTest, ShardSiteFiresOncePerShard) {
  for (size_t num_shards : {1u, 2u, 5u}) {
    auto db = ShardedSmallDb(num_shards);
    Session session(db);
    PrepareSession(session);
    FaultInjector faults;
    FaultInjector::Fault slow;
    slow.latency_ms = 0.01;
    faults.Arm("ranker/shard", slow);
    ExecContext ctx;
    ctx.faults = &faults;
    auto exp = session.Debug(ctx);
    ASSERT_TRUE(exp.ok()) << exp.status().ToString();
    EXPECT_FALSE(exp->partial);
    EXPECT_EQ(faults.hits("ranker/shard"), num_shards);
  }
}

/// Tripping the per-shard site into a cancellation must degrade to a
/// clean PARTIAL explanation (the anytime contract), with every
/// checked-in engine still usable on the next run.
TEST(ShardFaultMatrixTest, ShardSiteCancelDegradesToPartialThenRecovers) {
  auto db = ShardedSmallDb(3);
  Session session(db);
  PrepareSession(session);

  auto source = std::make_shared<CancellationSource>();
  FaultInjector faults;
  FaultInjector::Fault fault;
  fault.trip = source;
  faults.Arm("ranker/shard", fault);
  ExecContext ctx;
  ctx.token = source->token();
  ctx.faults = &faults;
  auto cancelled = session.Debug(ctx);
  ASSERT_TRUE(cancelled.ok()) << cancelled.status().ToString();
  EXPECT_TRUE(cancelled->partial);

  // The next (fault-free) run completes and finds the anomaly.
  auto clean = session.Debug();
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_FALSE(clean->partial);
  ASSERT_FALSE(clean->predicates.empty());
  EXPECT_NE(clean->predicates[0].predicate.ToString().find("tag = 'bad'"),
            std::string::npos)
      << clean->predicates[0].predicate.ToString();
}

}  // namespace
}  // namespace dbwipes
