// Anytime-engine tests: the fault matrix (every DBW_FAULT site in the
// pipeline degrades cleanly), deadline and cancellation wind-down with
// the deterministic prefix-cut guarantee, resource budgets, and the
// Service's set_deadline/cancel commands. Runs under the asan and tsan
// presets via the `faults` ctest label.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "dbwipes/common/random.h"
#include "dbwipes/core/predicate_ranker.h"
#include "dbwipes/core/preprocessor.h"
#include "dbwipes/core/service.h"
#include "dbwipes/datagen/synthetic.h"
#include "dbwipes/expr/parser.h"
#include "dbwipes/query/executor.h"
#include "dbwipes/storage/shard.h"

namespace dbwipes {
namespace {

// ---------- shared scenarios ----------

/// Small end-to-end scenario (the service_test dataset): 4 groups, two
/// of them spoiled by 'bad'-tagged high readings.
std::shared_ptr<Database> MakeSmallDb() {
  Rng rng(41);
  auto t = std::make_shared<Table>(Schema{{"g", DataType::kInt64},
                                          {"tag", DataType::kString},
                                          {"v", DataType::kDouble}},
                                   "w");
  for (int g = 0; g < 4; ++g) {
    for (int i = 0; i < 40; ++i) {
      const bool bad = g >= 2 && i < 8;
      DBW_CHECK_OK(t->AppendRow({Value(static_cast<int64_t>(g)),
                                 Value(bad ? "bad" : "fine"),
                                 Value(bad ? rng.Normal(100, 2)
                                           : rng.Normal(10, 2))}));
    }
  }
  auto db = std::make_shared<Database>();
  db->RegisterTable(t);
  // Shard the world: the fault matrix and the deadline/cancel tests
  // then exercise the shard-parallel ranking path (which is where the
  // "ranker/shard" site lives) on top of everything they already cover
  // — the sharded pipeline is bit-identical to the fused one, so no
  // expectation changes.
  db->RegisterShardSet("w", *ShardSet::Create(*t, 3));
  return db;
}

/// Everything RankAnytime consumes on the acceptance-scale scenario
/// (100k rows, 8 attributes, ~1600 candidate predicates). Built once.
struct RankProblem {
  LabeledDataset data;
  QueryResult result;
  std::vector<size_t> selected_groups;
  ErrorMetricPtr metric;
  std::vector<RowId> suspects;
  std::vector<RowId> reference;
  double per_group_baseline = 0.0;
  std::vector<EnumeratedPredicate> predicates;
};

const RankProblem& BigProblem() {
  static const RankProblem* problem = [] {
    SyntheticOptions gen;
    gen.num_rows = 100000;
    gen.num_numeric_attrs = 4;
    gen.num_categorical_attrs = 4;
    gen.anomaly_selectivity = 0.03;

    auto* p = new RankProblem();
    p->data = *GenerateSyntheticDataset(gen);
    AggregateQuery query =
        *ParseQuery("SELECT g, avg(v) AS a FROM synthetic GROUP BY g");
    p->result = *ExecuteQuery(query, *p->data.table);
    for (size_t g = 0; g < p->result.num_groups(); ++g) {
      if (p->result.AggValue(g, 0) >= 50.8) p->selected_groups.push_back(g);
    }
    p->metric = TooHigh(50.0);
    PreprocessResult pre = *Preprocessor::Run(*p->data.table, p->result,
                                              p->selected_groups, *p->metric);
    p->suspects = pre.suspect_inputs;
    p->per_group_baseline = pre.per_group_baseline_error;
    std::vector<const TupleInfluence*> positive;
    for (const TupleInfluence& ti : pre.influences) {
      if (ti.influence > 0.0) positive.push_back(&ti);
    }
    for (size_t i = 0; i < positive.size() / 4; ++i) {
      p->reference.push_back(positive[i]->row);
    }
    std::sort(p->reference.begin(), p->reference.end());

    // Candidate predicates: threshold sweeps + categorical equalities
    // + two-clause conjunctions, as a real Debug() enumerates.
    std::vector<Clause> numeric, categorical;
    for (size_t a = 0; a < gen.num_numeric_attrs; ++a) {
      const std::string col = "a" + std::to_string(a);
      for (int t = -12; t <= 12; ++t) {
        const double cut = t / 6.0;
        numeric.push_back(Clause::Make(col, CompareOp::kGe, Value(cut)));
        numeric.push_back(Clause::Make(col, CompareOp::kLe, Value(cut)));
      }
    }
    for (size_t c = 0; c < gen.num_categorical_attrs; ++c) {
      const std::string col = "c" + std::to_string(c);
      for (size_t k = 0; k < gen.categorical_cardinality; ++k) {
        categorical.push_back(Clause::Make(
            col, CompareOp::kEq, Value("cat_" + std::to_string(k))));
      }
    }
    auto add = [p](Predicate pred) {
      EnumeratedPredicate ep;
      ep.predicate = std::move(pred);
      ep.strategy = "test";
      p->predicates.push_back(std::move(ep));
    };
    for (const Clause& c : numeric) add(Predicate({c}));
    for (const Clause& c : categorical) add(Predicate({c}));
    for (size_t i = 0; i < categorical.size(); ++i) {
      for (size_t j = i % 7; j < numeric.size(); j += 7) {
        add(Predicate({categorical[i], numeric[j]}));
      }
    }
    return p;
  }();
  return *problem;
}

Result<RankOutcome> RunAnytime(const RankProblem& p, const ExecContext& ctx,
                               size_t threads = 0) {
  RankerOptions opts;
  opts.num_threads = threads;
  PredicateRanker ranker(opts);
  return ranker.RankAnytime(*p.data.table, p.result, p.selected_groups,
                            *p.metric, /*agg_index=*/0, p.suspects,
                            p.reference, p.per_group_baseline, p.predicates,
                            ctx);
}

/// The prefix-consistency oracle: a partial ranking must equal a full
/// (uninterrupted) run restricted to the first `scored_prefix`
/// candidates — same predicates, same order, same scores.
void ExpectPrefixConsistent(const RankProblem& p, const RankOutcome& got,
                            size_t threads) {
  ASSERT_LE(got.scored_prefix, p.predicates.size());
  std::vector<EnumeratedPredicate> prefix(
      p.predicates.begin(),
      p.predicates.begin() + static_cast<ptrdiff_t>(got.scored_prefix));
  if (prefix.empty()) {
    EXPECT_TRUE(got.predicates.empty());
    return;
  }
  RankerOptions opts;
  opts.num_threads = threads;
  PredicateRanker ranker(opts);
  auto full = ranker.Rank(*p.data.table, p.result, p.selected_groups,
                          *p.metric, /*agg_index=*/0, p.suspects, p.reference,
                          p.per_group_baseline, prefix);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_EQ(got.predicates.size(), full->size());
  for (size_t i = 0; i < full->size(); ++i) {
    EXPECT_EQ(got.predicates[i].predicate.CanonicalString(),
              (*full)[i].predicate.CanonicalString())
        << "rank " << i;
    EXPECT_DOUBLE_EQ(got.predicates[i].score, (*full)[i].score) << i;
  }
}

// ---------- fault matrix ----------

/// Arming any registered site with an error must surface as a clean
/// error Status from the full pipeline — never a crash, never a
/// silently wrong result.
TEST(FaultMatrixTest, EverySiteErrorsCleanly) {
  auto db = MakeSmallDb();
  for (const std::string& site : AllFaultSites()) {
    Session session(db);
    ASSERT_TRUE(
        session.ExecuteSql("SELECT g, avg(v) AS a FROM w GROUP BY g").ok());
    ASSERT_TRUE(session.SelectResultsInRange("a", 20, 1e9).ok());
    ASSERT_TRUE(session.SetMetric(TooHigh(12.0)).ok());

    FaultInjector faults;
    faults.ArmError(site, Status::IoError("injected at " + site));
    ExecContext ctx;
    ctx.faults = &faults;
    auto exp = session.Debug(ctx);
    ASSERT_FALSE(exp.ok()) << site << " swallowed the injected fault";
    EXPECT_TRUE(exp.status().IsIoError()) << site << ": "
                                          << exp.status().ToString();
    EXPECT_NE(exp.status().ToString().find(site), std::string::npos) << site;
    EXPECT_GE(faults.hits(site), 1u) << site << " never hit — dead site?";
  }
}

/// Arming any site to trip the run's own cancellation source must
/// yield a *partial* explanation (ok, flagged) — the anytime contract.
TEST(FaultMatrixTest, EverySiteCancelsToPartial) {
  auto db = MakeSmallDb();
  for (const std::string& site : AllFaultSites()) {
    Session session(db);
    ASSERT_TRUE(
        session.ExecuteSql("SELECT g, avg(v) AS a FROM w GROUP BY g").ok());
    ASSERT_TRUE(session.SelectResultsInRange("a", 20, 1e9).ok());
    ASSERT_TRUE(session.SetMetric(TooHigh(12.0)).ok());

    auto source = std::make_shared<CancellationSource>();
    FaultInjector faults;
    FaultInjector::Fault fault;
    fault.trip = source;
    faults.Arm(site, fault);
    ExecContext ctx;
    ctx.token = source->token();
    ctx.faults = &faults;
    auto exp = session.Debug(ctx);
    ASSERT_TRUE(exp.ok()) << site << ": " << exp.status().ToString();
    EXPECT_TRUE(exp->partial) << site << " completed despite cancellation";
    EXPECT_NE(exp->partial_reason.find("Cancelled"), std::string::npos)
        << site << ": " << exp->partial_reason;
    EXPECT_GE(faults.hits(site), 1u) << site << " never hit — dead site?";
  }
}

/// Latency faults exercise the sites' pass-through path: the pipeline
/// must still complete (and completely) when a site merely stalls.
TEST(FaultMatrixTest, LatencyFaultsDoNotChangeResults) {
  auto db = MakeSmallDb();
  Session session(db);
  ASSERT_TRUE(
      session.ExecuteSql("SELECT g, avg(v) AS a FROM w GROUP BY g").ok());
  ASSERT_TRUE(session.SelectResultsInRange("a", 20, 1e9).ok());
  ASSERT_TRUE(session.SetMetric(TooHigh(12.0)).ok());
  Explanation baseline = *session.Debug();

  FaultInjector faults;
  FaultInjector::Fault slow;
  slow.latency_ms = 1.0;
  slow.count = 3;  // keep the test fast: per-block sites hit often
  for (const std::string& site : AllFaultSites()) faults.Arm(site, slow);
  ExecContext ctx;
  ctx.faults = &faults;
  auto exp = session.Debug(ctx);
  ASSERT_TRUE(exp.ok()) << exp.status().ToString();
  EXPECT_FALSE(exp->partial);
  ASSERT_EQ(exp->predicates.size(), baseline.predicates.size());
  for (size_t i = 0; i < baseline.predicates.size(); ++i) {
    EXPECT_EQ(exp->predicates[i].predicate.CanonicalString(),
              baseline.predicates[i].predicate.CanonicalString());
  }
}

// ---------- deadline ----------

TEST(AnytimeDeadlineTest, TenMsDeadlineReturnsPartialWithinFiveX) {
  const RankProblem& p = BigProblem();
  const double deadline_ms = 10.0;
  for (size_t threads : {size_t{1}, size_t{0}}) {
    ExecContext ctx;
    ctx.deadline = Deadline::After(deadline_ms);
    const auto t0 = std::chrono::steady_clock::now();
    auto outcome = RunAnytime(p, ctx, threads);
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    // The full run takes on the order of seconds, so a 10 ms deadline
    // must cut it short...
    EXPECT_TRUE(outcome->partial) << "threads=" << threads;
    EXPECT_NE(outcome->reason.find("Deadline"), std::string::npos)
        << outcome->reason;
    EXPECT_LT(outcome->scored_prefix, p.predicates.size());
    // ...and wind-down is bounded: well within 5x the deadline.
    EXPECT_LT(elapsed_ms, 5.0 * deadline_ms) << "threads=" << threads;
    ExpectPrefixConsistent(p, *outcome, threads);
  }
}

TEST(AnytimeDeadlineTest, InfiniteDeadlineCompletes) {
  const RankProblem& p = BigProblem();
  ExecContext ctx;  // no deadline, no token, no budget
  auto outcome = RunAnytime(p, ctx);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->partial);
  EXPECT_EQ(outcome->scored_prefix, p.predicates.size());
  EXPECT_EQ(outcome->total_candidates, p.predicates.size());
}

// ---------- cancellation ----------

TEST(AnytimeCancelTest, MidRunCancelYieldsConsistentPrefix) {
  const RankProblem& p = BigProblem();
  CancellationSource source;
  ExecContext ctx;
  ctx.token = source.token();
  std::thread canceller([&source] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    source.Cancel("user hit stop");
  });
  auto outcome = RunAnytime(p, ctx);
  canceller.join();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_TRUE(outcome->partial);
  EXPECT_NE(outcome->reason.find("user hit stop"), std::string::npos)
      << outcome->reason;
  ExpectPrefixConsistent(p, *outcome, 0);
}

// ---------- budgets ----------

TEST(AnytimeBudgetTest, ScoredRemovalCapCutsDeterministicPrefix) {
  const RankProblem& p = BigProblem();
  for (size_t threads : {size_t{1}, size_t{0}}) {
    ResourceBudget budget(0, 0, /*max_scored_removals=*/10 *
                                    PredicateRanker::kScoreBlock);
    ExecContext ctx;
    ctx.budget = &budget;
    auto outcome = RunAnytime(p, ctx, threads);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_TRUE(outcome->partial);
    EXPECT_NE(outcome->reason.find("Resource exhausted"), std::string::npos)
        << outcome->reason;
    EXPECT_TRUE(budget.removals_exhausted());
    EXPECT_LT(outcome->scored_prefix, p.predicates.size());
    ExpectPrefixConsistent(p, *outcome, threads);
  }
}

TEST(AnytimeBudgetTest, BitmapCapFallsBackToBoxedMatching) {
  // Starving the bitmap cache must degrade Materialize to per-row
  // matching, not fail or truncate: same complete ranking either way.
  const RankProblem& p = BigProblem();
  auto unbudgeted = RunAnytime(p, ExecContext::None());
  ASSERT_TRUE(unbudgeted.ok());

  ResourceBudget budget(0, /*max_bitmap_bytes=*/64, 0);
  ExecContext ctx;
  ctx.budget = &budget;
  auto outcome = RunAnytime(p, ctx);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_FALSE(outcome->partial) << outcome->reason;
  EXPECT_TRUE(budget.bitmap_exhausted());
  ASSERT_EQ(outcome->predicates.size(), unbudgeted->predicates.size());
  for (size_t i = 0; i < outcome->predicates.size(); ++i) {
    EXPECT_EQ(outcome->predicates[i].predicate.CanonicalString(),
              unbudgeted->predicates[i].predicate.CanonicalString());
  }
}

TEST(AnytimeBudgetTest, PredicateCapFlagsPipelinePartial) {
  auto db = MakeSmallDb();
  Session session(db);
  ASSERT_TRUE(
      session.ExecuteSql("SELECT g, avg(v) AS a FROM w GROUP BY g").ok());
  ASSERT_TRUE(session.SelectResultsInRange("a", 20, 1e9).ok());
  ASSERT_TRUE(session.SetMetric(TooHigh(12.0)).ok());

  ResourceBudget budget(/*max_candidate_predicates=*/1, 0, 0);
  ExecContext ctx;
  ctx.budget = &budget;
  auto exp = session.Debug(ctx);
  ASSERT_TRUE(exp.ok()) << exp.status().ToString();
  EXPECT_TRUE(exp->partial);
  EXPECT_TRUE(budget.predicates_exhausted());
  EXPECT_LE(exp->total_enumerated, 1u);
  EXPECT_FALSE(exp->predicates.empty());  // the admitted prefix is ranked
}

// ---------- service protocol ----------

TEST(ServiceAnytimeTest, SetDeadlineProducesPartialResponse) {
  Service service(MakeSmallDb());
  ASSERT_NE(service.Execute("sql SELECT g, avg(v) AS a FROM w GROUP BY g")
                .find("\"ok\": true"),
            std::string::npos);
  ASSERT_NE(service.Execute("select_range a 20 1e9").find("\"ok\": true"),
            std::string::npos);
  ASSERT_NE(service.Execute("metric too_high 12").find("\"ok\": true"),
            std::string::npos);

  // An already-expired deadline guarantees a partial debug regardless
  // of machine speed.
  EXPECT_NE(service.Execute("set_deadline 0.000001").find("\"ok\": true"),
            std::string::npos);
  const std::string partial = service.Execute("debug");
  EXPECT_NE(partial.find("\"ok\": true"), std::string::npos) << partial;
  EXPECT_NE(partial.find("\"partial\": true"), std::string::npos) << partial;
  EXPECT_NE(partial.find("\"reason\""), std::string::npos) << partial;

  // Clearing the deadline restores complete runs.
  EXPECT_NE(service.Execute("set_deadline 0").find("\"deadline_ms\": null"),
            std::string::npos);
  const std::string complete = service.Execute("debug");
  EXPECT_NE(complete.find("\"ok\": true"), std::string::npos);
  EXPECT_EQ(complete.find("\"partial\": true,"), std::string::npos)
      << complete;
}

TEST(ServiceAnytimeTest, PendingCancelHitsNextDebug) {
  Service service(MakeSmallDb());
  ASSERT_NE(service.Execute("sql SELECT g, avg(v) AS a FROM w GROUP BY g")
                .find("\"ok\": true"),
            std::string::npos);
  ASSERT_NE(service.Execute("select_range a 20 1e9").find("\"ok\": true"),
            std::string::npos);
  ASSERT_NE(service.Execute("metric too_high 12").find("\"ok\": true"),
            std::string::npos);

  EXPECT_NE(service.Execute("cancel").find("\"cancelled\": \"pending\""),
            std::string::npos);
  const std::string out = service.Execute("debug");
  EXPECT_NE(out.find("\"partial\": true"), std::string::npos) << out;
  EXPECT_NE(out.find("Cancelled"), std::string::npos) << out;

  // The pending flag is one-shot: the following debug completes.
  const std::string again = service.Execute("debug");
  EXPECT_EQ(again.find("\"partial\": true,"), std::string::npos) << again;
}

}  // namespace
}  // namespace dbwipes
