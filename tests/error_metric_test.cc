#include <gtest/gtest.h>

#include <cmath>

#include "dbwipes/core/error_metric.h"

namespace dbwipes {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(ErrorMetricTest, TooHighIsThePapersDiff) {
  auto m = TooHigh(70.0);
  // diff(S) = max(0, max_i(s_i - c)).
  EXPECT_DOUBLE_EQ(m->Error({60.0, 68.0}), 0.0);
  EXPECT_DOUBLE_EQ(m->Error({120.0, 75.0}), 50.0);
  EXPECT_DOUBLE_EQ(m->Error({}), 0.0);
  EXPECT_NE(m->Describe().find("too high"), std::string::npos);
}

TEST(ErrorMetricTest, TooLow) {
  auto m = TooLow(0.0);
  EXPECT_DOUBLE_EQ(m->Error({5.0, 3.0}), 0.0);
  EXPECT_DOUBLE_EQ(m->Error({-40.0, 2.0}), 40.0);
}

TEST(ErrorMetricTest, NotEqual) {
  auto m = NotEqual(10.0);
  EXPECT_DOUBLE_EQ(m->Error({10.0}), 0.0);
  EXPECT_DOUBLE_EQ(m->Error({7.0, 14.0}), 4.0);
}

TEST(ErrorMetricTest, TotalVariants) {
  EXPECT_DOUBLE_EQ(TotalAbove(10.0)->Error({12.0, 15.0, 8.0}), 7.0);
  EXPECT_DOUBLE_EQ(TotalBelow(10.0)->Error({12.0, 5.0, 9.0}), 6.0);
}

TEST(ErrorMetricTest, NaNValuesContributeNothing) {
  EXPECT_DOUBLE_EQ(TooHigh(0.0)->Error({kNaN, 5.0}), 5.0);
  EXPECT_DOUBLE_EQ(TooHigh(0.0)->Error({kNaN}), 0.0);
  EXPECT_DOUBLE_EQ(TotalBelow(10.0)->Error({kNaN, kNaN}), 0.0);
}

TEST(ErrorMetricTest, CustomLambda) {
  auto m = Custom("squared overshoot", [](const std::vector<double>& v) {
    double s = 0.0;
    for (double x : v) s += x * x;
    return s;
  });
  EXPECT_DOUBLE_EQ(m->Error({3.0, 4.0}), 25.0);
  EXPECT_EQ(m->Describe(), "squared overshoot");
}

TEST(ErrorMetricTest, AsErrorFnAdapts) {
  auto m = TooHigh(1.0);
  ErrorFn fn = m->AsErrorFn();
  EXPECT_DOUBLE_EQ(fn({3.0}), 2.0);
}

TEST(SuggestMetricsTest, HighSelectionOffersTooHighFirst) {
  auto suggestions =
      SuggestMetrics(AggKind::kAvg, {100.0, 110.0}, {20.0, 21.0, 22.0});
  ASSERT_GE(suggestions.size(), 3u);
  EXPECT_EQ(suggestions[0].label, "values are too high");
  // Default expected = median of the unselected groups.
  EXPECT_DOUBLE_EQ(suggestions[0].default_expected, 21.0);
  auto metric = suggestions[0].make(suggestions[0].default_expected);
  EXPECT_DOUBLE_EQ(metric->Error({100.0}), 79.0);
}

TEST(SuggestMetricsTest, LowSelectionOffersTooLowFirst) {
  auto suggestions =
      SuggestMetrics(AggKind::kSum, {-500.0}, {100.0, 200.0, 300.0});
  EXPECT_EQ(suggestions[0].label, "values are too low");
}

TEST(SuggestMetricsTest, SumGetsCumulativeVariants) {
  auto for_sum = SuggestMetrics(AggKind::kSum, {1.0}, {2.0});
  auto for_avg = SuggestMetrics(AggKind::kAvg, {1.0}, {2.0});
  EXPECT_GT(for_sum.size(), for_avg.size());
}

TEST(SuggestMetricsTest, EmptyUnselectedFallsBackToSelection) {
  auto suggestions = SuggestMetrics(AggKind::kAvg, {10.0, 20.0}, {});
  EXPECT_DOUBLE_EQ(suggestions[0].default_expected, 15.0);
}

TEST(SuggestMetricsTest, AllNaNDefaultsToZero) {
  auto suggestions = SuggestMetrics(AggKind::kAvg, {kNaN}, {kNaN});
  EXPECT_DOUBLE_EQ(suggestions[0].default_expected, 0.0);
}

}  // namespace
}  // namespace dbwipes
