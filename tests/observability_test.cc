// Observability-layer tests: the metrics registry's write/snapshot
// behavior, counter consistency across a real Explain (MatchEngine
// cache hits + misses == clause lookups), per-Explain profiles, and
// the tracer's Chrome trace_event export — including validity and
// strict per-thread nesting under forced-concurrent recording.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "dbwipes/common/metrics.h"
#include "dbwipes/common/random.h"
#include "dbwipes/common/trace.h"
#include "dbwipes/core/export.h"
#include "dbwipes/core/service.h"

namespace dbwipes {
namespace {

std::shared_ptr<Database> MakeDb() {
  Rng rng(41);
  auto t = std::make_shared<Table>(Schema{{"g", DataType::kInt64},
                                          {"tag", DataType::kString},
                                          {"v", DataType::kDouble}},
                                   "w");
  for (int g = 0; g < 4; ++g) {
    for (int i = 0; i < 40; ++i) {
      const bool bad = g >= 2 && i < 8;
      DBW_CHECK_OK(t->AppendRow({Value(static_cast<int64_t>(g)),
                                 Value(bad ? "bad" : "fine"),
                                 Value(bad ? rng.Normal(100, 2)
                                           : rng.Normal(10, 2))}));
    }
  }
  auto db = std::make_shared<Database>();
  db->RegisterTable(t);
  return db;
}

/// Minimal JSON validity check (same discipline as the robustness
/// tests): balanced braces/brackets outside strings, strings closed.
bool IsWellFormedJson(const std::string& s, char open = '{') {
  if (s.empty() || s[0] != open) return false;
  std::vector<char> stack;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        if (i + 1 >= s.size()) return false;
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      stack.push_back(c);
    } else if (c == '}' || c == ']') {
      if (stack.empty()) return false;
      const char o = stack.back();
      stack.pop_back();
      if ((c == '}') != (o == '{')) return false;
      if (stack.empty()) {
        return s.find_first_not_of(" \t\r\n", i + 1) == std::string::npos;
      }
    }
  }
  return false;
}

/// Extracts the integer value of `"name": <digits>` from a metrics
/// snapshot / JSON document; -1 when absent.
int64_t JsonInt(const std::string& json, const std::string& name) {
  const std::string key = "\"" + name + "\":";
  size_t pos = json.find(key);
  if (pos == std::string::npos) return -1;
  pos += key.size();
  while (pos < json.size() && (json[pos] == ' ')) ++pos;
  size_t end = pos;
  while (end < json.size() && (std::isdigit(json[end]) != 0)) ++end;
  if (end == pos) return -1;
  return std::stoll(json.substr(pos, end - pos));
}

// ---------- MetricsRegistry ----------

TEST(MetricsTest, CountersGaugesHistograms) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  MetricCounter* c = reg.GetCounter("test.counter");
  MetricGauge* g = reg.GetGauge("test.gauge");
  MetricHistogram* h = reg.GetHistogram("test.hist");

  c->ResetForTest();
  g->Set(0);
  h->ResetForTest();

  c->Increment();
  c->Increment(4);
  EXPECT_EQ(c->value(), 5u);

  g->Set(7);
  g->Add(-3);
  EXPECT_EQ(g->value(), 4);

  h->Observe(0.05);   // 50us: lands in the <= 0.05ms bucket (index 5)
  h->Observe(3.0);    // <= 5ms
  h->Observe(1e9);    // overflow
  EXPECT_EQ(h->count(), 3u);
  EXPECT_GT(h->sum_ms(), 1e8);
  EXPECT_EQ(h->bucket(5), 1u);
  EXPECT_EQ(h->bucket(MetricHistogram::kNumBuckets - 1), 1u);
  EXPECT_EQ(h->overflow(), 1u);

  // Same name returns the same instance (pointers are stable).
  EXPECT_EQ(reg.GetCounter("test.counter"), c);
}

TEST(MetricsTest, SnapshotJsonIsWellFormedAndCarriesValues) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.snapshot")->ResetForTest();
  reg.GetCounter("test.snapshot")->Increment(42);
  const std::string json = reg.SnapshotJson(/*pretty=*/false);
  EXPECT_TRUE(IsWellFormedJson(json)) << json.substr(0, 200);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_EQ(JsonInt(json, "test.snapshot"), 42);
}

TEST(MetricsTest, ResetForTestZeroesWithoutInvalidatingPointers) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  MetricCounter* c = reg.GetCounter("test.reset");
  c->Increment(9);
  reg.ResetForTest();
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  EXPECT_EQ(c->value(), 1u);
}

// ---------- Counter consistency over a real pipeline ----------

/// Drives a full debug through the Service and checks the `stats`
/// snapshot's cross-counter laws — the acceptance criterion that
/// MatchEngine hits + misses equals clause lookups, and that the
/// pipeline counters moved with the run.
TEST(ObservabilityTest, StatsCountersConsistentWithRun) {
  MetricsRegistry::Global().ResetForTest();
  Service service(MakeDb());
  ASSERT_NE(service.Execute("sql SELECT g, avg(v) AS a FROM w GROUP BY g")
                .find("\"ok\": true"),
            std::string::npos);
  ASSERT_NE(service.Execute("select_range a 20 1e9").find("\"ok\": true"),
            std::string::npos);
  ASSERT_NE(service.Execute("inputs_where v > 50").find("\"ok\": true"),
            std::string::npos);
  ASSERT_NE(service.Execute("metric too_high 12").find("\"ok\": true"),
            std::string::npos);
  ASSERT_NE(service.Execute("debug").find("\"ok\": true"),
            std::string::npos);

  const std::string stats = service.Execute("stats");
  ASSERT_NE(stats.find("\"ok\": true"), std::string::npos);
  EXPECT_TRUE(IsWellFormedJson(stats)) << stats.substr(0, 300);

  const int64_t lookups = JsonInt(stats, "match.clause_lookups");
  const int64_t hits = JsonInt(stats, "match.cache_hits");
  const int64_t misses = JsonInt(stats, "match.cache_misses");
  ASSERT_GE(lookups, 0) << stats;
  ASSERT_GE(hits, 0);
  ASSERT_GE(misses, 0);
  EXPECT_EQ(hits + misses, lookups);
  EXPECT_GT(lookups, 0);

  // The fused-conjunction cache obeys the same shape of law: every
  // eligible multi-clause predicate counts exactly one of hit /
  // compile / fallback per materialize batch.
  const int64_t f_lookups = JsonInt(stats, "match.fused_lookups");
  const int64_t f_hits = JsonInt(stats, "match.fused_hits");
  const int64_t f_compiles = JsonInt(stats, "match.fused_compiles");
  const int64_t f_fallbacks = JsonInt(stats, "match.fused_fallbacks");
  ASSERT_GE(f_lookups, 0) << stats;
  EXPECT_EQ(f_hits + f_compiles + f_fallbacks, f_lookups);
  EXPECT_GT(f_lookups, 0);
  EXPECT_GT(f_compiles, 0);  // the debug run lowered real programs
  EXPECT_GT(JsonInt(stats, "match.fused_evals"), 0);

  EXPECT_EQ(JsonInt(stats, "explain.runs"), 1);
  // The merge stage re-ranks with its own PredicateRanker, so one
  // debug yields the main ranking run plus the merger's.
  EXPECT_GE(JsonInt(stats, "ranker.runs"), 1);
  EXPECT_GE(JsonInt(stats, "sql.queries"), 1);
  EXPECT_GE(JsonInt(stats, "service.commands"), 5);
  EXPECT_GT(JsonInt(stats, "enumerate.predicates"), 0);
  EXPECT_GT(JsonInt(stats, "ranker.predicates_scored"), 0);
}

// ---------- Per-Explain profile ----------

TEST(ObservabilityTest, ProfileAttachedAndInternallyConsistent) {
  Service service(MakeDb());
  service.Execute("sql SELECT g, avg(v) AS a FROM w GROUP BY g");
  service.Execute("select_range a 20 1e9");
  service.Execute("inputs_where v > 50");
  service.Execute("metric too_high 12");
  service.Execute("debug");

  const Explanation& exp = service.session().explanation();
  const ExplainProfile& p = exp.profile;
  EXPECT_GT(p.total_ms, 0.0);
  EXPECT_EQ(p.table_rows, 160u);
  EXPECT_GT(p.suspect_rows, 0u);
  EXPECT_GT(p.candidate_datasets, 0u);
  EXPECT_GT(p.predicates_enumerated, 0u);
  EXPECT_EQ(p.predicates_scored, exp.ranked_considered);
  // Complete run: every scoring block finished.
  EXPECT_FALSE(p.partial);
  EXPECT_EQ(p.scoring_blocks_done, p.scoring_blocks_total);
  EXPECT_EQ(p.block_ms.size(), p.scoring_blocks_total);
  // The cache law holds inside the profile too.
  EXPECT_TRUE(p.used_match_kernels);
  EXPECT_EQ(p.cache_hits + p.cache_misses, p.clause_lookups);
  EXPECT_GT(p.clause_lookups, 0u);
  // Fused law at profile scope, plus the tier the run dispatched to.
  EXPECT_EQ(p.fused_hits + p.fused_compiles + p.fused_fallbacks,
            p.fused_lookups);
  EXPECT_GT(p.fused_lookups, 0u);
  EXPECT_TRUE(p.simd_tier == "avx2" || p.simd_tier == "scalar")
      << p.simd_tier;
  // Stage clocks mirror the explanation's.
  EXPECT_DOUBLE_EQ(p.preprocess_ms, exp.preprocess_ms);
  EXPECT_DOUBLE_EQ(p.rank_ms, exp.rank_ms);

  const std::string json = ExplainProfileToJson(p, /*pretty=*/false);
  EXPECT_TRUE(IsWellFormedJson(json)) << json.substr(0, 300);
  EXPECT_NE(json.find("\"match_engine\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_pool\""), std::string::npos);
}

TEST(ObservabilityTest, ProfileCommandTogglesDebugAttachment) {
  Service service(MakeDb());
  service.Execute("sql SELECT g, avg(v) AS a FROM w GROUP BY g");
  service.Execute("select_range a 20 1e9");
  service.Execute("inputs_where v > 50");
  service.Execute("metric too_high 12");

  // Off by default: no top-level profile field.
  std::string debug = service.Execute("debug");
  EXPECT_EQ(debug.find("\"profile\": {\"rid\""), std::string::npos);

  EXPECT_NE(service.Execute("profile on").find("\"ok\": true"),
            std::string::npos);
  debug = service.Execute("debug");
  EXPECT_NE(debug.find("\"profile\": {\"rid\""), std::string::npos)
      << debug.substr(0, 200);
  EXPECT_TRUE(IsWellFormedJson(debug));

  EXPECT_NE(service.Execute("profile off").find("\"ok\": true"),
            std::string::npos);
  debug = service.Execute("debug");
  EXPECT_EQ(debug.find("\"profile\": {\"rid\""), std::string::npos);
}

// ---------- Tracer ----------

/// One exported Chrome trace event, scraped from the JSON.
struct ScrapedEvent {
  std::string name;
  std::string ph;
  double ts = 0.0;
  double dur = 0.0;
  int64_t tid = -1;
};

std::vector<ScrapedEvent> ScrapeEvents(const std::string& json) {
  std::vector<ScrapedEvent> out;
  size_t pos = 0;
  while ((pos = json.find("{\"name\":", pos)) != std::string::npos) {
    const size_t end = json.find('}', pos);
    const std::string obj = json.substr(pos, end - pos + 1);
    ScrapedEvent e;
    size_t q = obj.find("\"name\":\"") + 8;
    e.name = obj.substr(q, obj.find('"', q) - q);
    q = obj.find("\"ph\":\"") + 6;
    e.ph = obj.substr(q, obj.find('"', q) - q);
    q = obj.find("\"ts\":");
    if (q != std::string::npos) e.ts = std::stod(obj.substr(q + 5));
    q = obj.find("\"dur\":");
    if (q != std::string::npos) e.dur = std::stod(obj.substr(q + 6));
    q = obj.find("\"tid\":");
    if (q != std::string::npos) e.tid = std::stoll(obj.substr(q + 6));
    out.push_back(std::move(e));
    pos = end;
  }
  return out;
}

/// Full pipeline with tracing on: the export is valid Chrome
/// trace_event JSON and contains a span for every backend stage.
TEST(ObservabilityTest, TraceCoversEveryPipelineStage) {
  Tracer& tracer = Tracer::Global();
  tracer.SetEnabled(false);
  tracer.Clear();

  Service service(MakeDb());
  EXPECT_NE(service.Execute("trace on").find("\"ok\": true"),
            std::string::npos);
  service.Execute("sql SELECT g, avg(v) AS a FROM w GROUP BY g");
  service.Execute("select_range a 20 1e9");
  service.Execute("inputs_where v > 50");
  service.Execute("metric too_high 12");
  service.Execute("debug");
  EXPECT_NE(service.Execute("trace off").find("\"ok\": true"),
            std::string::npos);

  const std::string json = tracer.ExportJson();
  EXPECT_TRUE(IsWellFormedJson(json)) << json.substr(0, 300);
  ASSERT_NE(json.find("\"traceEvents\""), std::string::npos);

  for (const char* span : {
           "service/debug", "session/debug", "pipeline/explain",
           "pipeline/preprocess", "pipeline/enumerate",
           "pipeline/predicates", "pipeline/rank", "pipeline/merge",
           "merge/rerank", "enumerate/clean",
           "enumerate/datasets", "enumerate/predicates", "scorer/create",
           "ranker/rank", "match/materialize", "sql/parse", "sql/execute",
       }) {
    EXPECT_NE(json.find("\"name\":\"" + std::string(span) + "\""),
              std::string::npos)
        << "missing span: " << span;
  }
  tracer.Clear();
}

TEST(ObservabilityTest, TraceDumpWritesLoadableFile) {
  Tracer& tracer = Tracer::Global();
  tracer.SetEnabled(false);
  tracer.Clear();

  Service service(MakeDb());
  service.Execute("trace on");
  service.Execute("sql SELECT g, avg(v) AS a FROM w GROUP BY g");
  service.Execute("trace off");
  const std::string path = ::testing::TempDir() + "dbw_trace_test.json";
  const std::string resp = service.Execute("trace " + path);
  EXPECT_NE(resp.find("\"ok\": true"), std::string::npos) << resp;

  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_TRUE(IsWellFormedJson(contents)) << contents.substr(0, 300);
  EXPECT_NE(contents.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(contents.find("sql/parse"), std::string::npos);
  tracer.Clear();
}

/// Forced-concurrent recording: several threads emit nested spans at
/// once; the export must stay valid JSON and every thread's spans must
/// be strictly nested (Chrome/Perfetto reject overlapping siblings on
/// one track).
TEST(ObservabilityTest, ConcurrentSpansExportStrictlyNestedPerThread) {
  Tracer& tracer = Tracer::Global();
  tracer.SetEnabled(false);
  tracer.Clear();
  tracer.SetEnabled(true);

  constexpr int kThreads = 4;
  constexpr int kOuter = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kOuter; ++i) {
        TraceSpan outer("test/outer");
        {
          TraceSpan mid("test/mid");
          { TraceSpan inner("test/inner"); }
          { TraceSpan inner2("test/inner"); }
        }
        { TraceSpan mid2("test/mid"); }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  tracer.SetEnabled(false);

  const std::string json = tracer.ExportJson();
  EXPECT_TRUE(IsWellFormedJson(json)) << json.substr(0, 300);
  std::vector<ScrapedEvent> events = ScrapeEvents(json);
  // 5 spans per outer iteration per thread.
  EXPECT_EQ(events.size(),
            static_cast<size_t>(kThreads) * kOuter * 5);

  // Group by thread; within one thread intervals must nest or be
  // disjoint — never partially overlap.
  std::map<int64_t, std::vector<ScrapedEvent>> by_tid;
  for (const ScrapedEvent& e : events) {
    ASSERT_EQ(e.ph, "X");
    by_tid[e.tid].push_back(e);
  }
  EXPECT_EQ(by_tid.size(), static_cast<size_t>(kThreads));
  for (auto& [tid, evs] : by_tid) {
    for (size_t i = 0; i < evs.size(); ++i) {
      for (size_t j = i + 1; j < evs.size(); ++j) {
        const double a0 = evs[i].ts, a1 = evs[i].ts + evs[i].dur;
        const double b0 = evs[j].ts, b1 = evs[j].ts + evs[j].dur;
        const bool disjoint = a1 <= b0 || b1 <= a0;
        const bool nested = (a0 <= b0 && b1 <= a1) || (b0 <= a0 && a1 <= b1);
        EXPECT_TRUE(disjoint || nested)
            << "tid " << tid << ": spans [" << a0 << "," << a1 << ") and ["
            << b0 << "," << b1 << ") partially overlap";
      }
    }
  }
  tracer.Clear();
}

TEST(ObservabilityTest, DisabledTracerRecordsNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.SetEnabled(false);
  tracer.Clear();
  {
    DBW_TRACE_SPAN("test/ghost");
    tracer.RecordInstant("test/ghost-instant");
  }
  EXPECT_EQ(tracer.num_events(), 0u);
}

// ---------- Service subcommand validation ----------

TEST(ObservabilityTest, UnknownSubcommandsFailWithOffendingToken) {
  Service service(MakeDb());
  const std::string bad = service.Execute("profile bogus");
  EXPECT_NE(bad.find("\"ok\": false"), std::string::npos) << bad;
  EXPECT_NE(bad.find("bogus"), std::string::npos) << bad;

  EXPECT_NE(service.Execute("profile").find("\"ok\": false"),
            std::string::npos);
  EXPECT_NE(service.Execute("trace").find("\"ok\": false"),
            std::string::npos);
}

}  // namespace
}  // namespace dbwipes
