#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "dbwipes/core/evaluation.h"
#include "dbwipes/datagen/fec_generator.h"
#include "dbwipes/datagen/intel_generator.h"
#include "dbwipes/datagen/synthetic.h"
#include "dbwipes/expr/parser.h"
#include "dbwipes/query/executor.h"

namespace dbwipes {
namespace {

// ---------- Intel ----------

IntelOptions SmallIntel() {
  IntelOptions opts;
  opts.duration_days = 2;
  opts.reading_interval_minutes = 15.0;
  opts.faults = {{7, 1440, 360, 120.0}};
  return opts;
}

TEST(IntelGeneratorTest, SchemaAndScale) {
  LabeledDataset d = *GenerateIntelDataset(SmallIntel());
  EXPECT_EQ(d.table->schema().ToString(),
            "sensorid:int64, minute:int64, window:int64, hour:int64, "
            "temp:double, humidity:double, light:double, voltage:double");
  // 54 sensors * 2 days * 96 readings/day, minus ~2% drops.
  const double expected = 54 * 2 * (1440 / 15.0);
  EXPECT_NEAR(static_cast<double>(d.table->num_rows()), expected * 0.98,
              expected * 0.02);
  EXPECT_EQ(d.table->name(), "readings");
}

TEST(IntelGeneratorTest, GroundTruthMatchesitsOwnPredicate) {
  LabeledDataset d = *GenerateIntelDataset(SmallIntel());
  ASSERT_EQ(d.anomalies.size(), 1u);
  // The recorded rows are exactly the rows the description matches.
  ExplanationQuality q =
      *ScorePredicate(*d.table, d.anomalies[0].description,
                      d.anomalies[0].rows);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
}

TEST(IntelGeneratorTest, FaultySensorRunsHot) {
  LabeledDataset d = *GenerateIntelDataset(SmallIntel());
  QueryResult r = *ExecuteQuery(
      *ParseQuery("SELECT sensorid, max(temp) AS m FROM readings "
                  "GROUP BY sensorid"),
      *d.table);
  double faulty_max = 0.0, healthy_max = 0.0;
  for (size_t g = 0; g < r.num_groups(); ++g) {
    const double m = r.AggValue(g, 0);
    if (r.GroupKey(g)[0] == Value(int64_t{7})) {
      faulty_max = m;
    } else {
      healthy_max = std::max(healthy_max, m);
    }
  }
  EXPECT_GT(faulty_max, 100.0);
  EXPECT_LT(healthy_max, 40.0);
}

TEST(IntelGeneratorTest, DiurnalCycleIsVisible) {
  IntelOptions opts = SmallIntel();
  opts.faults.clear();
  opts.drop_rate = 0.0;
  LabeledDataset d = *GenerateIntelDataset(opts);
  EXPECT_TRUE(d.anomalies.empty());
  QueryResult r = *ExecuteQuery(
      *ParseQuery("SELECT hour, avg(temp) AS t FROM readings GROUP BY hour"),
      *d.table);
  double lo = 1e9, hi = -1e9;
  for (size_t g = 0; g < r.num_groups(); ++g) {
    lo = std::min(lo, r.AggValue(g, 0));
    hi = std::max(hi, r.AggValue(g, 0));
  }
  EXPECT_GT(hi - lo, 4.0);  // day/night swing
  EXPECT_GT(lo, 10.0);
  EXPECT_LT(hi, 30.0);
}

TEST(IntelGeneratorTest, Determinism) {
  LabeledDataset a = *GenerateIntelDataset(SmallIntel());
  LabeledDataset b = *GenerateIntelDataset(SmallIntel());
  ASSERT_EQ(a.table->num_rows(), b.table->num_rows());
  for (RowId r = 0; r < a.table->num_rows(); r += 97) {
    EXPECT_EQ(a.table->GetValue(r, 4), b.table->GetValue(r, 4));
  }
  EXPECT_EQ(a.anomalies[0].rows, b.anomalies[0].rows);
}

TEST(IntelGeneratorTest, Validation) {
  IntelOptions opts = SmallIntel();
  opts.num_sensors = 0;
  EXPECT_FALSE(GenerateIntelDataset(opts).ok());
  opts = SmallIntel();
  opts.duration_days = 0;
  EXPECT_FALSE(GenerateIntelDataset(opts).ok());
  opts = SmallIntel();
  opts.faults = {{99, 0, 1, 120.0}};  // sensor out of range
  EXPECT_FALSE(GenerateIntelDataset(opts).ok());
}

// ---------- FEC ----------

FecOptions SmallFec() {
  FecOptions opts;
  opts.num_donations = 5000;
  opts.num_reattributions = 80;
  return opts;
}

TEST(FecGeneratorTest, SchemaAndAnomalyStructure) {
  LabeledDataset d = *GenerateFecDataset(SmallFec());
  EXPECT_EQ(d.table->schema().ToString(),
            "candidate:string, state:string, city:string, "
            "occupation:string, amount:double, day:int64, memo:string");
  ASSERT_EQ(d.anomalies.size(), 1u);
  EXPECT_EQ(d.anomalies[0].rows.size(), 80u);
  // Every anomalous row: negative amount, target candidate, the memo.
  for (RowId r : d.anomalies[0].rows) {
    EXPECT_LT(*d.table->GetValue(r, 4).AsDouble(), 0.0);
    EXPECT_EQ(d.table->GetValue(r, 0), Value("MCCAIN"));
    EXPECT_EQ(d.table->GetValue(r, 6), Value("REATTRIBUTION TO SPOUSE"));
  }
}

TEST(FecGeneratorTest, GroundTruthPredicateIsExact) {
  LabeledDataset d = *GenerateFecDataset(SmallFec());
  ExplanationQuality q = *ScorePredicate(
      *d.table, d.anomalies[0].description, d.anomalies[0].rows);
  EXPECT_DOUBLE_EQ(q.f1, 1.0);
}

TEST(FecGeneratorTest, NegativeSpikeAppearsNearTargetDay) {
  LabeledDataset d = *GenerateFecDataset(SmallFec());
  QueryResult r = *ExecuteQuery(
      *ParseQuery("SELECT day, sum(amount) AS t FROM donations "
                  "WHERE candidate = 'MCCAIN' GROUP BY day"),
      *d.table);
  double worst = 1e18;
  int64_t worst_day = -1;
  for (size_t g = 0; g < r.num_groups(); ++g) {
    if (r.AggValue(g, 0) < worst) {
      worst = r.AggValue(g, 0);
      worst_day = r.GroupKey(g)[0].int64();
    }
  }
  EXPECT_LT(worst, 0.0);
  EXPECT_NEAR(static_cast<double>(worst_day), 500.0, 20.0);
}

TEST(FecGeneratorTest, BenignRefundsExistAndAreNotGroundTruth) {
  FecOptions opts = SmallFec();
  opts.refund_rate = 0.01;
  LabeledDataset d = *GenerateFecDataset(opts);
  Predicate refunds(
      {Clause::Make("memo", CompareOp::kEq, Value("REFUND ISSUED"))});
  auto rows = refunds.Bind(*d.table)->MatchingRows();
  EXPECT_GT(rows.size(), 10u);
  for (RowId r : rows) {
    EXPECT_FALSE(std::binary_search(d.anomalies[0].rows.begin(),
                                    d.anomalies[0].rows.end(), r));
  }
}

TEST(FecGeneratorTest, Validation) {
  FecOptions opts;
  opts.target_candidate = "NOBODY";
  EXPECT_FALSE(GenerateFecDataset(opts).ok());
  opts = FecOptions();
  opts.num_days = 1;
  EXPECT_FALSE(GenerateFecDataset(opts).ok());
  opts = FecOptions();
  opts.num_donations = 0;
  EXPECT_FALSE(GenerateFecDataset(opts).ok());
}

// ---------- synthetic ----------

TEST(SyntheticTest, SelectivityApproximatelyHonored) {
  SyntheticOptions opts;
  opts.num_rows = 40000;
  opts.anomaly_selectivity = 0.05;
  LabeledDataset d = *GenerateSyntheticDataset(opts);
  const double actual = static_cast<double>(d.anomalies[0].rows.size()) /
                        static_cast<double>(opts.num_rows);
  EXPECT_NEAR(actual, 0.05, 0.01);
}

TEST(SyntheticTest, TwoClausePredicateIsExactAndNecessary) {
  SyntheticOptions opts;
  opts.num_rows = 20000;
  opts.anomaly_clauses = 2;
  LabeledDataset d = *GenerateSyntheticDataset(opts);
  // The planted description matches exactly the anomalous rows...
  ExplanationQuality q = *ScorePredicate(
      *d.table, d.anomalies[0].description, d.anomalies[0].rows);
  EXPECT_DOUBLE_EQ(q.f1, 1.0);
  // ...while either single clause over- or under-covers.
  Predicate cat_only({d.anomalies[0].description.clauses()[0]});
  ExplanationQuality qc =
      *ScorePredicate(*d.table, cat_only, d.anomalies[0].rows);
  EXPECT_LT(qc.precision, 0.9);
  EXPECT_DOUBLE_EQ(qc.recall, 1.0);
  Predicate num_only({d.anomalies[0].description.clauses()[1]});
  ExplanationQuality qn =
      *ScorePredicate(*d.table, num_only, d.anomalies[0].rows);
  EXPECT_LT(qn.precision, 1.0);
}

TEST(SyntheticTest, OneClauseVariant) {
  SyntheticOptions opts;
  opts.anomaly_clauses = 1;
  opts.num_rows = 10000;
  LabeledDataset d = *GenerateSyntheticDataset(opts);
  EXPECT_EQ(d.anomalies[0].description.num_clauses(), 1u);
  ExplanationQuality q = *ScorePredicate(
      *d.table, d.anomalies[0].description, d.anomalies[0].rows);
  EXPECT_DOUBLE_EQ(q.f1, 1.0);
}

TEST(SyntheticTest, AnomalousGroupsAreElevated) {
  SyntheticOptions opts;
  opts.num_rows = 30000;
  opts.anomaly_selectivity = 0.05;
  opts.anomaly_shift = 50.0;
  LabeledDataset d = *GenerateSyntheticDataset(opts);
  QueryResult r = *ExecuteQuery(
      *ParseQuery("SELECT g, avg(v) AS a FROM synthetic GROUP BY g"),
      *d.table);
  size_t elevated = 0;
  for (size_t g = 0; g < r.num_groups(); ++g) {
    if (r.AggValue(g, 0) > 51.0) ++elevated;
  }
  EXPECT_GT(elevated, r.num_groups() / 2);
}

TEST(SyntheticTest, Validation) {
  SyntheticOptions opts;
  opts.num_categorical_attrs = 0;
  EXPECT_FALSE(GenerateSyntheticDataset(opts).ok());
  opts = SyntheticOptions();
  opts.anomaly_clauses = 2;
  opts.num_numeric_attrs = 0;
  EXPECT_FALSE(GenerateSyntheticDataset(opts).ok());
  opts = SyntheticOptions();
  opts.anomaly_selectivity = 0.0;
  EXPECT_FALSE(GenerateSyntheticDataset(opts).ok());
  opts = SyntheticOptions();
  opts.anomaly_clauses = 3;
  EXPECT_FALSE(GenerateSyntheticDataset(opts).ok());
}

// ---------- evaluation helpers ----------

TEST(EvaluationTest, ScoreTupleSetMath) {
  ExplanationQuality q = ScoreTupleSet({1, 2, 3, 4}, {3, 4, 5, 6});
  EXPECT_DOUBLE_EQ(q.precision, 0.5);
  EXPECT_DOUBLE_EQ(q.recall, 0.5);
  EXPECT_DOUBLE_EQ(q.f1, 0.5);
  EXPECT_DOUBLE_EQ(q.jaccard, 2.0 / 6.0);
  EXPECT_EQ(q.intersection, 2u);
}

TEST(EvaluationTest, EmptySetsYieldZeros) {
  ExplanationQuality q = ScoreTupleSet({}, {1, 2});
  EXPECT_DOUBLE_EQ(q.precision, 0.0);
  EXPECT_DOUBLE_EQ(q.recall, 0.0);
  EXPECT_DOUBLE_EQ(q.f1, 0.0);
  ExplanationQuality q2 = ScoreTupleSet({}, {});
  EXPECT_DOUBLE_EQ(q2.jaccard, 0.0);
}

TEST(EvaluationTest, AllAnomalousRowsUnionsAndDedups) {
  LabeledDataset d;
  d.anomalies.resize(2);
  d.anomalies[0].rows = {3, 1};
  d.anomalies[1].rows = {1, 7};
  // Note: rows within one anomaly are kept as given; the union sorts.
  std::sort(d.anomalies[0].rows.begin(), d.anomalies[0].rows.end());
  std::sort(d.anomalies[1].rows.begin(), d.anomalies[1].rows.end());
  EXPECT_EQ(d.AllAnomalousRows(), (std::vector<RowId>{1, 3, 7}));
}

}  // namespace
}  // namespace dbwipes
