// Tests for the extension features: PCA (the paper's proposed multi-
// attribute group-by visualization), JSON export (the backend->frontend
// payload), session undo, and predicate round-trip fuzzing.

#include <gtest/gtest.h>

#include <cmath>

#include "dbwipes/common/random.h"
#include "dbwipes/core/export.h"
#include "dbwipes/core/session.h"
#include "dbwipes/expr/parser.h"
#include "dbwipes/learn/pca.h"
#include "dbwipes/viz/histogram.h"
#include "dbwipes/viz/scatterplot.h"

namespace dbwipes {
namespace {

// ---------- PCA ----------

TEST(PcaTest, RecoversDominantAxis) {
  // Points along the diagonal y = 2x with small noise: PC1 must align
  // with (1, 2)/sqrt(5).
  Rng rng(3);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 500; ++i) {
    const double t = rng.Normal(0, 3);
    points.push_back({t + rng.Normal(0, 0.05), 2 * t + rng.Normal(0, 0.05)});
  }
  PcaResult pca = *ComputePca(points, 2);
  ASSERT_EQ(pca.components.size(), 2u);
  const double ratio =
      std::fabs(pca.components[0][1] / pca.components[0][0]);
  EXPECT_NEAR(ratio, 2.0, 0.05);
  // PC1 variance dominates PC2.
  EXPECT_GT(pca.explained_variance[0], 20 * pca.explained_variance[1]);
}

TEST(PcaTest, ComponentsAreOrthonormal) {
  Rng rng(4);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 300; ++i) {
    points.push_back({rng.Normal(0, 3), rng.Normal(0, 2), rng.Normal(0, 1)});
  }
  PcaResult pca = *ComputePca(points, 3);
  for (size_t a = 0; a < 3; ++a) {
    double norm = 0.0;
    for (double x : pca.components[a]) norm += x * x;
    EXPECT_NEAR(norm, 1.0, 1e-6);
    for (size_t b = a + 1; b < 3; ++b) {
      double dot = 0.0;
      for (size_t j = 0; j < 3; ++j) {
        dot += pca.components[a][j] * pca.components[b][j];
      }
      EXPECT_NEAR(dot, 0.0, 1e-5) << a << " vs " << b;
    }
  }
  // Eigenvalues descend and approximate the axis variances.
  EXPECT_GE(pca.explained_variance[0], pca.explained_variance[1]);
  EXPECT_GE(pca.explained_variance[1], pca.explained_variance[2]);
  EXPECT_NEAR(pca.explained_variance[0], 9.0, 1.5);
}

TEST(PcaTest, ProjectionCentersData) {
  std::vector<std::vector<double>> points = {
      {1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}};
  PcaResult pca = *ComputePca(points, 1);
  // The middle point is the mean -> projects to 0.
  EXPECT_NEAR(pca.Project({2.0, 20.0})[0], 0.0, 1e-9);
  // End points project symmetrically.
  EXPECT_NEAR(pca.Project({1.0, 10.0})[0], -pca.Project({3.0, 30.0})[0],
              1e-9);
}

TEST(PcaTest, DegenerateDataGetsZeroVariance) {
  std::vector<std::vector<double>> points(10, {5.0, 5.0});
  PcaResult pca = *ComputePca(points, 2);
  EXPECT_NEAR(pca.explained_variance[0], 0.0, 1e-12);
  EXPECT_NEAR(pca.explained_variance[1], 0.0, 1e-12);
}

TEST(PcaTest, Validation) {
  EXPECT_FALSE(ComputePca({}, 1).ok());
  EXPECT_FALSE(ComputePca({{1.0}}, 2).ok());
  EXPECT_FALSE(ComputePca({{1.0}, {1.0, 2.0}}, 1).ok());
  EXPECT_FALSE(ComputePca({{1.0}}, 0).ok());
}

// ---------- PCA scatterplot ----------

TEST(PcaScatterTest, MultiAttributeGroupByProjects) {
  // Two group-by attributes forming two clusters of keys.
  Table t(Schema{{"a", DataType::kInt64},
                 {"b", DataType::kInt64},
                 {"v", DataType::kDouble}},
          "w");
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const bool cluster = i % 2 == 0;
    DBW_CHECK_OK(t.AppendRow(
        {Value(static_cast<int64_t>(cluster ? i % 5 : 50 + i % 5)),
         Value(static_cast<int64_t>(cluster ? i % 3 : 40 + i % 3)),
         Value(rng.Normal(10, 1))}));
  }
  QueryResult r = *ExecuteQuery(
      *ParseQuery("SELECT a, b, avg(v) AS m FROM w GROUP BY a, b"), t);
  ScatterPlot plot = *ScatterPlot::FromResultPca(r);
  EXPECT_EQ(plot.x_label(), "PC1");
  EXPECT_EQ(plot.y_label(), "PC2");
  EXPECT_EQ(plot.points().size(), r.num_groups());
  // The two key clusters separate along PC1.
  double lo = 1e18, hi = -1e18;
  for (const ScatterPoint& p : plot.points()) {
    lo = std::min(lo, p.x);
    hi = std::max(hi, p.x);
  }
  EXPECT_GT(hi - lo, 10.0);
  EXPECT_FALSE(plot.Render().empty());
}

TEST(PcaScatterTest, RequiresTwoGroupByAttributes) {
  Table t(Schema{{"g", DataType::kInt64}, {"v", DataType::kDouble}}, "w");
  DBW_CHECK_OK(t.AppendRow({Value(int64_t{0}), Value(1.0)}));
  QueryResult r = *ExecuteQuery(
      *ParseQuery("SELECT g, avg(v) AS m FROM w GROUP BY g"), t);
  EXPECT_TRUE(ScatterPlot::FromResultPca(r).status().IsInvalidArgument());
}

// ---------- JSON export ----------

TEST(JsonExportTest, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(JsonEscape("plain"), "plain");
}

std::shared_ptr<Database> AnomalyDb() {
  Rng rng(6);
  auto t = std::make_shared<Table>(Schema{{"g", DataType::kInt64},
                                          {"tag", DataType::kString},
                                          {"v", DataType::kDouble}},
                                   "w");
  for (int g = 0; g < 3; ++g) {
    for (int i = 0; i < 40; ++i) {
      const bool bad = g == 2 && i < 10;
      DBW_CHECK_OK(t->AppendRow({Value(static_cast<int64_t>(g)),
                                 Value(bad ? "bad" : "fine"),
                                 Value(bad ? rng.Normal(100, 2)
                                           : rng.Normal(10, 2))}));
    }
  }
  auto db = std::make_shared<Database>();
  db->RegisterTable(t);
  return db;
}

TEST(JsonExportTest, ExplanationSerializes) {
  Session session(AnomalyDb());
  DBW_CHECK_OK(session.ExecuteSql("SELECT g, avg(v) AS a FROM w GROUP BY g"));
  DBW_CHECK_OK(session.SelectResultsInRange("a", 20.0, 1e9));
  DBW_CHECK_OK(session.SetMetric(TooHigh(12.0)));
  Explanation exp = *session.Debug();
  const std::string json = ExplanationToJson(exp);
  EXPECT_NE(json.find("\"predicates\":"), std::string::npos);
  EXPECT_NE(json.find("tag = 'bad'"), std::string::npos);
  EXPECT_NE(json.find("\"baseline_error\":"), std::string::npos);
  EXPECT_NE(json.find("\"timings_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"candidates\":"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  // Compact mode has no newlines.
  const std::string compact = ExplanationToJson(exp, /*pretty=*/false);
  EXPECT_EQ(compact.find('\n'), std::string::npos);
}

TEST(JsonExportTest, QueryResultSerializesNullsAndStrings) {
  Table t(Schema{{"g", DataType::kString}, {"v", DataType::kDouble}}, "w");
  DBW_CHECK_OK(t.AppendRow({Value("x\"y"), Value(1.5)}));
  DBW_CHECK_OK(t.AppendRow({Value("b"), Value::Null()}));
  QueryResult r = *ExecuteQuery(
      *ParseQuery("SELECT g, avg(v) AS m FROM w GROUP BY g"), t);
  const std::string json = QueryResultToJson(r);
  EXPECT_NE(json.find("\"columns\":"), std::string::npos);
  EXPECT_NE(json.find("x\\\"y"), std::string::npos);
  EXPECT_NE(json.find("null"), std::string::npos);
  EXPECT_NE(json.find("\"sql\":"), std::string::npos);
}

// ---------- session undo ----------

TEST(SessionUndoTest, UndoRestoresPreviousQuery) {
  Session session(AnomalyDb());
  DBW_CHECK_OK(session.ExecuteSql("SELECT g, avg(v) AS a FROM w GROUP BY g"));
  const std::string original = session.CurrentSql();
  DBW_CHECK_OK(session.ApplyPredicateDirect(
      Predicate({Clause::Make("tag", CompareOp::kEq, Value("bad"))})));
  const std::string cleaned_once = session.CurrentSql();
  DBW_CHECK_OK(session.ApplyPredicateDirect(
      Predicate({Clause::Make("v", CompareOp::kLt, Value(0.0))})));
  EXPECT_EQ(session.applied_predicates().size(), 2u);

  DBW_CHECK_OK(session.UndoLastPredicate());
  EXPECT_EQ(session.CurrentSql(), cleaned_once);
  DBW_CHECK_OK(session.UndoLastPredicate());
  EXPECT_EQ(session.CurrentSql(), original);
  EXPECT_TRUE(session.UndoLastPredicate().IsInvalidArgument());
}

TEST(SessionUndoTest, UndoBeforeQueryFails) {
  Session session(AnomalyDb());
  EXPECT_FALSE(session.UndoLastPredicate().ok());
}

// ---------- histogram ----------

TEST(HistogramTest, NumericBucketsCoverRange) {
  Table t(Schema{{"v", DataType::kDouble}}, "w");
  for (int i = 0; i < 100; ++i) {
    DBW_CHECK_OK(t.AppendRow({Value(static_cast<double>(i))}));
  }
  DBW_CHECK_OK(t.AppendRow({Value::Null()}));
  Histogram h = *Histogram::FromColumn(t, "v", {}, 10);
  EXPECT_EQ(h.buckets().size(), 10u);
  EXPECT_EQ(h.null_count(), 1u);
  size_t total = 0;
  for (const auto& b : h.buckets()) total += b.count;
  EXPECT_EQ(total, 100u);
  // Uniform data: every equal-width bucket holds 10.
  for (const auto& b : h.buckets()) EXPECT_EQ(b.count, 10u);
}

TEST(HistogramTest, CategoricalTopCategories) {
  Table t(Schema{{"c", DataType::kString}}, "w");
  for (int i = 0; i < 30; ++i) DBW_CHECK_OK(t.AppendRow({Value("common")}));
  for (int i = 0; i < 5; ++i) DBW_CHECK_OK(t.AppendRow({Value("rare")}));
  Histogram h = *Histogram::FromColumn(t, "c");
  ASSERT_EQ(h.buckets().size(), 2u);
  EXPECT_EQ(h.buckets()[0].label, "common");
  EXPECT_EQ(h.buckets()[0].count, 30u);
  const std::string rendered = h.Render(20);
  EXPECT_NE(rendered.find("common"), std::string::npos);
  EXPECT_NE(rendered.find('#'), std::string::npos);
}

TEST(HistogramTest, RowSubsetAndErrors) {
  Table t(Schema{{"v", DataType::kDouble}}, "w");
  for (int i = 0; i < 10; ++i) {
    DBW_CHECK_OK(t.AppendRow({Value(static_cast<double>(i))}));
  }
  Histogram h = *Histogram::FromColumn(t, "v", {0, 1, 2}, 5);
  EXPECT_EQ(h.total_count(), 3u);
  EXPECT_TRUE(Histogram::FromColumn(t, "nope").status().IsNotFound());
  EXPECT_FALSE(Histogram::FromColumn(t, "v", {}, 0).ok());
}

TEST(HistogramTest, AllNullColumn) {
  Table t(Schema{{"v", DataType::kDouble}}, "w");
  DBW_CHECK_OK(t.AppendRow({Value::Null()}));
  Histogram h = *Histogram::FromColumn(t, "v");
  EXPECT_TRUE(h.buckets().empty());
  EXPECT_EQ(h.null_count(), 1u);
  EXPECT_FALSE(h.Render().empty());
}

// ---------- predicate round-trip fuzz ----------

class PredicateRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PredicateRoundTrip, ToStringParsesBackEquivalently) {
  Rng rng(GetParam());
  const char* attrs[] = {"alpha", "beta", "gamma"};
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Clause> clauses;
    const size_t n = 1 + rng.UniformInt(3u);
    for (size_t i = 0; i < n; ++i) {
      const char* attr = attrs[rng.UniformInt(3u)];
      switch (rng.UniformInt(4u)) {
        case 0:
          clauses.push_back(Clause::Make(
              attr,
              rng.Bernoulli(0.5) ? CompareOp::kGe : CompareOp::kLt,
              Value(std::round(rng.Normal(0, 50) * 100) / 100)));
          break;
        case 1:
          clauses.push_back(Clause::Make(
              attr, rng.Bernoulli(0.5) ? CompareOp::kEq : CompareOp::kNe,
              Value("cat_" + std::to_string(rng.UniformInt(5u)))));
          break;
        case 2:
          clauses.push_back(Clause::In(
              attr, {Value("a"), Value("b''quoted")}));
          break;
        default:
          clauses.push_back(Clause::Make(attr, CompareOp::kContains,
                                         Value("needle")));
      }
    }
    Predicate original(clauses);
    auto reparsed = ParsePredicate(original.ToString());
    ASSERT_TRUE(reparsed.ok())
        << original.ToString() << " -> " << reparsed.status().ToString();
    EXPECT_EQ(reparsed->CanonicalString(), original.CanonicalString());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicateRoundTrip,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace dbwipes
