// Durability under concurrency (STRESS label, run under tsan):
// `snapshot save` racing a live append/debug workload must produce a
// snapshot that is a CONSISTENT PREFIX of the acknowledged appends —
// never a torn table, never a row out of order — and the WAL's
// group-commit and checkpoint paths must stay correct (and data-race
// free) with concurrent clients.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "dbwipes/common/random.h"
#include "dbwipes/core/service.h"
#include "dbwipes/core/snapshot.h"

namespace dbwipes {
namespace {

std::string TempWalDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" +
                          std::to_string(::getpid()) + "_" + name;
  std::system(("rm -rf '" + dir + "'").c_str());
  return dir;
}

std::shared_ptr<Database> MakeDb() {
  Rng rng(53);
  auto t = std::make_shared<Table>(Schema{{"g", DataType::kInt64},
                                          {"tag", DataType::kString},
                                          {"v", DataType::kDouble}},
                                   "w");
  for (int g = 0; g < 4; ++g) {
    for (int i = 0; i < 40; ++i) {
      const bool bad = g >= 2 && i < 8;
      DBW_CHECK_OK(t->AppendRow({Value(static_cast<int64_t>(g)),
                                 Value(bad ? "bad" : "fine"),
                                 Value(bad ? rng.Normal(100, 2)
                                           : rng.Normal(10, 2))}));
    }
  }
  auto db = std::make_shared<Database>();
  db->RegisterTable(t);
  return db;
}

constexpr size_t kSeedRows = 160;

bool IsOk(const std::string& response) {
  return response.compare(0, 11, "{\"ok\": true") == 0;
}

long long JsonInt(const std::string& response, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const size_t at = response.find(needle);
  EXPECT_NE(at, std::string::npos) << key << " missing in " << response;
  if (at == std::string::npos) return -1;
  return std::strtoll(response.c_str() + at + needle.size(), nullptr, 10);
}

// One appender writes row i with g=i (a recognizable sequence) while
// debuggers hammer reads and the main thread snapshots repeatedly.
// Every snapshot must contain the seed rows plus g=0..K-1 IN ORDER for
// some K <= rows appended so far — the prefix-consistency contract of
// the lease-protected save path.
TEST(WalStressTest, SnapshotSaveRacingAppendsIsAConsistentPrefix) {
  Service service(MakeDb());
  ASSERT_TRUE(IsOk(service.Execute("shards w 4")));
  ASSERT_TRUE(IsOk(service.Execute(
      "sql SELECT g, avg(v) AS a FROM w GROUP BY g")));

  constexpr int kAppends = 400;
  constexpr int kSnapshots = 6;
  std::atomic<int> acked{0};
  std::atomic<bool> stop{false};

  std::thread appender([&]() {
    for (int i = 0; i < kAppends; ++i) {
      if (IsOk(service.Execute("append w " + std::to_string(i) + " seq " +
                               std::to_string(i) + ".0"))) {
        acked.store(i + 1, std::memory_order_release);
      }
    }
  });
  std::thread debugger([&]() {
    while (!stop.load(std::memory_order_acquire)) {
      service.Execute("debug");
      service.Execute("state");
    }
  });

  std::vector<std::string> paths;
  for (int s = 0; s < kSnapshots; ++s) {
    const std::string path = ::testing::TempDir() + "/" +
                             std::to_string(::getpid()) + "_race_" +
                             std::to_string(s) + ".dbw";
    const int floor = acked.load(std::memory_order_acquire);
    const std::string saved = service.Execute("snapshot save " + path);
    ASSERT_TRUE(IsOk(saved)) << saved;
    paths.push_back(path);
    // The save must cover at least every append acknowledged BEFORE it
    // started (durability of acknowledged work), checked below via the
    // file; stash the floor in the path order.
    ASSERT_GE(acked.load(std::memory_order_acquire), floor);
  }
  appender.join();
  stop.store(true, std::memory_order_release);
  debugger.join();

  for (const std::string& path : paths) {
    auto snapshot = ReadSnapshot(path);
    ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
    const Table* w = nullptr;
    for (const auto& [name, table] : snapshot->tables) {
      if (name == "w") w = table.get();
    }
    ASSERT_NE(w, nullptr);
    ASSERT_GE(w->num_rows(), kSeedRows);
    const size_t appended = w->num_rows() - kSeedRows;
    ASSERT_LE(appended, static_cast<size_t>(kAppends));
    // Appended rows are exactly g=0..K-1, in append order: a torn save
    // (mid-row, reordered, or skipping) breaks this sequence.
    for (size_t i = 0; i < appended; ++i) {
      ASSERT_EQ(w->column(0).GetInt64(kSeedRows + i),
                static_cast<int64_t>(i))
          << "row " << i << " of " << appended << " in " << path;
      ASSERT_EQ(w->column(1).GetString(kSeedRows + i), "seq");
    }
    std::remove(path.c_str());
  }
}

// Concurrent clients appending under the WAL while checkpoints run:
// every acknowledged append must survive a restart, the gate/lease
// interplay must be race-free, and replay must apply cleanly.
TEST(WalStressTest, ConcurrentAppendsAndCheckpointsRecoverExactly) {
  const std::string dir = TempWalDir("stress_wal");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 60;
  {
    Service service(MakeDb(), [&dir]() {
      ServiceOptions options;
      options.wal.dir = dir;
      return options;
    }());
    ASSERT_TRUE(IsOk(service.Execute("shards w 4")));
    ASSERT_TRUE(IsOk(service.Execute(
        "sql SELECT g, avg(v) AS a FROM w GROUP BY g")));

    std::atomic<int> acked{0};
    std::atomic<bool> stop{false};
    std::vector<std::thread> appenders;
    appenders.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      appenders.emplace_back([&, t]() {
        for (int i = 0; i < kPerThread; ++i) {
          const std::string r = service.Execute(
              "append w " + std::to_string(t) + " seq " + std::to_string(i) +
              ".0");
          if (IsOk(r)) acked.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    std::thread checkpointer([&]() {
      while (!stop.load(std::memory_order_acquire)) {
        service.Execute("wal checkpoint");
        service.Execute("wal status");
      }
    });
    std::thread debugger([&]() {
      while (!stop.load(std::memory_order_acquire)) {
        service.Execute("debug");
      }
    });
    for (auto& th : appenders) th.join();
    stop.store(true, std::memory_order_release);
    checkpointer.join();
    debugger.join();
    ASSERT_EQ(acked.load(), kThreads * kPerThread);
  }
  // Restart: snapshot + replay must reproduce EVERY acknowledged row.
  {
    Service service(MakeDb(), [&dir]() {
      ServiceOptions options;
      options.wal.dir = dir;
      return options;
    }());
    const std::string status = service.Execute("wal status");
    EXPECT_EQ(JsonInt(status, "replay_errors"), 0) << status;
    const std::string append = service.Execute("append w 0 seq 0.0");
    ASSERT_TRUE(IsOk(append)) << append;
    EXPECT_EQ(JsonInt(append, "rows"),
              static_cast<long long>(kSeedRows + kThreads * kPerThread + 1))
        << append;
  }
}

// The replication sender's tailing read (ReplayDurable) racing live
// appends and segment rotations: every read must deliver a CONTIGUOUS
// acknowledged prefix — lsns after_lsn+1 .. delivered_through with no
// gaps, no duplicates, no torn frames — and delivered_through must be
// at least the durable lsn observed before the call (acknowledged
// history can never shrink). Run under tsan, this is also the
// data-race proof for the segment-list/durable-lsn snapshot.
TEST(WalStressTest, TailingReadRacingAppendsAndRotationsIsContiguous) {
  const std::string dir = TempWalDir("wal_tail_race");
  WalOptions options;
  options.dir = dir;
  options.segment_bytes = 2048;  // force frequent rotations
  auto wal = WriteAheadLog::Open(options).ValueOrDie();

  constexpr size_t kThreads = 3;
  constexpr size_t kPerThread = 150;
  std::atomic<bool> done{false};

  std::vector<std::thread> appenders;
  appenders.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    appenders.emplace_back([&wal, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        const std::string body = "append w " + std::to_string(t) + " tag " +
                                 std::to_string(i) + ".0";
        ASSERT_TRUE(wal->AppendCommand(body, t * 1000 + i).ok());
      }
    });
  }
  std::thread rotator([&wal, &done] {
    while (!done.load(std::memory_order_acquire)) {
      ASSERT_TRUE(wal->Rotate().ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  size_t reads = 0;
  uint64_t resume_from = 0;  // alternate full scans with tail resumes
  while (!done.load(std::memory_order_acquire)) {
    const uint64_t durable_before = wal->durable_lsn();
    const uint64_t after = (reads % 2 == 0) ? 0 : resume_from;
    uint64_t expected = after;
    uint64_t delivered_through = 0;
    const Status st = wal->ReplayDurable(
        after,
        [&](uint64_t lsn, uint64_t /*rid*/, uint8_t type,
            const std::string& body) -> Status {
          EXPECT_EQ(type, WriteAheadLog::kRecordCommand);
          EXPECT_EQ(lsn, expected + 1) << "gap or duplicate in tail read";
          EXPECT_EQ(body.compare(0, 9, "append w "), 0) << body;
          expected = lsn;
          return Status::OK();
        },
        &delivered_through);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(expected, delivered_through);
    EXPECT_GE(delivered_through, durable_before)
        << "acknowledged history shrank";
    resume_from = delivered_through;
    ++reads;
    if (expected >= kThreads * kPerThread) {
      done.store(true, std::memory_order_release);
    }
  }
  for (auto& t : appenders) t.join();
  rotator.join();
  EXPECT_EQ(wal->durable_lsn(), kThreads * kPerThread);

  // One final full scan after quiescence sees every record.
  size_t count = 0;
  ASSERT_TRUE(wal->ReplayDurable(0, [&](uint64_t, uint64_t, uint8_t,
                                        const std::string&) {
                    ++count;
                    return Status::OK();
                  }).ok());
  EXPECT_EQ(count, kThreads * kPerThread);
}

}  // namespace
}  // namespace dbwipes
