#include <gtest/gtest.h>

#include <cstdio>

#include "dbwipes/storage/csv.h"

namespace dbwipes {
namespace {

TEST(CsvTest, BasicParseWithTypeInference) {
  Table t = *ReadCsv("id,name,score\n1,ann,9.5\n2,bob,7\n");
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.schema().field(0).type, DataType::kInt64);
  EXPECT_EQ(t.schema().field(1).type, DataType::kString);
  // Mixed int/double -> double.
  EXPECT_EQ(t.schema().field(2).type, DataType::kDouble);
  EXPECT_EQ(t.GetValue(1, 1), Value("bob"));
  EXPECT_EQ(t.GetValue(1, 2), Value(7.0));
}

TEST(CsvTest, NullTokensAndEmptyCells) {
  Table t = *ReadCsv("a,b\n1,\n,x\nNULL,y\n");
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_TRUE(t.GetValue(0, 1).is_null());
  EXPECT_TRUE(t.GetValue(1, 0).is_null());
  EXPECT_TRUE(t.GetValue(2, 0).is_null());
  EXPECT_EQ(t.GetValue(2, 1), Value("y"));
}

TEST(CsvTest, QuotedFieldsWithCommasAndEscapes) {
  Table t = *ReadCsv("a,b\n\"x, y\",\"he said \"\"hi\"\"\"\n");
  EXPECT_EQ(t.GetValue(0, 0), Value("x, y"));
  EXPECT_EQ(t.GetValue(0, 1), Value("he said \"hi\""));
}

TEST(CsvTest, CrLfLineEndings) {
  Table t = *ReadCsv("a,b\r\n1,2\r\n3,4\r\n");
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.GetValue(1, 1), Value(int64_t{4}));
}

TEST(CsvTest, RaggedRowIsError) {
  auto r = ReadCsv("a,b\n1,2\n3\n");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
}

TEST(CsvTest, UnterminatedQuoteIsError) {
  auto r = ReadCsv("a\n\"oops\n");
  EXPECT_TRUE(r.status().IsParseError());
}

TEST(CsvTest, EmptyInputIsError) {
  EXPECT_TRUE(ReadCsv("").status().IsParseError());
}

TEST(CsvTest, TypeContradictionAfterInferenceWindow) {
  // Inference samples only the first row; a later string in an int
  // column must fail loudly, not corrupt the table.
  CsvOptions opts;
  opts.type_inference_rows = 1;
  auto r = ReadCsv("a\n1\nnot_a_number\n", opts);
  EXPECT_TRUE(r.status().IsParseError());
}

TEST(CsvTest, NoHeaderGeneratesColumnNames) {
  CsvOptions opts;
  opts.has_header = false;
  Table t = *ReadCsv("1,x\n2,y\n", opts);
  EXPECT_EQ(t.schema().field(0).name, "c0");
  EXPECT_EQ(t.schema().field(1).name, "c1");
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(CsvTest, CustomDelimiter) {
  CsvOptions opts;
  opts.delimiter = ';';
  Table t = *ReadCsv("a;b\n1;2\n", opts);
  EXPECT_EQ(t.GetValue(0, 1), Value(int64_t{2}));
}

TEST(CsvTest, RoundTripPreservesValues) {
  Table t(Schema{{"i", DataType::kInt64},
                 {"d", DataType::kDouble},
                 {"s", DataType::kString}});
  DBW_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value(0.125), Value("plain")}));
  DBW_CHECK_OK(
      t.AppendRow({Value::Null(), Value(-3.75), Value("with, comma")}));
  DBW_CHECK_OK(t.AppendRow(
      {Value(int64_t{-9}), Value::Null(), Value("quote \" inside")}));

  Table back = *ReadCsv(WriteCsv(t));
  ASSERT_EQ(back.num_rows(), t.num_rows());
  for (RowId r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      EXPECT_EQ(back.GetValue(r, c), t.GetValue(r, c))
          << "row " << r << " col " << c;
    }
  }
}

TEST(CsvTest, FileRoundTrip) {
  Table t(Schema{{"x", DataType::kInt64}});
  DBW_CHECK_OK(t.AppendRow({Value(int64_t{42})}));
  const std::string path = ::testing::TempDir() + "/dbwipes_csv_test.csv";
  DBW_CHECK_OK(WriteCsvFile(t, path));
  Table back = *ReadCsvFile(path);
  EXPECT_EQ(back.num_rows(), 1u);
  EXPECT_EQ(back.GetValue(0, 0), Value(int64_t{42}));
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIoError) {
  EXPECT_TRUE(ReadCsvFile("/nonexistent/nope.csv").status().IsIoError());
}

TEST(CsvTest, AllEmptyColumnDefaultsToString) {
  Table t = *ReadCsv("a,b\n,1\n,2\n");
  EXPECT_EQ(t.schema().field(0).type, DataType::kString);
  EXPECT_EQ(t.column(0).null_count(), 2u);
}

}  // namespace
}  // namespace dbwipes
