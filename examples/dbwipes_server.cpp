// Headless DBWipes backend: reads protocol commands from stdin, writes
// one JSON response per line to stdout — the process a web dashboard
// (the paper's frontend) would drive. Both demo datasets are
// preloaded. Try:
//
//   printf 'sql SELECT day, sum(amount) AS total FROM donations
//           WHERE candidate = 'MCCAIN' GROUP BY day\nselect_range
//           total -1e18 -1\ninputs_where amount < 0\nmetric too_low
//           0\ndebug\n' | ./dbwipes_server

#include <cstdio>
#include <iostream>
#include <string>

#include "dbwipes/core/service.h"
#include "dbwipes/datagen/fec_generator.h"
#include "dbwipes/datagen/intel_generator.h"

using namespace dbwipes;  // NOLINT — example brevity

int main() {
  auto db = std::make_shared<Database>();
  {
    IntelOptions intel;
    intel.duration_days = 4;
    intel.reading_interval_minutes = 10.0;
    db->RegisterTable(GenerateIntelDataset(intel).ValueOrDie().table);
    db->RegisterTable(GenerateFecDataset().ValueOrDie().table);
  }
  Service service(db);

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    std::printf("%s\n", service.Execute(line).c_str());
    std::fflush(stdout);
  }
  return 0;
}
