// Headless DBWipes backend: reads protocol commands from stdin, writes
// one JSON response per line to stdout — the process a web dashboard
// (the paper's frontend) would drive. Both demo datasets are
// preloaded. Try:
//
//   printf 'sql SELECT day, sum(amount) AS total FROM donations
//           WHERE candidate = 'MCCAIN' GROUP BY day\nselect_range
//           total -1e18 -1\ninputs_where amount < 0\nmetric too_low
//           0\ndebug\n' | ./dbwipes_server

// Prefix commands with `@name ` to use independent named sessions,
// and run with `--workers N` to execute through the admission-
// controlled worker pool (requests may then be shed under overload
// with {"ok": false, "reason": "overloaded", ...}; stdin stays
// strictly ordered either way because responses print in read order).
// Run with `--wal DIR` to make every state-mutating command durable:
// on startup the service recovers DIR's latest checkpoint snapshot,
// replays the log's tail, and resumes exactly where the last process
// (crashed or not) left off.
// Run with `--metrics-port P` to serve Prometheus text exposition at
// http://localhost:P/metrics (plus /healthz and /readyz); this also
// turns on the background metric sampler (the `history` command) and
// the self-watchdog. Port 0 binds an ephemeral port (printed on
// stderr). Slow requests are logged to stderr as one-line JSON when
// DBWIPES_SLOW_MS is set (see README "Monitoring").
// Run with `--replication-port P` (requires --wal) to serve the WAL
// stream to followers, and `--replicate-from HOST:PORT` to start as a
// read-only follower of that primary (promote it later with the
// `promote` command). See README "Replication".
//
// SIGINT/SIGTERM shut down gracefully: the worker queue drains, a
// final checkpoint seals the WAL, and the listeners stop — equivalent
// to typing `quit`.

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "dbwipes/common/http_listener.h"
#include "dbwipes/core/service.h"
#include "dbwipes/datagen/fec_generator.h"
#include "dbwipes/datagen/intel_generator.h"

using namespace dbwipes;  // NOLINT — example brevity

namespace {

// Self-pipe: the signal handler writes one byte, the poll loop wakes.
int g_signal_pipe[2] = {-1, -1};
volatile sig_atomic_t g_stop = 0;

void OnSignal(int /*signo*/) {
  g_stop = 1;
  const char byte = 1;
  // write(2) is async-signal-safe; the pipe is O_NONBLOCK so a full
  // pipe (already woken) cannot wedge the handler.
  ssize_t ignored = ::write(g_signal_pipe[1], &byte, 1);
  (void)ignored;
}

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workers N] [--wal DIR] [--metrics-port P]\n"
               "          [--replication-port P] [--replicate-from HOST:PORT]\n"
               "  --workers N             worker pool size (0 = synchronous)\n"
               "  --wal DIR               durable write-ahead log + recovery\n"
               "  --metrics-port P        Prometheus /metrics listener "
               "(0 = ephemeral)\n"
               "  --replication-port P    serve the WAL stream to followers "
               "(needs --wal)\n"
               "  --replicate-from H:P    start as a read-only follower of "
               "that primary\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  size_t workers = 0;
  std::string wal_dir;
  std::string replicate_from;
  int metrics_port = -1;
  int replication_port = -1;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--workers") == 0) {
      workers = static_cast<size_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--wal") == 0) {
      wal_dir = argv[i + 1];
    } else if (std::strcmp(argv[i], "--metrics-port") == 0) {
      metrics_port = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--replication-port") == 0) {
      replication_port = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--replicate-from") == 0) {
      replicate_from = argv[i + 1];
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (replication_port >= 0 && wal_dir.empty()) {
    std::fprintf(stderr, "--replication-port requires --wal DIR\n");
    return 2;
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "pipe failed: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction sa {};
  sa.sa_handler = OnSignal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  auto db = std::make_shared<Database>();
  {
    IntelOptions intel;
    intel.duration_days = 4;
    intel.reading_interval_minutes = 10.0;
    db->RegisterTable(GenerateIntelDataset(intel).ValueOrDie().table);
    db->RegisterTable(GenerateFecDataset().ValueOrDie().table);
  }
  ServiceOptions options;
  options.num_workers = workers;
  options.wal.dir = wal_dir;
  options.replication.listen_port = replication_port;
  options.replication.follow = replicate_from;
  if (metrics_port >= 0) {
    // A scrape endpoint implies a long-running deployment: turn on the
    // SLO history sampler and the self-watchdog alongside it.
    options.telemetry.history_enabled = true;
    options.telemetry.watchdog_enabled = true;
  }
  Service service(db, options);
  if (!wal_dir.empty()) {
    std::fprintf(stderr, "%s\n", service.Execute("wal status").c_str());
  }
  if (replication_port >= 0 || !replicate_from.empty()) {
    std::fprintf(stderr, "%s\n",
                 service.Execute("replication status").c_str());
  }
  if (workers > 0 && !service.Start().ok()) {
    std::fprintf(stderr, "failed to start worker pool\n");
    return 1;
  }

  HttpListener listener;
  if (metrics_port >= 0) {
    Status st = listener.Start(static_cast<uint16_t>(metrics_port),
                               MakeObservabilityHandler([] { return true; }));
    if (!st.ok()) {
      std::fprintf(stderr, "metrics listener failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "metrics: http://localhost:%u/metrics\n",
                 static_cast<unsigned>(listener.port()));
  }

  // Line loop over poll() so a signal interrupts a blocked read: stdin
  // readiness and the signal pipe are watched together, and lines are
  // reassembled from raw reads (std::getline would block through the
  // signal on some libcs).
  std::string buffer;
  bool eof = false;
  while (!eof && g_stop == 0) {
    pollfd fds[2];
    fds[0].fd = STDIN_FILENO;
    fds[0].events = POLLIN;
    fds[1].fd = g_signal_pipe[0];
    fds[1].events = POLLIN;
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;  // g_stop checked at the top
      break;
    }
    if (g_stop != 0 || (fds[1].revents & POLLIN) != 0) break;
    if ((fds[0].revents & (POLLIN | POLLHUP)) == 0) continue;
    char chunk[4096];
    const ssize_t n = ::read(STDIN_FILENO, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) {
      eof = true;
    } else {
      buffer.append(chunk, static_cast<size_t>(n));
    }
    size_t start = 0;
    for (size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line == "quit" || line == "exit") {
        eof = true;
        break;
      }
      const std::string out =
          workers > 0 ? service.Submit(line).get() : service.Execute(line);
      std::printf("%s\n", out.c_str());
      std::fflush(stdout);
    }
    buffer.erase(0, start);
  }

  // Graceful shutdown (same path for quit, EOF, SIGINT, SIGTERM):
  // drain the worker queue, seal the log with a final checkpoint, stop
  // replication and the metrics listener.
  if (g_stop != 0) std::fprintf(stderr, "shutting down on signal\n");
  if (workers > 0) service.Stop();  // drains accepted requests
  if (!wal_dir.empty()) {
    const std::string out = service.Execute("wal checkpoint");
    std::fprintf(stderr, "final checkpoint: %s\n", out.c_str());
  }
  std::fprintf(stderr, "%s\n", service.Execute("replicate stop").c_str());
  listener.Stop();
  return 0;
}
