// Headless DBWipes backend: reads protocol commands from stdin, writes
// one JSON response per line to stdout — the process a web dashboard
// (the paper's frontend) would drive. Both demo datasets are
// preloaded. Try:
//
//   printf 'sql SELECT day, sum(amount) AS total FROM donations
//           WHERE candidate = 'MCCAIN' GROUP BY day\nselect_range
//           total -1e18 -1\ninputs_where amount < 0\nmetric too_low
//           0\ndebug\n' | ./dbwipes_server

// Prefix commands with `@name ` to use independent named sessions,
// and run with `--workers N` to execute through the admission-
// controlled worker pool (requests may then be shed under overload
// with {"ok": false, "reason": "overloaded", ...}; stdin stays
// strictly ordered either way because responses print in read order).
// Run with `--wal DIR` to make every state-mutating command durable:
// on startup the service recovers DIR's latest checkpoint snapshot,
// replays the log's tail, and resumes exactly where the last process
// (crashed or not) left off.
// Run with `--metrics-port P` to serve Prometheus text exposition at
// http://localhost:P/metrics (plus /healthz and /readyz); this also
// turns on the background metric sampler (the `history` command) and
// the self-watchdog. Port 0 binds an ephemeral port (printed on
// stderr). Slow requests are logged to stderr as one-line JSON when
// DBWIPES_SLOW_MS is set (see README "Monitoring").

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "dbwipes/common/http_listener.h"
#include "dbwipes/core/service.h"
#include "dbwipes/datagen/fec_generator.h"
#include "dbwipes/datagen/intel_generator.h"

using namespace dbwipes;  // NOLINT — example brevity

int main(int argc, char** argv) {
  size_t workers = 0;
  std::string wal_dir;
  int metrics_port = -1;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--workers") == 0) {
      workers = static_cast<size_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--wal") == 0) {
      wal_dir = argv[i + 1];
    } else if (std::strcmp(argv[i], "--metrics-port") == 0) {
      metrics_port = std::atoi(argv[i + 1]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--workers N] [--wal DIR] [--metrics-port P]\n",
                   argv[0]);
      return 2;
    }
  }

  auto db = std::make_shared<Database>();
  {
    IntelOptions intel;
    intel.duration_days = 4;
    intel.reading_interval_minutes = 10.0;
    db->RegisterTable(GenerateIntelDataset(intel).ValueOrDie().table);
    db->RegisterTable(GenerateFecDataset().ValueOrDie().table);
  }
  ServiceOptions options;
  options.num_workers = workers;
  options.wal.dir = wal_dir;
  if (metrics_port >= 0) {
    // A scrape endpoint implies a long-running deployment: turn on the
    // SLO history sampler and the self-watchdog alongside it.
    options.telemetry.history_enabled = true;
    options.telemetry.watchdog_enabled = true;
  }
  Service service(db, options);
  if (!wal_dir.empty()) {
    std::fprintf(stderr, "%s\n", service.Execute("wal status").c_str());
  }
  if (workers > 0 && !service.Start().ok()) {
    std::fprintf(stderr, "failed to start worker pool\n");
    return 1;
  }

  HttpListener listener;
  if (metrics_port >= 0) {
    Status st = listener.Start(static_cast<uint16_t>(metrics_port),
                               MakeObservabilityHandler([] { return true; }));
    if (!st.ok()) {
      std::fprintf(stderr, "metrics listener failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "metrics: http://localhost:%u/metrics\n",
                 static_cast<unsigned>(listener.port()));
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    const std::string out =
        workers > 0 ? service.Submit(line).get() : service.Execute(line);
    std::printf("%s\n", out.c_str());
    std::fflush(stdout);
  }
  if (workers > 0) service.Stop();
  listener.Stop();
  return 0;
}
