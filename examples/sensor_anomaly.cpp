// The Intel sensor walkthrough (paper Figure 4): plot per-window
// average and stddev of temperature, brush the suspicious windows,
// zoom to the raw readings, select the >100-degree tuples as D', and
// debug. The expected explanation points at the dying motes.

#include <cstdio>

#include "dbwipes/core/session.h"
#include "dbwipes/datagen/intel_generator.h"
#include "dbwipes/viz/dashboard.h"

using namespace dbwipes;  // NOLINT — example brevity

int main() {
  IntelOptions gen;
  gen.duration_days = 7;
  gen.reading_interval_minutes = 5.0;
  LabeledDataset data = GenerateIntelDataset(gen).ValueOrDie();
  std::printf("simulated %zu readings from %zu motes; injected faults:\n",
              data.table->num_rows(), gen.num_sensors);
  for (const InjectedAnomaly& a : data.anomalies) {
    std::printf("  - %s: %s (%zu rows)\n", a.note.c_str(),
                a.description.ToString().c_str(), a.rows.size());
  }

  auto db = std::make_shared<Database>();
  db->RegisterTable(data.table);
  Session session(db);

  // The paper's query: average and stddev of temperature per
  // 30-minute window.
  DBW_CHECK_OK(session.ExecuteSql(
      "SELECT avg(temp) AS avg_temp, stddev(temp) AS sd_temp "
      "FROM readings GROUP BY window"));

  Dashboard dashboard(&session);
  std::printf("\n%s", dashboard.RenderQueryForm().c_str());
  std::printf("%s\n",
              dashboard.RenderVisualization("sd_temp").ValueOrDie().c_str());

  // The paper's gesture: brush the suspiciously high standard
  // deviations (one 120-degree mote among 54 normal ones barely moves
  // the window average but blows up its stddev).
  DBW_CHECK_OK(session.SelectResultsInRange("sd_temp", 8.0, 1e9));
  std::printf("brushed %zu suspicious windows\n",
              session.selected_groups().size());

  // Zoom in (Figure 4 right panel) and highlight the hot tuples.
  Table zoomed = session.Zoom().ValueOrDie();
  std::printf("zoom shows %zu tuples; first rows:\n%s\n", zoomed.num_rows(),
              zoomed.ToString(5).c_str());
  DBW_CHECK_OK(session.SelectInputsWhere("temp > 100"));
  std::printf("selected %zu suspicious input tuples (D')\n",
              session.selected_inputs().size());

  // Error metric on the stddev aggregate (index 1): "values are too
  // high", expected = the typical stddev of the unselected windows.
  auto suggestions = session.SuggestErrorMetrics(1).ValueOrDie();
  DBW_CHECK_OK(session.SetMetric(
      suggestions[0].make(suggestions[0].default_expected), 1));

  Explanation exp = session.Debug().ValueOrDie();
  std::printf("\n%s", dashboard.RenderRankedPredicates().c_str());
  std::printf("stage timings: preprocess %.1fms, enumerate %.1fms, "
              "trees %.1fms, rank %.1fms\n",
              exp.preprocess_ms, exp.enumerate_ms, exp.predicates_ms,
              exp.rank_ms);

  // Clean and confirm the windows return to normal.
  DBW_CHECK_OK(session.ApplyPredicate(0));
  std::printf("\nafter cleaning:\n%s\n",
              dashboard.RenderVisualization("sd_temp").ValueOrDie().c_str());
  return 0;
}
