// Interactive DBWipes dashboard in the terminal: the demo experience
// (query -> plot -> brush -> zoom -> debug -> clean) driven by typed
// commands instead of mouse gestures.
//
// Datasets 'readings' (Intel sensors) and 'donations' (FEC) are
// preloaded. Try:
//   sql SELECT avg(temp) AS t FROM readings GROUP BY window
//   plot t
//   brush t 30 1000
//   zoom
//   inputs temp > 100
//   metric 0
//   debug
//   clean 0
//   plot t

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "dbwipes/common/string_util.h"
#include "dbwipes/core/export.h"
#include "dbwipes/core/session.h"
#include "dbwipes/datagen/fec_generator.h"
#include "dbwipes/datagen/intel_generator.h"
#include "dbwipes/viz/dashboard.h"
#include "dbwipes/viz/histogram.h"
#include "dbwipes/viz/scatterplot.h"

using namespace dbwipes;  // NOLINT — example brevity

namespace {

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  tables                      list loaded tables\n"
      "  sql <query>                 run an aggregate query\n"
      "  show                        print the current result rows\n"
      "  plot <agg> [x-col]          ASCII scatterplot of an aggregate\n"
      "  brush <agg> <lo> <hi>       select groups with agg in [lo,hi]\n"
      "  zoom                        show tuples behind the selection\n"
      "  inputs <filter>             select suspicious inputs, e.g. temp > 100\n"
      "  metrics                     list suggested error metrics\n"
      "  metric <i> [expected]       choose metric i\n"
      "  debug                       compute ranked predicates\n"
      "  clean <i>                   apply ranked predicate i\n"
      "  undo                        remove the last cleaning predicate\n"
      "  reset                       drop all cleaning predicates\n"
      "  hist <column>               histogram of a base-table column over\n"
      "                              the zoomed tuples (or all rows)\n"
      "  pca                         PC1-vs-PC2 plot of a multi-attribute\n"
      "                              group-by\n"
      "  json                        dump the last explanation as JSON\n"
      "  profile                     per-stage latency breakdown of the\n"
      "                              last debug run\n"
      "  plan                        show coarse-grained provenance\n"
      "  state                       render the whole dashboard\n"
      "  quit\n");
}

}  // namespace

int main() {
  auto db = std::make_shared<Database>();
  {
    IntelOptions intel;
    intel.duration_days = 4;
    intel.reading_interval_minutes = 10.0;
    db->RegisterTable(GenerateIntelDataset(intel).ValueOrDie().table);
    db->RegisterTable(GenerateFecDataset().ValueOrDie().table);
  }
  Session session(db);
  Dashboard dashboard(&session);
  std::vector<MetricSuggestion> metrics;

  std::printf("DBWipes REPL — type 'help' for commands\n");
  std::string line;
  while (std::printf("dbwipes> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) continue;

    auto report = [](const Status& s) {
      if (!s.ok()) std::printf("error: %s\n", s.ToString().c_str());
    };

    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      PrintHelp();
    } else if (cmd == "tables") {
      for (const std::string& t : db->TableNames()) {
        std::printf("  %s (%zu rows)\n", t.c_str(),
                    db->GetTable(t).ValueOrDie()->num_rows());
      }
    } else if (cmd == "sql") {
      std::string sql;
      std::getline(in, sql);
      report(session.ExecuteSql(sql));
      if (session.has_result()) {
        std::printf("%zu groups\n", session.result().num_groups());
      }
    } else if (cmd == "show") {
      if (session.has_result()) {
        std::printf("%s", session.result().rows->ToString(20).c_str());
      } else {
        std::printf("no result\n");
      }
    } else if (cmd == "plot") {
      std::string agg, xcol;
      in >> agg >> xcol;
      if (!session.has_result()) {
        std::printf("no result\n");
        continue;
      }
      auto plot = ScatterPlot::FromResult(session.result(), agg, xcol);
      if (!plot.ok()) {
        report(plot.status());
        continue;
      }
      for (size_t g : session.selected_groups()) {
        plot->Brush(plot->points()[g].x, plot->points()[g].x,
                    plot->points()[g].y, plot->points()[g].y);
      }
      std::printf("%s", plot->Render().c_str());
    } else if (cmd == "brush") {
      std::string agg;
      double lo, hi;
      if (in >> agg >> lo >> hi) {
        report(session.SelectResultsInRange(agg, lo, hi));
        std::printf("%zu groups selected\n",
                    session.selected_groups().size());
      } else {
        std::printf("usage: brush <agg> <lo> <hi>\n");
      }
    } else if (cmd == "zoom") {
      auto zoomed = session.Zoom();
      if (zoomed.ok()) {
        std::printf("%s", zoomed->ToString(15).c_str());
      } else {
        report(zoomed.status());
      }
    } else if (cmd == "inputs") {
      std::string filter;
      std::getline(in, filter);
      report(session.SelectInputsWhere(filter));
      std::printf("%zu inputs selected\n", session.selected_inputs().size());
    } else if (cmd == "metrics") {
      auto suggested = session.SuggestErrorMetrics();
      if (!suggested.ok()) {
        report(suggested.status());
        continue;
      }
      metrics = *suggested;
      for (size_t i = 0; i < metrics.size(); ++i) {
        std::printf("  [%zu] %s (default expected %s)\n", i,
                    metrics[i].label.c_str(),
                    FormatDouble(metrics[i].default_expected, 4).c_str());
      }
    } else if (cmd == "metric") {
      size_t idx;
      if (!(in >> idx)) {
        std::printf("usage: metric <i> [expected]\n");
        continue;
      }
      if (metrics.empty()) {
        auto suggested = session.SuggestErrorMetrics();
        if (!suggested.ok()) {
          report(suggested.status());
          continue;
        }
        metrics = *suggested;
      }
      if (idx >= metrics.size()) {
        std::printf("no metric %zu\n", idx);
        continue;
      }
      double expected = metrics[idx].default_expected;
      in >> expected;
      report(session.SetMetric(metrics[idx].make(expected)));
      std::printf("metric set: %s\n",
                  metrics[idx].make(expected)->Describe().c_str());
    } else if (cmd == "debug") {
      auto exp = session.Debug();
      if (!exp.ok()) {
        report(exp.status());
        continue;
      }
      std::printf("%s", dashboard.RenderRankedPredicates().c_str());
      std::printf("(%.0f ms total)\n", exp->total_ms());
    } else if (cmd == "clean") {
      size_t idx;
      if (in >> idx) {
        report(session.ApplyPredicate(idx));
        std::printf("query: %s\n", session.CurrentSql().c_str());
      } else {
        std::printf("usage: clean <i>\n");
      }
    } else if (cmd == "undo") {
      report(session.UndoLastPredicate());
      if (session.has_result()) {
        std::printf("query: %s\n", session.CurrentSql().c_str());
      }
    } else if (cmd == "reset") {
      report(session.ResetCleaning());
    } else if (cmd == "hist") {
      std::string column;
      in >> column;
      if (!session.has_result()) {
        std::printf("no result\n");
        continue;
      }
      auto base = db->GetTable(session.result().query.table_name);
      if (!base.ok()) {
        report(base.status());
        continue;
      }
      // Over the zoomed tuples when a selection exists, else all rows.
      std::vector<RowId> rows;
      if (!session.selected_groups().empty()) {
        auto zoomed = session.Zoom();
        if (zoomed.ok()) {
          const Column& ids = zoomed->column(0);
          for (RowId r = 0; r < zoomed->num_rows(); ++r) {
            rows.push_back(static_cast<RowId>(ids.GetInt64(r)));
          }
        }
      }
      auto hist = Histogram::FromColumn(**base, column, rows);
      if (hist.ok()) {
        std::printf("%s", hist->Render().c_str());
      } else {
        report(hist.status());
      }
    } else if (cmd == "pca") {
      if (!session.has_result()) {
        std::printf("no result\n");
        continue;
      }
      auto plot = ScatterPlot::FromResultPca(session.result());
      if (plot.ok()) {
        std::printf("%s", plot->Render().c_str());
      } else {
        report(plot.status());
      }
    } else if (cmd == "json") {
      if (session.has_explanation()) {
        std::printf("%s", ExplanationToJson(session.explanation()).c_str());
      } else {
        std::printf("run debug first\n");
      }
    } else if (cmd == "profile") {
      std::printf("%s", dashboard.RenderProfile().c_str());
    } else if (cmd == "plan") {
      auto plan = session.DescribePlan();
      if (plan.ok()) {
        std::printf("%s", plan->c_str());
      } else {
        report(plan.status());
      }
    } else if (cmd == "state") {
      auto all = dashboard.RenderAll();
      if (all.ok()) {
        std::printf("%s", all->c_str());
      } else {
        report(all.status());
      }
    } else {
      std::printf("unknown command '%s' — try 'help'\n", cmd.c_str());
    }
  }
  return 0;
}
