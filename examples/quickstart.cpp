// Quickstart: the whole DBWipes loop in ~60 lines.
//
// 1. Generate a small dataset with a planted anomaly.
// 2. Run an aggregate query and look at the groups.
// 3. Select the suspicious groups and an error metric.
// 4. Debug: get ranked predicates explaining the anomaly.
// 5. Clean: re-run the query without tuples matching the best
//    predicate.

#include <cstdio>

#include "dbwipes/core/session.h"
#include "dbwipes/datagen/synthetic.h"
#include "dbwipes/viz/dashboard.h"

using namespace dbwipes;  // NOLINT — example brevity

int main() {
  // A 20k-row table where rows matching (c0 = 'ANOM' AND a0 >= 2)
  // have their measure shifted up by 40.
  SyntheticOptions gen;
  gen.num_rows = 20000;
  gen.anomaly_selectivity = 0.03;
  LabeledDataset data = GenerateSyntheticDataset(gen).ValueOrDie();
  std::printf("planted anomaly: %s (%zu rows)\n\n",
              data.anomalies[0].description.ToString().c_str(),
              data.anomalies[0].rows.size());

  auto db = std::make_shared<Database>();
  db->RegisterTable(data.table);

  Session session(db);
  DBW_CHECK_OK(session.ExecuteSql(
      "SELECT avg(v) AS avg_v FROM synthetic GROUP BY g"));
  std::printf("query: %s\n", session.CurrentSql().c_str());
  std::printf("%s\n", session.result().rows->ToString(5).c_str());

  // Groups whose average exceeds 51 look wrong (baseline is 50).
  DBW_CHECK_OK(session.SelectResultsInRange("avg_v", 51.0, 1e9));
  std::printf("selected %zu suspicious groups\n",
              session.selected_groups().size());

  // Pick the first suggested metric ("values are too high") with its
  // data-derived default expectation.
  auto suggestions = session.SuggestErrorMetrics().ValueOrDie();
  std::printf("metric: %s (expected %.2f)\n", suggestions[0].label.c_str(),
              suggestions[0].default_expected);
  DBW_CHECK_OK(session.SetMetric(
      suggestions[0].make(suggestions[0].default_expected)));

  // Debug!
  Explanation exp = session.Debug().ValueOrDie();
  std::printf("\nbaseline error: %.3f\n", exp.preprocess.baseline_error);
  Dashboard dashboard(&session);
  std::printf("%s\n", dashboard.RenderRankedPredicates().c_str());

  // Clean with the top predicate and compare.
  const double before = session.result().AggValue(0, 0);
  DBW_CHECK_OK(session.ApplyPredicate(0));
  std::printf("after cleaning, query is:\n  %s\n",
              session.CurrentSql().c_str());
  std::printf("group 0 avg(v): %.2f -> %.2f\n", before,
              session.result().AggValue(0, 0));
  return 0;
}
