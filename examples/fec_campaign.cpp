// The FEC walkthrough (paper §3.2, Figure 7): a data journalist plots
// McCain's daily donation totals, spots a negative spike near day 500,
// zooms in, selects the negative donations, and debugs. DBWipes
// returns a predicate referencing the memo field's "REATTRIBUTION TO
// SPOUSE" value; clicking it removes the spike.

#include <cstdio>

#include "dbwipes/core/session.h"
#include "dbwipes/datagen/fec_generator.h"
#include "dbwipes/viz/dashboard.h"

using namespace dbwipes;  // NOLINT — example brevity

int main() {
  FecOptions gen;
  LabeledDataset data = GenerateFecDataset(gen).ValueOrDie();
  std::printf("simulated %zu donation records; injected: %s\n",
              data.table->num_rows(), data.anomalies[0].note.c_str());

  auto db = std::make_shared<Database>();
  db->RegisterTable(data.table);
  Session session(db);

  DBW_CHECK_OK(session.ExecuteSql(
      "SELECT sum(amount) AS total FROM donations "
      "WHERE candidate = 'MCCAIN' GROUP BY day"));

  Dashboard dashboard(&session);
  std::printf("\n%s", dashboard.RenderQueryForm().c_str());
  std::printf("%s\n",
              dashboard.RenderVisualization("total").ValueOrDie().c_str());

  // The negative spike: days whose total dips below zero.
  DBW_CHECK_OK(session.SelectResultsInRange("total", -1e12, -1.0));
  std::printf("brushed %zu suspicious days\n",
              session.selected_groups().size());

  // Zoom and highlight the negative donations.
  DBW_CHECK_OK(session.SelectInputsWhere("amount < 0"));
  std::printf("selected %zu negative donations as D'\n",
              session.selected_inputs().size());

  // "values are too low": daily totals should be non-negative.
  DBW_CHECK_OK(session.SetMetric(TooLow(0.0)));

  Explanation exp = session.Debug().ValueOrDie();
  std::printf("\n%s", dashboard.RenderRankedPredicates().c_str());

  // Does the top predicate mention the memo, as in the paper?
  if (!exp.predicates.empty()) {
    const std::string text = exp.predicates[0].predicate.ToString();
    std::printf("top predicate %s the memo field\n",
                text.find("memo") != std::string::npos ? "references"
                                                       : "does not reference");
  }

  DBW_CHECK_OK(session.ApplyPredicate(0));
  std::printf("\nafter clicking the predicate:\n%s\n",
              dashboard.RenderVisualization("total").ValueOrDie().c_str());
  std::printf("query is now:\n  %s\n", session.CurrentSql().c_str());
  return 0;
}
