// Bring-your-own-data example: load a CSV, run a query, explain the
// outliers. Usage:
//
//   csv_explain <file.csv> "<sql>" <agg-name> <lo> <hi> [expected]
//
// Selects result groups whose aggregate falls within [lo, hi] and
// explains them with the "too high" metric (expected defaults to the
// median of the other groups). With no arguments, demonstrates on a
// CSV written to a temp file from the synthetic generator — so the
// example is runnable out of the box.

#include <cstdio>
#include <string>

#include "dbwipes/core/session.h"
#include "dbwipes/datagen/synthetic.h"
#include "dbwipes/expr/parser.h"
#include "dbwipes/storage/csv.h"
#include "dbwipes/viz/dashboard.h"

using namespace dbwipes;  // NOLINT — example brevity

int main(int argc, char** argv) {
  std::string path, sql, agg;
  double lo = 0.0, hi = 0.0;
  bool have_expected = false;
  double expected = 0.0;

  if (argc >= 6) {
    path = argv[1];
    sql = argv[2];
    agg = argv[3];
    lo = std::stod(argv[4]);
    hi = std::stod(argv[5]);
    if (argc >= 7) {
      have_expected = true;
      expected = std::stod(argv[6]);
    }
  } else {
    std::printf("(no arguments — running the built-in demonstration)\n");
    SyntheticOptions gen;
    gen.num_rows = 8000;
    LabeledDataset data = GenerateSyntheticDataset(gen).ValueOrDie();
    path = "/tmp/dbwipes_quick.csv";
    DBW_CHECK_OK(WriteCsvFile(*data.table, path));
    sql = "SELECT avg(v) AS m FROM t GROUP BY g";
    agg = "m";
    lo = 51.0;
    hi = 1e18;
  }

  Table loaded = ReadCsvFile(path).ValueOrDie();
  std::printf("loaded %zu rows, schema: %s\n", loaded.num_rows(),
              loaded.schema().ToString().c_str());

  auto db = std::make_shared<Database>();
  // Register under the FROM name in the query so any table name works.
  auto parsed = ParseQuery(sql);
  if (!parsed.ok()) {
    std::printf("bad query: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  db->RegisterTable(parsed->table_name,
                    std::make_shared<Table>(std::move(loaded)));

  Session session(db);
  DBW_CHECK_OK(session.ExecuteSql(sql));
  std::printf("%zu groups\n", session.result().num_groups());

  Status sel = session.SelectResultsInRange(agg, lo, hi);
  if (!sel.ok()) {
    std::printf("selection failed: %s\n", sel.ToString().c_str());
    return 1;
  }
  auto suggestions = session.SuggestErrorMetrics().ValueOrDie();
  if (!have_expected) expected = suggestions[0].default_expected;
  DBW_CHECK_OK(session.SetMetric(suggestions[0].make(expected)));

  auto exp = session.Debug();
  if (!exp.ok()) {
    std::printf("debug failed: %s\n", exp.status().ToString().c_str());
    return 1;
  }
  Dashboard dashboard(&session);
  std::printf("%s", dashboard.RenderRankedPredicates().c_str());
  return 0;
}
