// Observability-cost benchmark (DESIGN.md §5k): what does end-to-end
// request telemetry cost the hot path?
//
//   1. Telemetry overhead — identical debug workloads through a
//      service with telemetry fully on (10 Hz history sampler,
//      watchdog, slow-log arming) vs fully off (the defaults), rounds
//      interleaved to cancel thermal/cache drift. Acceptance: the
//      median-throughput delta stays within 3%.
//   2. Scrape cost — PrometheusText() latency over a populated
//      registry, and the duty cycle that implies at a 10 Hz scrape.
//   3. History memory ceiling — resident bytes of a fully-wound
//      TelemetryHistory ring at the default 600 points/series.
//
// Emits machine-readable BENCH_obs.json (working directory).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dbwipes/common/metrics.h"
#include "dbwipes/common/random.h"
#include "dbwipes/common/telemetry.h"
#include "dbwipes/core/service.h"

namespace dbwipes {
namespace {

using bench::Fmt;
using bench::TablePrinter;
using Clock = std::chrono::steady_clock;

constexpr int kRounds = 7;          // interleaved on/off rounds (median)
constexpr int kDebugsPerRound = 60;
constexpr int kScrapes = 400;
constexpr double kMaxOverheadPct = 3.0;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p * static_cast<double>(v.size()));
  return v[std::min(idx, v.size() - 1)];
}

std::shared_ptr<Database> MakeDb() {
  Rng rng(7);
  auto t = std::make_shared<Table>(Schema{{"g", DataType::kInt64},
                                          {"tag", DataType::kString},
                                          {"x", DataType::kDouble},
                                          {"v", DataType::kDouble}},
                                   "w");
  for (int g = 0; g < 8; ++g) {
    for (int i = 0; i < 400; ++i) {
      const bool bad = g >= 4 && i < 80;
      if (!t->AppendRow({Value(static_cast<int64_t>(g)),
                         Value(bad ? "bad" : "fine"), Value(rng.Normal(0, 1)),
                         Value(bad ? rng.Normal(100, 2)
                                   : rng.Normal(10, 2))})
               .ok()) {
        std::exit(1);
      }
    }
  }
  auto db = std::make_shared<Database>();
  db->RegisterTable(t);
  return db;
}

void Prepare(Service& service) {
  for (const char* cmd : {"sql SELECT g, avg(v) AS a FROM w GROUP BY g",
                          "select_range a 20 1e9", "metric too_high 12"}) {
    if (service.Execute(cmd).find("\"ok\": true") == std::string::npos) {
      std::fprintf(stderr, "prepare failed: %s\n", cmd);
      std::exit(1);
    }
  }
  // Warm the clause/program caches so rounds measure steady state.
  (void)service.Execute("debug");
}

/// One timed round: kDebugsPerRound sequential debugs -> requests/s.
double DebugThroughput(Service& service) {
  const auto t0 = Clock::now();
  for (int i = 0; i < kDebugsPerRound; ++i) (void)service.Execute("debug");
  const double ms = MsSince(t0);
  return ms > 0.0 ? 1000.0 * kDebugsPerRound / ms : 0.0;
}

void Run() {
  // --- 1. Telemetry overhead (interleaved rounds, median) ---
  ServiceOptions off;  // defaults: no sampler, no watchdog, no slow log
  Service service_off(MakeDb(), off);
  Prepare(service_off);

  ServiceOptions on;
  on.telemetry.history_enabled = true;
  on.telemetry.sample_interval_ms = 100.0;  // 10 Hz
  on.telemetry.watchdog_enabled = true;
  on.telemetry.watchdog_interval_ms = 100.0;
  on.telemetry.slow_ms = 1e9;  // armed (threshold checked) but not firing
  Service service_on(MakeDb(), on);
  Prepare(service_on);

  std::vector<double> thr_off, thr_on;
  for (int round = 0; round < kRounds; ++round) {
    thr_off.push_back(DebugThroughput(service_off));
    thr_on.push_back(DebugThroughput(service_on));
  }
  const double off_rps = Median(thr_off);
  const double on_rps = Median(thr_on);
  const double overhead_pct =
      off_rps > 0.0 ? 100.0 * (off_rps - on_rps) / off_rps : 0.0;
  const bool overhead_ok = overhead_pct <= kMaxOverheadPct;

  // --- 2. Scrape cost at 10 Hz ---
  std::vector<double> scrape_ms;
  scrape_ms.reserve(kScrapes);
  size_t exposition_bytes = 0;
  for (int i = 0; i < kScrapes; ++i) {
    const auto t0 = Clock::now();
    const std::string text = MetricsRegistry::Global().PrometheusText();
    scrape_ms.push_back(MsSince(t0));
    exposition_bytes = text.size();
  }
  const double scrape_p50 = Percentile(scrape_ms, 0.5);
  const double scrape_p99 = Percentile(scrape_ms, 0.99);
  // Fraction of one core a 10 Hz scraper consumes.
  const double duty_pct_10hz = scrape_p50 * 10.0 / 1000.0 * 100.0;

  // --- 3. History memory ceiling ---
  TelemetryHistory history(/*points_per_series=*/600);
  const auto samples = MetricsRegistry::Global().SampleValues();
  for (int tick = 0; tick < 700; ++tick) {  // wind every ring past full
    for (const auto& sample : samples) {
      history.Record(sample.first, static_cast<double>(tick), sample.second);
    }
  }
  const size_t history_bytes = history.MemoryBytes();

  TablePrinter table({"measure", "value"});
  table.AddRow({"debug rps (telemetry off)", Fmt(off_rps, 1)});
  table.AddRow({"debug rps (telemetry on)", Fmt(on_rps, 1)});
  table.AddRow({"overhead", Fmt(overhead_pct, 2) + "%"});
  table.AddRow({"scrape p50", Fmt(scrape_p50, 3) + " ms"});
  table.AddRow({"scrape p99", Fmt(scrape_p99, 3) + " ms"});
  table.AddRow({"10Hz scrape duty", Fmt(duty_pct_10hz, 3) + "%"});
  table.AddRow({"exposition size", std::to_string(exposition_bytes) + " B"});
  table.AddRow({"history ceiling (" + std::to_string(samples.size()) +
                    " series x 600)",
                std::to_string(history_bytes) + " B"});
  table.Print();
  std::printf("\ntelemetry overhead %.2f%% (budget %.1f%%): %s\n",
              overhead_pct, kMaxOverheadPct, overhead_ok ? "PASS" : "FAIL");

  FILE* f = std::fopen("BENCH_obs.json", "w");
  if (f != nullptr) {
    std::fprintf(
        f,
        "{\n"
        "  \"config\": {\"rounds\": %d, \"debugs_per_round\": %d, "
        "\"scrapes\": %d},\n"
        "  \"overhead\": {\"off_rps\": %.2f, \"on_rps\": %.2f, "
        "\"overhead_pct\": %.3f},\n"
        "  \"scrape\": {\"p50_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"duty_pct_10hz\": %.4f, \"exposition_bytes\": %zu},\n"
        "  \"history\": {\"series\": %zu, \"points_per_series\": 600, "
        "\"memory_bytes\": %zu},\n"
        "  \"acceptance\": {\"max_overhead_pct\": %.1f, \"pass\": %s}\n"
        "}\n",
        kRounds, kDebugsPerRound, kScrapes, off_rps, on_rps, overhead_pct,
        scrape_p50, scrape_p99, duty_pct_10hz, exposition_bytes,
        samples.size(), history_bytes, kMaxOverheadPct,
        overhead_ok ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_obs.json\n");
  }
}

}  // namespace
}  // namespace dbwipes

int main() {
  dbwipes::Run();
  return 0;
}
