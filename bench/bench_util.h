#ifndef DBWIPES_BENCH_BENCH_UTIL_H_
#define DBWIPES_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "dbwipes/core/dbwipes.h"
#include "dbwipes/core/evaluation.h"
#include "dbwipes/core/session.h"
#include "dbwipes/datagen/labeled_dataset.h"

namespace dbwipes {
namespace bench {

/// Declarative description of one demo scenario: the query, how the
/// "user" brushes S and D', and which aggregate the metric reads.
struct Scenario {
  std::string sql;
  /// Select result groups whose aggregate `select_agg` lies in
  /// [select_lo, select_hi].
  std::string select_agg;
  double select_lo = 0.0;
  double select_hi = 0.0;
  /// Optional D' filter over the zoomed tuples ("" = no D').
  std::string dprime_filter;
  /// Error metric and the aggregate it applies to.
  ErrorMetricPtr metric;
  size_t agg_index = 0;
};

struct ScenarioOutcome {
  bool ok = false;
  std::string error;
  Explanation explanation;
  /// Quality of the top-ranked predicate vs ground truth (whole table).
  ExplanationQuality top1;
  /// Best quality among the top-5 predicates.
  ExplanationQuality best5;
  double total_ms = 0.0;
  size_t num_suspect_inputs = 0;
  std::string top1_text;
};

/// Runs a full frontend/backend loop on a labeled dataset and scores
/// the result against the generator's ground truth.
inline ScenarioOutcome RunScenario(const LabeledDataset& data,
                                   const Scenario& scenario,
                                   const ExplainOptions& options = {}) {
  ScenarioOutcome out;
  auto db = std::make_shared<Database>();
  db->RegisterTable(data.table);
  Session session(db, options);

  auto fail = [&out](const Status& s) {
    out.ok = false;
    out.error = s.ToString();
    return out;
  };
  Status st = session.ExecuteSql(scenario.sql);
  if (!st.ok()) return fail(st);
  st = session.SelectResultsInRange(scenario.select_agg, scenario.select_lo,
                                    scenario.select_hi);
  if (!st.ok()) return fail(st);
  if (!scenario.dprime_filter.empty()) {
    st = session.SelectInputsWhere(scenario.dprime_filter);
    if (!st.ok()) return fail(st);
  }
  st = session.SetMetric(scenario.metric, scenario.agg_index);
  if (!st.ok()) return fail(st);

  const auto t0 = std::chrono::steady_clock::now();
  auto exp = session.Debug();
  out.total_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  if (!exp.ok()) return fail(exp.status());
  out.explanation = *exp;
  out.num_suspect_inputs = exp->preprocess.suspect_inputs.size();

  const std::vector<RowId> truth = data.AllAnomalousRows();
  if (!exp->predicates.empty()) {
    out.top1_text = exp->predicates[0].predicate.ToString();
    auto q = ScorePredicate(*data.table, exp->predicates[0].predicate, truth);
    if (q.ok()) out.top1 = *q;
    for (size_t i = 0; i < std::min<size_t>(5, exp->predicates.size()); ++i) {
      auto qi =
          ScorePredicate(*data.table, exp->predicates[i].predicate, truth);
      if (qi.ok() && qi->f1 > out.best5.f1) out.best5 = *qi;
    }
  }
  out.ok = true;
  return out;
}

/// Minimal fixed-width table printer for the report sections.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : widths_(headers.size()) {
    rows_.push_back(std::move(headers));
  }

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() {
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths_.size(); ++c) {
        widths_[c] = std::max(widths_[c], row[c].size());
      }
    }
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::string line;
      for (size_t c = 0; c < rows_[i].size(); ++c) {
        if (c > 0) line += "  ";
        line += rows_[i][c];
        line += std::string(widths_[c] - rows_[i][c].size(), ' ');
      }
      std::printf("%s\n", line.c_str());
      if (i == 0) {
        size_t total = 0;
        for (size_t c = 0; c < widths_.size(); ++c) {
          total += widths_[c] + (c > 0 ? 2 : 0);
        }
        std::printf("%s\n", std::string(total, '-').c_str());
      }
    }
  }

 private:
  std::vector<std::vector<std::string>> rows_;
  std::vector<size_t> widths_;
};

inline std::string Fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace bench
}  // namespace dbwipes

#endif  // DBWIPES_BENCH_BENCH_UTIL_H_
