// Observability overhead: the ranking workload (the BENCH_rank
// scenario, scaled down) with tracing disabled vs enabled, plus the
// tracer's raw span throughput. The disabled numbers guard the PR's
// budget — instrumentation must stay within noise of the untraced
// build — and the enabled ones price a trace capture.
//
// Emits machine-readable BENCH_trace.json (working directory).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dbwipes/common/parallel.h"
#include "dbwipes/common/trace.h"
#include "dbwipes/core/predicate_ranker.h"
#include "dbwipes/core/preprocessor.h"
#include "dbwipes/datagen/synthetic.h"
#include "dbwipes/expr/parser.h"

namespace dbwipes {
namespace {

using bench::Fmt;
using bench::TablePrinter;

struct RankProblem {
  LabeledDataset data;
  QueryResult result;
  std::vector<size_t> selected_groups;
  ErrorMetricPtr metric;
  std::vector<RowId> suspects;
  std::vector<RowId> reference;
  double per_group_baseline = 0.0;
  std::vector<EnumeratedPredicate> predicates;
};

/// Same candidate shape as BENCH_rank: threshold sweeps, categorical
/// equalities, and two-clause conjunctions over 8 attributes.
std::vector<EnumeratedPredicate> MakeCandidates(const SyntheticOptions& gen) {
  std::vector<EnumeratedPredicate> out;
  auto add = [&out](Predicate p) {
    EnumeratedPredicate ep;
    ep.predicate = std::move(p);
    ep.strategy = "bench";
    out.push_back(std::move(ep));
  };
  std::vector<Clause> numeric, categorical;
  for (size_t a = 0; a < gen.num_numeric_attrs; ++a) {
    const std::string col = "a" + std::to_string(a);
    for (int t = -12; t <= 12; ++t) {
      const double cut = t / 6.0;
      numeric.push_back(Clause::Make(col, CompareOp::kGe, Value(cut)));
      numeric.push_back(Clause::Make(col, CompareOp::kLe, Value(cut)));
    }
  }
  for (size_t c = 0; c < gen.num_categorical_attrs; ++c) {
    const std::string col = "c" + std::to_string(c);
    for (size_t k = 0; k < gen.categorical_cardinality; ++k) {
      categorical.push_back(Clause::Make(
          col, CompareOp::kEq, Value("cat_" + std::to_string(k))));
    }
  }
  for (const Clause& c : numeric) add(Predicate({c}));
  for (const Clause& c : categorical) add(Predicate({c}));
  for (size_t i = 0; i < categorical.size(); ++i) {
    for (size_t j = i % 7; j < numeric.size(); j += 7) {
      add(Predicate({categorical[i], numeric[j]}));
    }
  }
  return out;
}

RankProblem BuildProblem(size_t rows) {
  SyntheticOptions gen;
  gen.num_rows = rows;
  gen.num_numeric_attrs = 4;
  gen.num_categorical_attrs = 4;
  gen.anomaly_selectivity = 0.03;

  RankProblem p;
  p.data = *GenerateSyntheticDataset(gen);
  AggregateQuery query =
      *ParseQuery("SELECT g, avg(v) AS a FROM synthetic GROUP BY g");
  p.result = *ExecuteQuery(query, *p.data.table);
  for (size_t g = 0; g < p.result.num_groups(); ++g) {
    if (p.result.AggValue(g, 0) >= 50.8) p.selected_groups.push_back(g);
  }
  p.metric = TooHigh(50.0);
  PreprocessResult pre = *Preprocessor::Run(*p.data.table, p.result,
                                            p.selected_groups, *p.metric);
  p.suspects = pre.suspect_inputs;
  p.per_group_baseline = pre.per_group_baseline_error;
  std::vector<const TupleInfluence*> positive;
  for (const TupleInfluence& ti : pre.influences) {
    if (ti.influence > 0.0) positive.push_back(&ti);
  }
  for (size_t i = 0; i < positive.size() / 4; ++i) {
    p.reference.push_back(positive[i]->row);
  }
  std::sort(p.reference.begin(), p.reference.end());
  p.predicates = MakeCandidates(gen);
  return p;
}

void RunRank(const RankProblem& p) {
  RankerOptions opts;
  PredicateRanker ranker(opts);
  auto ranked =
      ranker.Rank(*p.data.table, p.result, p.selected_groups, *p.metric,
                  /*agg_index=*/0, p.suspects, p.reference,
                  p.per_group_baseline, p.predicates);
  DBW_CHECK_OK(ranked.status());
}

double MedianMs(const std::function<void()>& fn, int reps) {
  std::vector<double> ms;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    ms.push_back(std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count());
  }
  std::sort(ms.begin(), ms.end());
  return ms[ms.size() / 2];
}

/// Full traced Explain on the 100k-row dataset: runs the whole
/// frontend/backend loop with tracing enabled and writes the Chrome
/// trace to BENCH_trace_events.json (the acceptance artifact — loads
/// in chrome://tracing/Perfetto with a span per pipeline stage).
size_t TraceFullExplain() {
  SyntheticOptions gen;
  gen.num_rows = 100000;
  gen.num_numeric_attrs = 4;
  gen.num_categorical_attrs = 4;
  gen.anomaly_selectivity = 0.03;
  LabeledDataset data = *GenerateSyntheticDataset(gen);

  bench::Scenario s;
  s.sql = "SELECT g, avg(v) AS a FROM synthetic GROUP BY g";
  s.select_agg = "a";
  s.select_lo = 50.8;
  s.select_hi = 1e18;
  s.dprime_filter = "v > 75";
  s.metric = TooHigh(50.0);

  Tracer& tracer = Tracer::Global();
  tracer.SetEnabled(true);
  tracer.Clear();
  bench::ScenarioOutcome out = bench::RunScenario(data, s);
  tracer.SetEnabled(false);
  DBW_CHECK(out.ok) << out.error;
  const size_t events = tracer.num_events();
  DBW_CHECK_OK(tracer.WriteJson("BENCH_trace_events.json"));
  tracer.Clear();
  return events;
}

/// Raw tracer throughput: tight span open/close loop on one thread.
double SpansPerSec(size_t spans) {
  Tracer& tracer = Tracer::Global();
  tracer.SetEnabled(true);
  tracer.Clear();
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < spans; ++i) {
    DBW_TRACE_SPAN("bench/span");
  }
  const double sec = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  tracer.SetEnabled(false);
  tracer.Clear();
  return static_cast<double>(spans) / sec;
}

void PrintReportAndJson() {
  std::printf("=== tracing overhead on the ranking workload ===\n\n");
  Tracer& tracer = Tracer::Global();
  tracer.SetEnabled(false);
  tracer.Clear();

  RankProblem p = BuildProblem(50000);
  std::printf("rows=%zu  |F|=%zu  predicates=%zu  threads=%zu\n\n",
              p.data.table->num_rows(), p.suspects.size(),
              p.predicates.size(), DefaultParallelism());

  const int reps = 5;
  const double disabled_ms = MedianMs([&] { RunRank(p); }, reps);

  tracer.SetEnabled(true);
  tracer.Clear();
  const double enabled_ms = MedianMs([&] { RunRank(p); }, reps);
  const size_t events = tracer.num_events();
  tracer.SetEnabled(false);
  tracer.Clear();

  const double overhead_pct =
      disabled_ms > 0.0 ? (enabled_ms - disabled_ms) / disabled_ms * 100.0
                        : 0.0;
  const double spans_per_sec = SpansPerSec(1000000);
  const size_t explain_events = TraceFullExplain();

  TablePrinter table({"mode", "median_ms", "overhead_pct"});
  table.AddRow({"tracing_disabled", Fmt(disabled_ms, 1), "0.0"});
  table.AddRow({"tracing_enabled", Fmt(enabled_ms, 1),
                Fmt(overhead_pct, 2)});
  table.Print();
  std::printf("\nraw span throughput: %.0f spans/sec\n", spans_per_sec);
  std::printf("events captured over %d traced runs: %zu\n", reps, events);
  std::printf("full 100k-row Explain trace: %zu events -> "
              "BENCH_trace_events.json\n\n",
              explain_events);

  FILE* f = std::fopen("BENCH_trace.json", "w");
  if (f != nullptr) {
    std::fprintf(
        f,
        "{\n"
        "  \"scenario\": {\"rows\": %zu, \"predicates\": %zu, "
        "\"threads\": %zu},\n"
        "  \"disabled\": {\"median_ms\": %.3f},\n"
        "  \"enabled\": {\"median_ms\": %.3f, \"events\": %zu},\n"
        "  \"overhead_pct\": %.3f,\n"
        "  \"spans_per_sec\": %.0f,\n"
        "  \"full_explain\": {\"rows\": 100000, \"events\": %zu, "
        "\"trace_file\": \"BENCH_trace_events.json\"}\n"
        "}\n",
        p.data.table->num_rows(), p.predicates.size(), DefaultParallelism(),
        disabled_ms, enabled_ms, events, overhead_pct, spans_per_sec,
        explain_events);
    std::fclose(f);
    std::printf("wrote BENCH_trace.json\n\n");
  }
}

void BM_SpanDisabled(benchmark::State& state) {
  Tracer::Global().SetEnabled(false);
  for (auto _ : state) {
    DBW_TRACE_SPAN("bench/span");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  Tracer::Global().SetEnabled(true);
  for (auto _ : state) {
    DBW_TRACE_SPAN("bench/span");
  }
  Tracer::Global().SetEnabled(false);
  Tracer::Global().Clear();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanEnabled);

}  // namespace
}  // namespace dbwipes

int main(int argc, char** argv) {
  dbwipes::PrintReportAndJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
