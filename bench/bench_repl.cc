// Replication overhead and failover latency. Three measurements:
//
//   append   — the primary's append throughput with the WAL alone vs
//              with a live follower attached. Streaming is async (the
//              sender tails the durable log off the commit path), so
//              the acceptance line is replicated <= 1.5x wal-only.
//   lag      — follower staleness while the primary appends at a
//              fixed rate: frames behind, sampled mid-stream, plus
//              the time to drain to full parity once the primary
//              stops.
//   failover — the recovery-time objective: kill the primary, then
//              measure promote -> first successfully served read on
//              the surviving follower.
//
// Emits machine-readable BENCH_repl.json (working directory).

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "dbwipes/common/random.h"
#include "dbwipes/core/service.h"

namespace dbwipes {
namespace {

using bench::Fmt;
using bench::TablePrinter;

constexpr size_t kAppendOps = 400;
constexpr size_t kLagAppends = 300;
constexpr double kLagPacingMs = 0.2;  // ~5k appends/sec offered rate

std::string FreshDir(const std::string& name) {
  // Prefer tmpfs so the numbers measure the replication machinery
  // (framing, socket hops, apply path), not this box's disk.
  const std::string root =
      ::access("/dev/shm", W_OK) == 0 ? "/dev/shm" : "/tmp";
  const std::string dir =
      root + "/bench_repl_" + std::to_string(::getpid()) + "_" + name;
  std::system(("rm -rf '" + dir + "'").c_str());
  return dir;
}

std::shared_ptr<Database> MakeDb() {
  Rng rng(53);
  auto t = std::make_shared<Table>(Schema{{"g", DataType::kInt64},
                                          {"tag", DataType::kString},
                                          {"v", DataType::kDouble}},
                                   "w");
  for (int g = 0; g < 8; ++g) {
    for (int i = 0; i < 2500; ++i) {
      const bool bad = g >= 6 && i < 400;
      DBW_CHECK_OK(t->AppendRow({Value(static_cast<int64_t>(g)),
                                 Value(bad ? "bad" : "fine"),
                                 Value(bad ? rng.Normal(100, 2)
                                           : rng.Normal(10, 2))}));
    }
  }
  auto db = std::make_shared<Database>();
  db->RegisterTable(t);
  return db;
}

long long JsonInt(const std::string& response, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const size_t at = response.find(needle);
  if (at == std::string::npos) return -1;
  return std::strtoll(response.c_str() + at + needle.size(), nullptr, 10);
}

void MustOk(const std::string& response) {
  if (response.compare(0, 11, "{\"ok\": true") != 0) {
    std::fprintf(stderr, "bench_repl: command failed: %s\n", response.c_str());
    std::abort();
  }
}

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::unique_ptr<Service> MakePrimary(const std::string& dir, bool listen) {
  ServiceOptions options;
  options.wal.dir = dir;
  if (listen) options.replication.listen_port = 0;  // ephemeral
  auto service = std::make_unique<Service>(MakeDb(), options);
  MustOk(service->Execute("sql SELECT g, avg(v) AS a FROM w GROUP BY g"));
  MustOk(service->Execute("select_range a 20 1e9"));
  MustOk(service->Execute("metric too_high 12"));
  MustOk(service->Execute("shards w 4"));
  return service;
}

std::unique_ptr<Service> MakeFollower(int primary_port) {
  ServiceOptions options;  // memory-only follower
  options.replication.follow = "127.0.0.1:" + std::to_string(primary_port);
  options.replication.reconnect.initial_backoff_ms = 5.0;
  options.replication.reconnect.max_backoff_ms = 50.0;
  return std::make_unique<Service>(MakeDb(), options);
}

int PortOf(Service& primary) {
  const int port = static_cast<int>(
      JsonInt(primary.Execute("replication status"), "port"));
  if (port <= 0) {
    std::fprintf(stderr, "bench_repl: primary is not listening\n");
    std::abort();
  }
  return port;
}

uint64_t LastApplied(Service& follower) {
  return static_cast<uint64_t>(JsonInt(follower.Execute("replication status"),
                                       "last_applied_lsn"));
}

/// Blocks until the follower applied everything durable on the primary.
/// Returns the wait in ms (the drain time when called after a burst).
double DrainToParity(Service& primary, Service& follower) {
  const uint64_t durable = static_cast<uint64_t>(
      JsonInt(primary.Execute("wal status"), "durable_lsn"));
  const auto t0 = std::chrono::steady_clock::now();
  while (LastApplied(follower) < durable) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    if (MsSince(t0) > 30000.0) {
      std::fprintf(stderr, "bench_repl: follower never reached lsn %llu\n",
                   static_cast<unsigned long long>(durable));
      std::abort();
    }
  }
  return MsSince(t0);
}

struct AppendRun {
  double ms = 0.0;
  double ops_per_sec = 0.0;
};

/// Timed single-client appends on a WAL-backed primary, optionally with
/// a live follower consuming the stream the whole time.
AppendRun RunAppends(bool replicated, const std::string& tag) {
  const std::string dir = FreshDir(tag);
  auto primary = MakePrimary(dir, /*listen=*/replicated);
  std::unique_ptr<Service> follower;
  if (replicated) {
    follower = MakeFollower(PortOf(*primary));
    DrainToParity(*primary, *follower);  // connected and caught up
  }

  const auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < kAppendOps; ++i) {
    MustOk(primary->Execute("append w 1 fine 10.0"));
  }
  AppendRun r;
  r.ms = MsSince(t0);
  r.ops_per_sec = static_cast<double>(kAppendOps) / (r.ms / 1000.0);
  if (replicated) {
    DrainToParity(*primary, *follower);
    MustOk(follower->Execute("replicate stop"));
  }
  primary.reset();
  follower.reset();
  std::system(("rm -rf '" + dir + "'").c_str());
  return r;
}

struct LagRun {
  uint64_t max_lag_frames = 0;
  double mean_lag_frames = 0.0;
  double drain_ms = 0.0;  // burst end -> full parity
};

/// Appends at a fixed offered rate while sampling how many frames the
/// follower trails by, then times the final drain to parity.
LagRun RunLag() {
  const std::string dir = FreshDir("lag");
  auto primary = MakePrimary(dir, /*listen=*/true);
  auto follower = MakeFollower(PortOf(*primary));
  DrainToParity(*primary, *follower);
  const uint64_t base = LastApplied(*follower);

  LagRun r;
  uint64_t lag_sum = 0;
  size_t samples = 0;
  const auto pacing =
      std::chrono::duration<double, std::milli>(kLagPacingMs);
  for (size_t i = 0; i < kLagAppends; ++i) {
    MustOk(primary->Execute("append w 1 fine 10.0"));
    if (i % 10 == 9) {
      // Primary durable lsn == base + appends so far (single client).
      const uint64_t durable = base + i + 1;
      const uint64_t applied = LastApplied(*follower);
      const uint64_t lag = durable > applied ? durable - applied : 0;
      r.max_lag_frames = std::max(r.max_lag_frames, lag);
      lag_sum += lag;
      ++samples;
    }
    std::this_thread::sleep_for(pacing);
  }
  r.mean_lag_frames =
      samples > 0 ? static_cast<double>(lag_sum) / samples : 0.0;
  r.drain_ms = DrainToParity(*primary, *follower);
  MustOk(follower->Execute("replicate stop"));
  primary.reset();
  follower.reset();
  std::system(("rm -rf '" + dir + "'").c_str());
  return r;
}

struct FailoverRun {
  double promote_ms = 0.0;     // promote command alone
  double first_read_ms = 0.0;  // primary death -> first served read
};

/// The recovery-time objective: replicate a working set, destroy the
/// primary, and time promote -> first successfully served ranking.
FailoverRun RunFailover() {
  const std::string dir = FreshDir("failover");
  auto primary = MakePrimary(dir, /*listen=*/true);
  auto follower = MakeFollower(PortOf(*primary));
  for (size_t i = 0; i < 100; ++i) {
    MustOk(primary->Execute("append w 1 fine 10.0"));
  }
  DrainToParity(*primary, *follower);
  primary.reset();  // the primary is gone

  FailoverRun r;
  const auto t0 = std::chrono::steady_clock::now();
  MustOk(follower->Execute("promote"));
  r.promote_ms = MsSince(t0);
  MustOk(follower->Execute("debug"));
  r.first_read_ms = MsSince(t0);
  MustOk(follower->Execute("append w 1 fine 10.0"));  // writable again
  follower.reset();
  std::system(("rm -rf '" + dir + "'").c_str());
  return r;
}

void PrintReportAndJson() {
  std::printf("=== replication: streaming overhead and failover ===\n\n");
  std::printf("workload: 20k-row world; %zu timed appends; lag probe at "
              "%.1fms pacing x %zu appends; failover after 100 replicated "
              "appends\n\n",
              kAppendOps, kLagPacingMs, kLagAppends);

  const AppendRun wal_only = RunAppends(/*replicated=*/false, "wal_only");
  const AppendRun replicated = RunAppends(/*replicated=*/true, "replicated");
  const double overhead = replicated.ms / wal_only.ms;
  const LagRun lag = RunLag();
  const FailoverRun failover = RunFailover();

  TablePrinter table({"measurement", "value"});
  table.AddRow({"wal-only appends", Fmt(wal_only.ops_per_sec, 0) + " ops/s"});
  table.AddRow({"replicated appends",
                Fmt(replicated.ops_per_sec, 0) + " ops/s"});
  table.AddRow({"replication overhead", Fmt(overhead, 2) + "x"});
  table.AddRow({"follower lag (max)",
                std::to_string(lag.max_lag_frames) + " frames"});
  table.AddRow({"follower lag (mean)", Fmt(lag.mean_lag_frames, 1) +
                " frames"});
  table.AddRow({"post-burst drain", Fmt(lag.drain_ms, 1) + " ms"});
  table.AddRow({"promote", Fmt(failover.promote_ms, 1) + " ms"});
  table.AddRow({"promote -> first read", Fmt(failover.first_read_ms, 1) +
                " ms"});
  table.Print();
  std::printf("\nreplication overhead %.2fx (acceptance: <= 1.5x); "
              "failover served its first read %.1fms after the primary "
              "died\n\n",
              overhead, failover.first_read_ms);

  FILE* f = std::fopen("BENCH_repl.json", "w");
  if (f != nullptr) {
    std::fprintf(
        f,
        "{\n"
        "  \"scenario\": {\"rows\": 20000, \"append_ops\": %zu, "
        "\"lag_appends\": %zu, \"lag_pacing_ms\": %.1f},\n"
        "  \"append\": {\"wal_only_ops_per_sec\": %.1f, "
        "\"replicated_ops_per_sec\": %.1f, \"overhead\": %.4f},\n"
        "  \"lag\": {\"max_lag_frames\": %llu, \"mean_lag_frames\": %.2f, "
        "\"drain_ms\": %.3f},\n"
        "  \"failover\": {\"promote_ms\": %.3f, "
        "\"promote_to_first_read_ms\": %.3f},\n"
        "  \"acceptance\": {\"replication_overhead_max\": 1.5, "
        "\"replication_overhead\": %.4f, \"pass\": %s}\n"
        "}\n",
        kAppendOps, kLagAppends, kLagPacingMs, wal_only.ops_per_sec,
        replicated.ops_per_sec, overhead,
        static_cast<unsigned long long>(lag.max_lag_frames),
        lag.mean_lag_frames, lag.drain_ms, failover.promote_ms,
        failover.first_read_ms, overhead, overhead <= 1.5 ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_repl.json\n\n");
  }
}

}  // namespace
}  // namespace dbwipes

int main(int argc, char** argv) {
  dbwipes::PrintReportAndJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
