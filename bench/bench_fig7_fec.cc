// F7 — paper Figure 7 and the §3.2 walkthrough: McCain's daily
// donation totals show a negative spike near day 500; the journalist
// selects it, highlights the negative donations, picks "values are too
// low", and debugs. The expected predicate references the memo value
// "REATTRIBUTION TO SPOUSE"; clicking it removes the spike.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.h"
#include "dbwipes/datagen/fec_generator.h"

namespace dbwipes {
namespace {

using bench::Fmt;
using bench::RunScenario;
using bench::ScenarioOutcome;
using bench::Scenario;
using bench::TablePrinter;

constexpr char kQuery[] =
    "SELECT day, sum(amount) AS total FROM donations "
    "WHERE candidate = 'MCCAIN' GROUP BY day";

Scenario MakeScenario() {
  Scenario s;
  s.sql = kQuery;
  s.select_agg = "total";
  s.select_lo = -1e18;
  s.select_hi = -1.0;  // the negative-spike days
  s.dprime_filter = "amount < 0";
  s.metric = TooLow(0.0);
  s.agg_index = 0;
  return s;
}

void PrintReport() {
  std::printf(
      "=== F7: FEC campaign scenario (paper Figure 7, §3.2) ===\n"
      "query: %s\n"
      "gesture: brush days with negative totals, zoom, D' = negative\n"
      "donations, metric: totals too low (expected >= 0)\n\n",
      kQuery);

  TablePrinter table({"donations", "reattrib", "top-1 predicate", "mentions",
                      "P", "R", "F1", "err_impr", "ms"});
  for (const auto& [donations, reattrib] :
       std::vector<std::pair<size_t, size_t>>{
           {20000, 150}, {60000, 400}, {200000, 1200}}) {
    FecOptions gen;
    gen.num_donations = donations;
    gen.num_reattributions = reattrib;
    LabeledDataset data = *GenerateFecDataset(gen);
    ScenarioOutcome out = RunScenario(data, MakeScenario());
    if (!out.ok) {
      table.AddRow({std::to_string(donations), std::to_string(reattrib),
                    "FAILED: " + out.error, "-", "-", "-", "-", "-", "-"});
      continue;
    }
    const bool mentions_memo =
        out.top1_text.find("REATTRIBUTION") != std::string::npos;
    table.AddRow({std::to_string(donations), std::to_string(reattrib),
                  out.top1_text, mentions_memo ? "memo:yes" : "memo:NO",
                  Fmt(out.top1.precision), Fmt(out.top1.recall),
                  Fmt(out.top1.f1),
                  Fmt(out.explanation.predicates.empty()
                          ? 0.0
                          : out.explanation.predicates[0].error_improvement),
                  Fmt(out.total_ms, 0)});
  }
  table.Print();

  // The figure itself: worst daily total before vs after the click.
  FecOptions gen;
  LabeledDataset data = *GenerateFecDataset(gen);
  auto db = std::make_shared<Database>();
  db->RegisterTable(data.table);
  Session session(db);
  DBW_CHECK_OK(session.ExecuteSql(kQuery));
  auto worst_total = [&session]() {
    double worst = 0.0;
    const QueryResult& r = session.result();
    for (size_t g = 0; g < r.num_groups(); ++g) {
      const double t = r.AggValue(g, 0);
      if (!std::isnan(t)) worst = std::min(worst, t);
    }
    return worst;
  };
  const double before = worst_total();
  DBW_CHECK_OK(session.SelectResultsInRange("total", -1e18, -1.0));
  DBW_CHECK_OK(session.SelectInputsWhere("amount < 0"));
  DBW_CHECK_OK(session.SetMetric(TooLow(0.0)));
  DBW_CHECK_OK(session.Debug().status());
  DBW_CHECK_OK(session.ApplyPredicate(0));
  const double after = worst_total();
  std::printf(
      "\nworst daily total before cleaning: %.0f\n"
      "worst daily total after  cleaning: %.0f\n"
      "cleaned query: %s\n\n",
      before, after, session.CurrentSql().c_str());
}

void BM_Fig7Pipeline(benchmark::State& state) {
  FecOptions gen;
  gen.num_donations = static_cast<size_t>(state.range(0));
  gen.num_reattributions = gen.num_donations / 150;
  LabeledDataset data = *GenerateFecDataset(gen);
  const Scenario scenario = MakeScenario();
  double f1 = 0.0;
  for (auto _ : state) {
    ScenarioOutcome out = RunScenario(data, scenario);
    f1 = out.top1.f1;
    benchmark::DoNotOptimize(out);
  }
  state.counters["rows"] = static_cast<double>(data.table->num_rows());
  state.counters["top1_f1"] = f1;
}
BENCHMARK(BM_Fig7Pipeline)
    ->Arg(20000)
    ->Arg(60000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dbwipes

int main(int argc, char** argv) {
  dbwipes::PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
