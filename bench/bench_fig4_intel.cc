// F4 — paper Figure 4: the Intel sensor scenario.
//
// Query: avg(temp), stddev(temp) per 30-minute window. The user
// brushes the high-stddev windows, zooms, selects the >100-degree
// tuples as D', picks "values are too high", and debugs. This binary
// regenerates the scenario at several scales, reports the recovered
// predicates against the injected battery-death ground truth, shows
// the before/after-cleaning series (the figure's two panels), and
// times the pipeline with google-benchmark.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.h"
#include "dbwipes/datagen/intel_generator.h"

namespace dbwipes {
namespace {

using bench::Fmt;
using bench::RunScenario;
using bench::ScenarioOutcome;
using bench::Scenario;
using bench::TablePrinter;

constexpr char kQuery[] =
    "SELECT window, avg(temp) AS avg_temp, stddev(temp) AS sd_temp "
    "FROM readings GROUP BY window";

IntelOptions MakeOptions(int64_t days, double interval_minutes) {
  IntelOptions gen;
  gen.duration_days = days;
  gen.reading_interval_minutes = interval_minutes;
  gen.faults = {{15, (days / 2) * 1440, 720, 122.0},
                {18, (days / 2 + 1) * 1440, 720, 110.0}};
  return gen;
}

Scenario MakeScenario() {
  Scenario s;
  s.sql = kQuery;
  s.select_agg = "sd_temp";
  s.select_lo = 8.0;
  s.select_hi = 1e18;
  s.dprime_filter = "temp > 100";
  s.metric = TooHigh(2.0);  // indoor stddev should be ~1-2 degrees
  s.agg_index = 1;
  return s;
}

void PrintReport() {
  std::printf(
      "=== F4: Intel sensor scenario (paper Figure 4) ===\n"
      "query: %s\n"
      "gesture: brush sd_temp >= 8, zoom, D' = tuples with temp > 100,\n"
      "metric: stddev too high (expected <= 2)\n\n",
      kQuery);

  TablePrinter table({"days", "interval", "rows", "|F|", "top-1 predicate",
                      "P", "R", "F1", "err_impr", "ms"});
  for (const auto& [days, interval] :
       std::vector<std::pair<int64_t, double>>{{4, 10.0}, {7, 5.0},
                                               {14, 2.0}}) {
    IntelOptions gen = MakeOptions(days, interval);
    LabeledDataset data = *GenerateIntelDataset(gen);
    ScenarioOutcome out = RunScenario(data, MakeScenario());
    if (!out.ok) {
      table.AddRow({std::to_string(days), Fmt(interval, 1),
                    std::to_string(data.table->num_rows()), "-",
                    "FAILED: " + out.error, "-", "-", "-", "-", "-"});
      continue;
    }
    table.AddRow({std::to_string(days), Fmt(interval, 1),
                  std::to_string(data.table->num_rows()),
                  std::to_string(out.num_suspect_inputs), out.top1_text,
                  Fmt(out.top1.precision), Fmt(out.top1.recall),
                  Fmt(out.top1.f1),
                  Fmt(out.explanation.predicates.empty()
                          ? 0.0
                          : out.explanation.predicates[0].error_improvement),
                  Fmt(out.total_ms, 0)});
  }
  table.Print();

  // The figure's two panels: the stddev series before and after
  // clicking the top predicate (7-day configuration).
  IntelOptions gen = MakeOptions(7, 5.0);
  LabeledDataset data = *GenerateIntelDataset(gen);
  auto db = std::make_shared<Database>();
  db->RegisterTable(data.table);
  Session session(db);
  DBW_CHECK_OK(session.ExecuteSql(kQuery));
  auto series_stats = [&session]() {
    double worst = 0.0;
    size_t above8 = 0;
    const QueryResult& r = session.result();
    for (size_t g = 0; g < r.num_groups(); ++g) {
      const double sd = r.AggValue(g, 1);
      if (std::isnan(sd)) continue;
      worst = std::max(worst, sd);
      if (sd >= 8.0) ++above8;
    }
    return std::make_pair(worst, above8);
  };
  const auto [worst_before, suspicious_before] = series_stats();
  DBW_CHECK_OK(session.SelectResultsInRange("sd_temp", 8.0, 1e18));
  DBW_CHECK_OK(session.SelectInputsWhere("temp > 100"));
  DBW_CHECK_OK(session.SetMetric(TooHigh(2.0), 1));
  DBW_CHECK_OK(session.Debug().status());
  DBW_CHECK_OK(session.ApplyPredicate(0));
  const auto [worst_after, suspicious_after] = series_stats();
  std::printf(
      "\nseries before cleaning: max sd_temp = %.2f, %zu windows >= 8\n"
      "series after  cleaning: max sd_temp = %.2f, %zu windows >= 8\n"
      "cleaned query: %s\n\n",
      worst_before, suspicious_before, worst_after, suspicious_after,
      session.CurrentSql().c_str());
}

void BM_Fig4Pipeline(benchmark::State& state) {
  IntelOptions gen = MakeOptions(state.range(0), 10.0);
  LabeledDataset data = *GenerateIntelDataset(gen);
  const Scenario scenario = MakeScenario();
  double f1 = 0.0;
  for (auto _ : state) {
    ScenarioOutcome out = RunScenario(data, scenario);
    f1 = out.top1.f1;
    benchmark::DoNotOptimize(out);
  }
  state.counters["rows"] = static_cast<double>(data.table->num_rows());
  state.counters["top1_f1"] = f1;
}
BENCHMARK(BM_Fig4Pipeline)->Arg(4)->Arg(7)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dbwipes

int main(int argc, char** argv) {
  dbwipes::PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
