// Ranking-engine throughput: delta scoring (RemovalScorer + bitmap
// matching + chunked parallel scoring) vs the from-scratch serial
// reference, on the acceptance scenario (100k rows, 8 explainable
// attributes, several hundred candidate predicates).
//
// Besides the report table, emits machine-readable BENCH_rank.json
// (in the working directory) with the before/after timings so CI can
// track the speedup.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dbwipes/common/parallel.h"
#include "dbwipes/core/predicate_ranker.h"
#include "dbwipes/core/preprocessor.h"
#include "dbwipes/datagen/synthetic.h"
#include "dbwipes/expr/parser.h"

namespace dbwipes {
namespace {

using bench::Fmt;
using bench::TablePrinter;

/// Everything Rank() consumes, prepared once.
struct RankProblem {
  LabeledDataset data;
  QueryResult result;
  std::vector<size_t> selected_groups;
  ErrorMetricPtr metric;
  std::vector<RowId> suspects;
  std::vector<RowId> reference;
  double per_group_baseline = 0.0;
  std::vector<EnumeratedPredicate> predicates;
};

/// Builds a candidate set the size a real Debug() sees: threshold
/// sweeps over every numeric attribute, equalities over every
/// categorical value, plus two-clause conjunctions — a few hundred
/// predicates over 8 attributes.
std::vector<EnumeratedPredicate> MakeCandidates(const SyntheticOptions& gen) {
  std::vector<EnumeratedPredicate> out;
  auto add = [&out](Predicate p) {
    EnumeratedPredicate ep;
    ep.predicate = std::move(p);
    ep.strategy = "bench";
    out.push_back(std::move(ep));
  };
  std::vector<Clause> numeric, categorical;
  for (size_t a = 0; a < gen.num_numeric_attrs; ++a) {
    const std::string col = "a" + std::to_string(a);
    for (int t = -12; t <= 12; ++t) {
      const double cut = t / 6.0;  // sweep the N(0,1) support
      numeric.push_back(Clause::Make(col, CompareOp::kGe, Value(cut)));
      numeric.push_back(Clause::Make(col, CompareOp::kLe, Value(cut)));
    }
  }
  for (size_t c = 0; c < gen.num_categorical_attrs; ++c) {
    const std::string col = "c" + std::to_string(c);
    for (size_t k = 0; k < gen.categorical_cardinality; ++k) {
      categorical.push_back(Clause::Make(
          col, CompareOp::kEq, Value("cat_" + std::to_string(k))));
    }
  }
  for (const Clause& c : numeric) add(Predicate({c}));
  for (const Clause& c : categorical) add(Predicate({c}));
  // Two-clause conjunctions: every categorical x a numeric stride.
  for (size_t i = 0; i < categorical.size(); ++i) {
    for (size_t j = i % 7; j < numeric.size(); j += 7) {
      add(Predicate({categorical[i], numeric[j]}));
    }
  }
  return out;
}

RankProblem BuildProblem(size_t rows = 100000) {
  SyntheticOptions gen;
  gen.num_rows = rows;
  gen.num_numeric_attrs = 4;
  gen.num_categorical_attrs = 4;
  gen.anomaly_selectivity = 0.03;

  RankProblem p;
  p.data = *GenerateSyntheticDataset(gen);
  AggregateQuery query =
      *ParseQuery("SELECT g, avg(v) AS a FROM synthetic GROUP BY g");
  p.result = *ExecuteQuery(query, *p.data.table);
  for (size_t g = 0; g < p.result.num_groups(); ++g) {
    if (p.result.AggValue(g, 0) >= 50.8) p.selected_groups.push_back(g);
  }
  p.metric = TooHigh(50.0);
  PreprocessResult pre = *Preprocessor::Run(*p.data.table, p.result,
                                            p.selected_groups, *p.metric);
  p.suspects = pre.suspect_inputs;
  p.per_group_baseline = pre.per_group_baseline_error;
  // Accuracy reference: the top positive-influence quartile, as the
  // pipeline uses when the user gives no examples.
  std::vector<const TupleInfluence*> positive;
  for (const TupleInfluence& ti : pre.influences) {
    if (ti.influence > 0.0) positive.push_back(&ti);
  }
  for (size_t i = 0; i < positive.size() / 4; ++i) {
    p.reference.push_back(positive[i]->row);
  }
  std::sort(p.reference.begin(), p.reference.end());
  p.predicates = MakeCandidates(gen);
  return p;
}

std::vector<RankedPredicate> RunEngine(const RankProblem& p,
                                       RankerOptions::Engine engine,
                                       size_t threads) {
  RankerOptions opts;
  opts.engine = engine;
  opts.num_threads = threads;
  PredicateRanker ranker(opts);
  auto ranked =
      ranker.Rank(*p.data.table, p.result, p.selected_groups, *p.metric,
                  /*agg_index=*/0, p.suspects, p.reference,
                  p.per_group_baseline, p.predicates);
  DBW_CHECK_OK(ranked.status());
  return *std::move(ranked);
}

double MedianMs(const std::function<void()>& fn, int reps) {
  std::vector<double> ms;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    ms.push_back(std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count());
  }
  std::sort(ms.begin(), ms.end());
  return ms[ms.size() / 2];
}

bool SameOrder(const std::vector<RankedPredicate>& a,
               const std::vector<RankedPredicate>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].predicate.CanonicalString() != b[i].predicate.CanonicalString())
      return false;
  }
  return true;
}

void PrintReportAndJson() {
  std::printf("=== ranking engine: delta+parallel vs serial reference ===\n\n");
  RankProblem p = BuildProblem();
  std::printf("rows=%zu  |F|=%zu  selected_groups=%zu  predicates=%zu  "
              "threads=%zu\n\n",
              p.data.table->num_rows(), p.suspects.size(),
              p.selected_groups.size(), p.predicates.size(),
              DefaultParallelism());

  const int reps = 5;
  const auto reference =
      RunEngine(p, RankerOptions::Engine::kReferenceSerial, 1);
  const double before_ms = MedianMs(
      [&] { RunEngine(p, RankerOptions::Engine::kReferenceSerial, 1); },
      reps);
  const auto delta1 = RunEngine(p, RankerOptions::Engine::kDeltaParallel, 1);
  const double delta1_ms = MedianMs(
      [&] { RunEngine(p, RankerOptions::Engine::kDeltaParallel, 1); }, reps);
  const auto deltaN = RunEngine(p, RankerOptions::Engine::kDeltaParallel, 0);
  const double deltaN_ms = MedianMs(
      [&] { RunEngine(p, RankerOptions::Engine::kDeltaParallel, 0); }, reps);

  const bool orders_match =
      SameOrder(reference, delta1) && SameOrder(reference, deltaN);
  const double preds = static_cast<double>(p.predicates.size());

  TablePrinter table({"engine", "median_ms", "preds_per_sec", "speedup"});
  table.AddRow({"reference_serial", Fmt(before_ms, 1),
                Fmt(preds / before_ms * 1000.0, 0), "1.0"});
  table.AddRow({"delta_1_thread", Fmt(delta1_ms, 1),
                Fmt(preds / delta1_ms * 1000.0, 0),
                Fmt(before_ms / delta1_ms, 1)});
  table.AddRow({"delta_parallel", Fmt(deltaN_ms, 1),
                Fmt(preds / deltaN_ms * 1000.0, 0),
                Fmt(before_ms / deltaN_ms, 1)});
  table.Print();
  std::printf("\nidentical orderings across engines: %s\n\n",
              orders_match ? "yes" : "NO — BUG");

  FILE* f = std::fopen("BENCH_rank.json", "w");
  if (f != nullptr) {
    std::fprintf(
        f,
        "{\n"
        "  \"scenario\": {\"rows\": %zu, \"attributes\": 8, "
        "\"predicates\": %zu, \"suspects\": %zu, \"threads\": %zu},\n"
        "  \"before\": {\"engine\": \"reference_serial\", "
        "\"median_ms\": %.3f, \"predicates_per_sec\": %.1f},\n"
        "  \"after_serial\": {\"engine\": \"delta_1_thread\", "
        "\"median_ms\": %.3f, \"predicates_per_sec\": %.1f},\n"
        "  \"after\": {\"engine\": \"delta_parallel\", "
        "\"median_ms\": %.3f, \"predicates_per_sec\": %.1f},\n"
        "  \"speedup_delta_serial\": %.2f,\n"
        "  \"speedup_total\": %.2f,\n"
        "  \"orderings_identical\": %s\n"
        "}\n",
        p.data.table->num_rows(), p.predicates.size(), p.suspects.size(),
        DefaultParallelism(), before_ms, preds / before_ms * 1000.0,
        delta1_ms, preds / delta1_ms * 1000.0, deltaN_ms,
        preds / deltaN_ms * 1000.0, before_ms / delta1_ms,
        before_ms / deltaN_ms, orders_match ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_rank.json\n\n");
  }
}

const RankProblem& SmallProblem() {
  static const RankProblem* p = new RankProblem(BuildProblem(20000));
  return *p;
}

void BM_RankReferenceSerial(benchmark::State& state) {
  const RankProblem& p = SmallProblem();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunEngine(p, RankerOptions::Engine::kReferenceSerial, 1));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(p.predicates.size()));
}
BENCHMARK(BM_RankReferenceSerial)->Unit(benchmark::kMillisecond);

void BM_RankDelta(benchmark::State& state) {
  const RankProblem& p = SmallProblem();
  const size_t threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunEngine(p, RankerOptions::Engine::kDeltaParallel, threads));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(p.predicates.size()));
}
BENCHMARK(BM_RankDelta)
    ->Arg(1)   // single-threaded delta
    ->Arg(0)   // DefaultParallelism()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dbwipes

int main(int argc, char** argv) {
  dbwipes::PrintReportAndJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
