// E1 — explanation quality vs baselines (the quantitative evaluation
// the demo paper does not include).
//
// Methods compared on ground-truth-labeled datasets:
//   dbwipes-top1 / dbwipes-top5 : ranked predicates (this paper)
//   naive-prov                  : fine-grained provenance = all of F
//   infl-topk                   : top-k tuples by leave-one-out
//                                 influence (k = |truth ∩ F|)
//   exhaustive                  : best predicate by brute-force search
//
// Expected shape: naive provenance has perfect recall but terrible
// precision (the paper's motivating complaint); influence-topk is
// precise but returns bare tuples (and here is scored generously);
// DBWipes matches exhaustive quality at a fraction of the cost.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_util.h"
#include "dbwipes/core/baselines.h"
#include "dbwipes/datagen/fec_generator.h"
#include "dbwipes/datagen/intel_generator.h"
#include "dbwipes/datagen/synthetic.h"
#include "dbwipes/expr/parser.h"

namespace dbwipes {
namespace {

using bench::Fmt;
using bench::RunScenario;
using bench::ScenarioOutcome;
using bench::Scenario;
using bench::TablePrinter;

struct Prepared {
  LabeledDataset data;
  QueryResult result;
  std::vector<size_t> selected;
  PreprocessResult pre;
  ErrorMetricPtr metric;
  size_t agg_index = 0;
  std::vector<std::string> explain_columns;
};

Result<Prepared> Prepare(LabeledDataset data, const Scenario& scenario) {
  Prepared p;
  p.data = std::move(data);
  DBW_ASSIGN_OR_RETURN(AggregateQuery query, ParseQuery(scenario.sql));
  DBW_ASSIGN_OR_RETURN(p.result, ExecuteQuery(query, *p.data.table));
  DBW_ASSIGN_OR_RETURN(size_t col,
                       p.result.rows->schema().GetIndex(scenario.select_agg));
  for (RowId g = 0; g < p.result.rows->num_rows(); ++g) {
    const Column& c = p.result.rows->column(col);
    if (c.IsNull(g)) continue;
    const double v = c.AsDouble(g);
    if (v >= scenario.select_lo && v <= scenario.select_hi) {
      p.selected.push_back(g);
    }
  }
  if (p.selected.empty()) return Status::NotFound("nothing selected");
  p.metric = scenario.metric;
  p.agg_index = scenario.agg_index;
  DBW_ASSIGN_OR_RETURN(
      p.pre, Preprocessor::Run(*p.data.table, p.result, p.selected,
                               *p.metric, p.agg_index));
  p.explain_columns =
      DefaultExplainColumns(*p.data.table, p.result.query, p.agg_index);
  return p;
}

void AddMethodRows(TablePrinter* table, const std::string& dataset,
                   const Prepared& p, const Scenario& scenario) {
  const std::vector<RowId> truth = p.data.AllAnomalousRows();
  std::vector<RowId> truth_in_f;
  std::set_intersection(truth.begin(), truth.end(),
                        p.pre.suspect_inputs.begin(),
                        p.pre.suspect_inputs.end(),
                        std::back_inserter(truth_in_f));

  auto add = [&](const std::string& method, const ExplanationQuality& q,
                 double ms, const std::string& note) {
    table->AddRow({dataset, method, Fmt(q.precision), Fmt(q.recall),
                   Fmt(q.f1), Fmt(ms, 0), note});
  };

  // DBWipes.
  {
    ScenarioOutcome out = RunScenario(p.data, scenario);
    if (out.ok) {
      add("dbwipes-top1", out.top1, out.total_ms, out.top1_text);
      add("dbwipes-top5", out.best5, out.total_ms, "(best of top 5)");
    } else {
      table->AddRow({dataset, "dbwipes", "-", "-", "-", "-",
                     "FAILED: " + out.error});
    }
  }
  // Naive fine-grained provenance.
  {
    TupleSetExplanation naive = NaiveProvenance(p.pre);
    add("naive-prov", ScoreTupleSet(naive.rows, truth_in_f), 0.0,
        "all of F");
  }
  // Influence top-k.
  {
    TupleSetExplanation topk = InfluenceTopK(p.pre, truth_in_f.size());
    add("infl-topk", ScoreTupleSet(topk.rows, truth_in_f), 0.0,
        "k = |truth in F|");
  }
  // Exhaustive search.
  {
    auto view = FeatureView::Create(*p.data.table, p.explain_columns);
    ExhaustiveSearchOptions opts;
    opts.max_clauses = 2;
    size_t evaluated = 0;
    const auto t0 = std::chrono::steady_clock::now();
    auto ranked = ExhaustivePredicateSearch(
        *p.data.table, p.result, p.selected, *p.metric, p.agg_index, *view,
        p.pre, opts, &evaluated);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (ranked.ok() && !ranked->empty()) {
      auto q = ScorePredicate(*p.data.table, (*ranked)[0].predicate, truth);
      add("exhaustive", q.ok() ? *q : ExplanationQuality{}, ms,
          std::to_string(evaluated) + " predicates tried");
    } else {
      table->AddRow({dataset, "exhaustive", "-", "-", "-", Fmt(ms, 0),
                     "no predicate"});
    }
  }
}

Scenario SyntheticScenario(double selectivity = 0.02) {
  Scenario s;
  s.sql = "SELECT g, avg(v) AS a FROM synthetic GROUP BY g";
  s.select_agg = "a";
  // Brush threshold scales with the anomaly's expected effect on a
  // group average (selectivity * shift), so even low-selectivity
  // anomalies are selectable the way a user eyeballing the plot would.
  s.select_lo = 50.0 + std::max(0.08, 0.5 * selectivity * 40.0);
  s.select_hi = 1e18;
  s.dprime_filter = "v > 75";
  s.metric = TooHigh(50.0);
  return s;
}

void PrintReport() {
  std::printf(
      "=== E1: explanation quality vs baselines ===\n"
      "predicate methods scored against full ground truth; tuple-set\n"
      "methods against truth within F (they cannot see beyond F).\n\n");

  TablePrinter table(
      {"dataset", "method", "precision", "recall", "F1", "ms", "notes"});

  // Synthetic selectivity sweep (2-clause anomaly).
  for (double selectivity : {0.005, 0.02, 0.05, 0.15}) {
    SyntheticOptions gen;
    gen.num_rows = 30000;
    gen.anomaly_selectivity = selectivity;
    gen.anomaly_clauses = 2;
    auto prepared = Prepare(*GenerateSyntheticDataset(gen),
                            SyntheticScenario(selectivity));
    const std::string name = "synth-2c/" + Fmt(selectivity, 3);
    if (!prepared.ok()) {
      table.AddRow({name, "-", "-", "-", "-", "-",
                    prepared.status().ToString()});
      continue;
    }
    AddMethodRows(&table, name, *prepared, SyntheticScenario(selectivity));
  }

  // Synthetic 1-clause anomaly.
  {
    SyntheticOptions gen;
    gen.num_rows = 30000;
    gen.anomaly_selectivity = 0.02;
    gen.anomaly_clauses = 1;
    auto prepared = Prepare(*GenerateSyntheticDataset(gen),
                            SyntheticScenario());
    if (prepared.ok()) {
      AddMethodRows(&table, "synth-1c/0.020", *prepared,
                    SyntheticScenario());
    }
  }

  // Intel.
  {
    IntelOptions gen;
    gen.duration_days = 7;
    gen.reading_interval_minutes = 5.0;
    Scenario s;
    s.sql =
        "SELECT window, avg(temp) AS avg_temp, stddev(temp) AS sd_temp "
        "FROM readings GROUP BY window";
    s.select_agg = "sd_temp";
    s.select_lo = 8.0;
    s.select_hi = 1e18;
    s.dprime_filter = "temp > 100";
    s.metric = TooHigh(2.0);
    s.agg_index = 1;
    auto prepared = Prepare(*GenerateIntelDataset(gen), s);
    if (prepared.ok()) AddMethodRows(&table, "intel", *prepared, s);
  }

  // FEC.
  {
    FecOptions gen;
    Scenario s;
    s.sql =
        "SELECT day, sum(amount) AS total FROM donations "
        "WHERE candidate = 'MCCAIN' GROUP BY day";
    s.select_agg = "total";
    s.select_lo = -1e18;
    s.select_hi = -1.0;
    s.dprime_filter = "amount < 0";
    s.metric = TooLow(0.0);
    auto prepared = Prepare(*GenerateFecDataset(gen), s);
    if (prepared.ok()) AddMethodRows(&table, "fec", *prepared, s);
  }

  table.Print();
  std::printf("\n");
}

void BM_QualityDbwipesSynthetic(benchmark::State& state) {
  SyntheticOptions gen;
  gen.num_rows = 30000;
  gen.anomaly_selectivity = 0.02;
  LabeledDataset data = *GenerateSyntheticDataset(gen);
  const Scenario scenario = SyntheticScenario();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunScenario(data, scenario));
  }
}
BENCHMARK(BM_QualityDbwipesSynthetic)->Unit(benchmark::kMillisecond);

void BM_QualityExhaustiveSynthetic(benchmark::State& state) {
  SyntheticOptions gen;
  gen.num_rows = 30000;
  gen.anomaly_selectivity = 0.02;
  auto prepared = Prepare(*GenerateSyntheticDataset(gen),
                          SyntheticScenario());
  DBW_CHECK(prepared.ok());
  auto view =
      FeatureView::Create(*prepared->data.table, prepared->explain_columns);
  ExhaustiveSearchOptions opts;
  opts.max_clauses = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExhaustivePredicateSearch(
        *prepared->data.table, prepared->result, prepared->selected,
        *prepared->metric, prepared->agg_index, *view, prepared->pre, opts,
        nullptr));
  }
}
BENCHMARK(BM_QualityExhaustiveSynthetic)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dbwipes

int main(int argc, char** argv) {
  dbwipes::PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
