// Service admission-control benchmark: one queued service driven at
// offered loads of 1x, 4x, and 16x its queue capacity, plus an
// unloaded sequential baseline. Reports throughput of accepted
// requests, accepted-latency p50/p99, and the shed rate at each load
// level — the numbers that size `queue_capacity` and `num_workers`
// for a deployment (see DESIGN.md section 5g).
//
// Emits machine-readable BENCH_service.json (working directory).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "dbwipes/common/parallel.h"
#include "dbwipes/common/random.h"
#include "dbwipes/core/service.h"

namespace dbwipes {
namespace {

using bench::Fmt;
using bench::TablePrinter;
using Clock = std::chrono::steady_clock;

constexpr size_t kQueueCapacity = 32;
constexpr size_t kNumWorkers = 4;
constexpr size_t kNumSessions = 8;
constexpr int kRepeatsPerLoad = 6;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p * static_cast<double>(v.size()));
  return v[std::min(idx, v.size() - 1)];
}

/// 8 groups x 750 rows; groups 4..7 carry an injected anomaly tagged
/// by `tag` and elevated `v`, so each session's `debug` does real
/// ranking work while staying a few milliseconds per call.
std::shared_ptr<Database> MakeDb() {
  Rng rng(7);
  auto t = std::make_shared<Table>(Schema{{"g", DataType::kInt64},
                                          {"tag", DataType::kString},
                                          {"x", DataType::kDouble},
                                          {"v", DataType::kDouble}},
                                   "w");
  for (int g = 0; g < 8; ++g) {
    for (int i = 0; i < 750; ++i) {
      const bool bad = g >= 4 && i < 150;
      if (!t->AppendRow({Value(static_cast<int64_t>(g)),
                         Value(bad ? "bad" : "fine"), Value(rng.Normal(0, 1)),
                         Value(bad ? rng.Normal(100, 2)
                                   : rng.Normal(10, 2))})
               .ok()) {
        std::exit(1);
      }
    }
  }
  auto db = std::make_shared<Database>();
  db->RegisterTable(t);
  return db;
}

/// Brings session `@sN` to the debuggable state: query run, suspect
/// groups selected, metric set. The benchmark then replays `debug`.
void PrepareSessions(Service& service) {
  for (size_t s = 0; s < kNumSessions; ++s) {
    const std::string at = "@s" + std::to_string(s) + " ";
    for (const std::string& cmd :
         {at + "sql SELECT g, avg(v) AS a FROM w GROUP BY g",
          at + "select_range a 20 1e9", at + "metric too_high 12"}) {
      const std::string out = service.Execute(cmd);
      if (out.find("\"ok\": true") == std::string::npos) {
        std::fprintf(stderr, "setup failed: %s -> %s\n", cmd.c_str(),
                     out.substr(0, 200).c_str());
        std::exit(1);
      }
    }
  }
}

std::string DebugCmd(size_t i) {
  return "@s" + std::to_string(i % kNumSessions) + " debug";
}

struct LoadResult {
  size_t offered = 0;
  size_t accepted = 0;
  size_t shed = 0;
  double wall_ms = 0.0;
  double accepted_p50_ms = 0.0;
  double accepted_p99_ms = 0.0;
  double throughput_rps = 0.0;  // accepted requests / wall second
  double shed_rate = 0.0;
};

/// Sequential closed-loop baseline: one client, no queue pressure.
LoadResult RunUnloaded(Service& service, size_t requests) {
  LoadResult r;
  r.offered = requests;
  std::vector<double> lat;
  const auto start = Clock::now();
  for (size_t i = 0; i < requests; ++i) {
    const auto t0 = Clock::now();
    const std::string out = service.Execute(DebugCmd(i));
    lat.push_back(MsSince(t0));
    if (out.find("\"ok\": true") != std::string::npos) ++r.accepted;
  }
  r.wall_ms = MsSince(start);
  r.accepted_p50_ms = Percentile(lat, 0.5);
  r.accepted_p99_ms = Percentile(lat, 0.99);
  r.throughput_rps =
      r.wall_ms > 0.0 ? static_cast<double>(r.accepted) / (r.wall_ms / 1e3)
                      : 0.0;
  return r;
}

/// Open-loop burst at `multiplier` times the queue capacity, repeated
/// kRepeatsPerLoad times (latencies pooled across repeats). Futures
/// are collected in submission order; the admission queue is FIFO, so
/// observed resolution order tracks completion order closely.
LoadResult RunBurst(Service& service, size_t multiplier) {
  LoadResult r;
  std::vector<double> lat;
  double wall_ms = 0.0;
  for (int rep = 0; rep < kRepeatsPerLoad; ++rep) {
    const size_t n = multiplier * kQueueCapacity;
    std::vector<std::future<std::string>> futures;
    std::vector<Clock::time_point> enqueued;
    futures.reserve(n);
    enqueued.reserve(n);
    const auto start = Clock::now();
    for (size_t i = 0; i < n; ++i) {
      enqueued.push_back(Clock::now());
      futures.push_back(service.Submit(DebugCmd(i)));
    }
    for (size_t i = 0; i < n; ++i) {
      const std::string out = futures[i].get();
      if (out.find("\"ok\": true") != std::string::npos) {
        ++r.accepted;
        lat.push_back(MsSince(enqueued[i]));
      } else {
        ++r.shed;
      }
    }
    wall_ms += MsSince(start);
    r.offered += n;
  }
  r.wall_ms = wall_ms;
  r.accepted_p50_ms = Percentile(lat, 0.5);
  r.accepted_p99_ms = Percentile(lat, 0.99);
  r.throughput_rps =
      wall_ms > 0.0 ? static_cast<double>(r.accepted) / (wall_ms / 1e3) : 0.0;
  r.shed_rate = r.offered > 0
                    ? static_cast<double>(r.shed) / static_cast<double>(r.offered)
                    : 0.0;
  return r;
}

void AppendJson(std::string& out, const std::string& name,
                const LoadResult& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"%s\": {\"offered\": %zu, \"accepted\": %zu, "
                "\"shed\": %zu, \"shed_rate\": %.4f, "
                "\"throughput_rps\": %.1f, \"p50_ms\": %.3f, "
                "\"p99_ms\": %.3f}",
                name.c_str(), r.offered, r.accepted, r.shed, r.shed_rate,
                r.throughput_rps, r.accepted_p50_ms, r.accepted_p99_ms);
  if (!out.empty()) out += ",\n";
  out += buf;
}

void Run() {
  ServiceOptions options;
  options.num_workers = kNumWorkers;
  options.queue_capacity = kQueueCapacity;
  Service service(MakeDb(), options);
  PrepareSessions(service);
  if (!service.Start().ok()) {
    std::fprintf(stderr, "service failed to start\n");
    std::exit(1);
  }
  // Warm every session's debug path (fills the clause-bitmap caches).
  for (size_t s = 0; s < kNumSessions; ++s) (void)service.Execute(DebugCmd(s));

  const LoadResult unloaded = RunUnloaded(service, 2 * kQueueCapacity);
  const LoadResult x1 = RunBurst(service, 1);
  const LoadResult x4 = RunBurst(service, 4);
  const LoadResult x16 = RunBurst(service, 16);
  service.Stop();

  TablePrinter table({"load", "offered", "accepted", "shed_rate",
                      "throughput_rps", "p50_ms", "p99_ms"});
  auto row = [&table](const char* name, const LoadResult& r) {
    table.AddRow({name, std::to_string(r.offered), std::to_string(r.accepted),
                  Fmt(r.shed_rate * 100.0, 1) + "%", Fmt(r.throughput_rps, 1),
                  Fmt(r.accepted_p50_ms, 2), Fmt(r.accepted_p99_ms, 2)});
  };
  row("unloaded", unloaded);
  row("1x_capacity", x1);
  row("4x_capacity", x4);
  row("16x_capacity", x16);
  table.Print();
  std::printf("\naccepted p99 at 16x vs unloaded p99: %.1fx\n",
              unloaded.accepted_p99_ms > 0.0
                  ? x16.accepted_p99_ms / unloaded.accepted_p99_ms
                  : 0.0);

  std::string body;
  AppendJson(body, "unloaded", unloaded);
  AppendJson(body, "x1", x1);
  AppendJson(body, "x4", x4);
  AppendJson(body, "x16", x16);
  FILE* f = std::fopen("BENCH_service.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"config\": {\"workers\": %zu, \"queue_capacity\": %zu, "
                 "\"sessions\": %zu, \"repeats\": %d, \"threads\": %zu},\n"
                 "%s\n"
                 "}\n",
                 kNumWorkers, kQueueCapacity, kNumSessions, kRepeatsPerLoad,
                 DefaultParallelism(), body.c_str());
    std::fclose(f);
    std::printf("wrote BENCH_service.json\n");
  }
}

}  // namespace
}  // namespace dbwipes

int main() {
  dbwipes::Run();
  return 0;
}
