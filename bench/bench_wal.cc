// WAL durability overhead on the clean-as-you-query loop. Three
// workloads, each run with the log off and on:
//
//   stream  — the demo's steady state: append a batch of readings,
//             then re-rank the standing explanation. Ranking dominates,
//             so the fsync-per-command tax should mostly disappear;
//             the acceptance line is wal-on <= 2x wal-off.
//   append  — pure single-client appends, the worst case for a
//             sync-on-commit log: every command pays a full fsync.
//   group   — the same appends from concurrent clients: the group
//             commit leader should amortize one fsync over many
//             acknowledgements (fsyncs/append well under 1).
//
// Emits machine-readable BENCH_wal.json (working directory).

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "dbwipes/common/random.h"
#include "dbwipes/core/service.h"

namespace dbwipes {
namespace {

using bench::Fmt;
using bench::TablePrinter;

constexpr size_t kStreamIterations = 4;
constexpr size_t kStreamBatchRows = 32;
constexpr size_t kAppendOps = 400;
constexpr size_t kGroupThreads = 4;
constexpr size_t kGroupOpsPerThread = 100;

std::string FreshWalDir(const std::string& name) {
  // Prefer tmpfs so the numbers measure the logging machinery (record
  // encode, group commit, checkpointing), not this box's disk.
  const std::string root =
      ::access("/dev/shm", W_OK) == 0 ? "/dev/shm" : "/tmp";
  const std::string dir =
      root + "/bench_wal_" + std::to_string(::getpid()) + "_" + name;
  std::system(("rm -rf '" + dir + "'").c_str());
  return dir;
}

std::shared_ptr<Database> MakeDb() {
  Rng rng(53);
  auto t = std::make_shared<Table>(Schema{{"g", DataType::kInt64},
                                          {"tag", DataType::kString},
                                          {"v", DataType::kDouble}},
                                   "w");
  for (int g = 0; g < 8; ++g) {
    for (int i = 0; i < 2500; ++i) {
      const bool bad = g >= 6 && i < 400;
      DBW_CHECK_OK(t->AppendRow({Value(static_cast<int64_t>(g)),
                                 Value(bad ? "bad" : "fine"),
                                 Value(bad ? rng.Normal(100, 2)
                                           : rng.Normal(10, 2))}));
    }
  }
  auto db = std::make_shared<Database>();
  db->RegisterTable(t);
  return db;
}

std::unique_ptr<Service> MakeService(bool wal, const std::string& dir,
                                     FaultInjector* faults = nullptr) {
  ServiceOptions options;
  if (wal) options.wal.dir = dir;
  options.wal.faults = faults;
  return std::make_unique<Service>(MakeDb(), options);
}

long long JsonInt(const std::string& response, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const size_t at = response.find(needle);
  if (at == std::string::npos) return -1;
  return std::strtoll(response.c_str() + at + needle.size(), nullptr, 10);
}

void MustOk(const std::string& response) {
  if (response.compare(0, 11, "{\"ok\": true") != 0) {
    std::fprintf(stderr, "bench_wal: command failed: %s\n", response.c_str());
    std::abort();
  }
}

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// The demo loop: standing explanation, then (append batch, re-rank)
/// per iteration. Returns wall ms for the timed loop.
double RunStream(bool wal) {
  const std::string dir = FreshWalDir(wal ? "stream_on" : "stream_off");
  auto service = MakeService(wal, dir);
  MustOk(service->Execute("sql SELECT g, avg(v) AS a FROM w GROUP BY g"));
  MustOk(service->Execute("select_range a 20 1e9"));
  MustOk(service->Execute("metric too_high 12"));
  MustOk(service->Execute("shards w 4"));
  MustOk(service->Execute("debug"));  // warm the shard caches (untimed)

  const auto t0 = std::chrono::steady_clock::now();
  for (size_t iter = 0; iter < kStreamIterations; ++iter) {
    for (size_t i = 0; i < kStreamBatchRows; ++i) {
      MustOk(service->Execute("append w 1 fine 10.0"));
    }
    MustOk(service->Execute("debug"));
  }
  const double ms = MsSince(t0);
  std::system(("rm -rf '" + dir + "'").c_str());
  return ms;
}

struct AppendResult {
  double ms = 0.0;
  double ops_per_sec = 0.0;
  long long fsyncs = -1;      // wal-on only
  double fsyncs_per_op = 0.0; // wal-on only
};

AppendResult RunAppends(bool wal, size_t threads, const std::string& tag,
                        double fsync_latency_ms = 0.0) {
  const std::string dir = FreshWalDir(tag);
  // On tmpfs a real fsync is near-free, so group commit never has a
  // queue to drain; an injected per-fsync latency stands in for a
  // spinning disk and lets the amortization show up in fsyncs/op.
  FaultInjector faults;
  if (fsync_latency_ms > 0.0) {
    FaultInjector::Fault slow;
    slow.latency_ms = fsync_latency_ms;
    slow.count = 0;  // every fsync
    faults.Arm("wal/fsync", slow);
  }
  auto service =
      MakeService(wal, dir, fsync_latency_ms > 0.0 ? &faults : nullptr);
  MustOk(service->Execute("shards w 4"));

  const size_t per_thread =
      threads == 1 ? kAppendOps : kGroupOpsPerThread;
  const size_t total = threads * per_thread;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&service, per_thread] {
      for (size_t i = 0; i < per_thread; ++i) {
        MustOk(service->Execute("append w 1 fine 10.0"));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  AppendResult r;
  r.ms = MsSince(t0);
  r.ops_per_sec = static_cast<double>(total) / (r.ms / 1000.0);
  if (wal) {
    const std::string status = service->Execute("wal status");
    r.fsyncs = JsonInt(status, "fsyncs");
    const long long appends = JsonInt(status, "appends");
    if (appends > 0) {
      r.fsyncs_per_op =
          static_cast<double>(r.fsyncs) / static_cast<double>(appends);
    }
  }
  std::system(("rm -rf '" + dir + "'").c_str());
  return r;
}

void PrintReportAndJson() {
  std::printf("=== write-ahead log: durability overhead ===\n\n");
  std::printf("workload: 20k-row world, %zu x (%zu appends + re-rank) "
              "stream; %zu pure appends; %zu x %zu concurrent appends\n\n",
              kStreamIterations, kStreamBatchRows, kAppendOps, kGroupThreads,
              kGroupOpsPerThread);

  const double stream_off = RunStream(/*wal=*/false);
  const double stream_on = RunStream(/*wal=*/true);
  const double stream_overhead = stream_on / stream_off;

  const AppendResult append_off =
      RunAppends(/*wal=*/false, /*threads=*/1, "append_off");
  const AppendResult append_on =
      RunAppends(/*wal=*/true, /*threads=*/1, "append_on");
  const AppendResult group_on =
      RunAppends(/*wal=*/true, kGroupThreads, "group_on");
  // 0.5ms per fsync ~ a fast spinning disk; the single-client run pays
  // it on every append, the concurrent run's leader batches followers.
  constexpr double kSlowFsyncMs = 0.5;
  const AppendResult slow_single =
      RunAppends(/*wal=*/true, /*threads=*/1, "slow_single", kSlowFsyncMs);
  const AppendResult slow_group =
      RunAppends(/*wal=*/true, kGroupThreads, "slow_group", kSlowFsyncMs);

  TablePrinter table({"workload", "wal_off_ms", "wal_on_ms", "overhead",
                      "fsyncs/op"});
  table.AddRow({"stream (append+re-rank)", Fmt(stream_off, 1),
                Fmt(stream_on, 1), Fmt(stream_overhead, 2) + "x", "-"});
  table.AddRow({"pure append x" + std::to_string(kAppendOps),
                Fmt(append_off.ms, 1), Fmt(append_on.ms, 1),
                Fmt(append_on.ms / append_off.ms, 2) + "x",
                Fmt(append_on.fsyncs_per_op, 3)});
  table.AddRow({"group commit x" + std::to_string(kGroupThreads) + " clients",
                "-", Fmt(group_on.ms, 1), "-",
                Fmt(group_on.fsyncs_per_op, 3)});
  table.AddRow({"slow disk, 1 client", "-", Fmt(slow_single.ms, 1), "-",
                Fmt(slow_single.fsyncs_per_op, 3)});
  table.AddRow({"slow disk, " + std::to_string(kGroupThreads) + " clients",
                "-", Fmt(slow_group.ms, 1), "-",
                Fmt(slow_group.fsyncs_per_op, 3)});
  table.Print();
  std::printf("\nstream overhead %.2fx (acceptance: <= 2x); on a simulated "
              "%.1fms-fsync disk, group commit amortized %.3f fsyncs/append "
              "across %zu clients (vs %.3f single-client)\n\n",
              stream_overhead, kSlowFsyncMs, slow_group.fsyncs_per_op,
              kGroupThreads, slow_single.fsyncs_per_op);

  FILE* f = std::fopen("BENCH_wal.json", "w");
  if (f != nullptr) {
    std::fprintf(
        f,
        "{\n"
        "  \"scenario\": {\"rows\": 20000, \"stream_iterations\": %zu, "
        "\"stream_batch_rows\": %zu, \"append_ops\": %zu, "
        "\"group_threads\": %zu, \"group_ops_per_thread\": %zu},\n"
        "  \"stream\": {\"wal_off_ms\": %.3f, \"wal_on_ms\": %.3f, "
        "\"overhead\": %.4f},\n"
        "  \"append\": {\"wal_off_ops_per_sec\": %.1f, "
        "\"wal_on_ops_per_sec\": %.1f, \"overhead\": %.4f, "
        "\"fsyncs_per_op\": %.4f},\n"
        "  \"group_commit\": {\"threads\": %zu, \"ops_per_sec\": %.1f, "
        "\"fsyncs_per_op\": %.4f},\n"
        "  \"slow_disk\": {\"fsync_latency_ms\": %.1f, "
        "\"single_fsyncs_per_op\": %.4f, \"group_fsyncs_per_op\": %.4f, "
        "\"group_ops_per_sec\": %.1f},\n"
        "  \"acceptance\": {\"stream_overhead_max\": 2.0, "
        "\"stream_overhead\": %.4f, \"pass\": %s}\n"
        "}\n",
        kStreamIterations, kStreamBatchRows, kAppendOps, kGroupThreads,
        kGroupOpsPerThread, stream_off, stream_on, stream_overhead,
        append_off.ops_per_sec, append_on.ops_per_sec,
        append_on.ms / append_off.ms, append_on.fsyncs_per_op, kGroupThreads,
        group_on.ops_per_sec, group_on.fsyncs_per_op, kSlowFsyncMs,
        slow_single.fsyncs_per_op, slow_group.fsyncs_per_op,
        slow_group.ops_per_sec, stream_overhead,
        stream_overhead <= 2.0 ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_wal.json\n\n");
  }
}

}  // namespace
}  // namespace dbwipes

int main(int argc, char** argv) {
  dbwipes::PrintReportAndJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
