// E3 — ablations over the design choices DESIGN.md calls out:
//   * per-group vs global (paper-literal) influence
//   * D'-cleaning on/off, under a noisy user selection
//   * subgroup-discovery extension on/off
//   * split criterion: gini vs gain-ratio vs both (default matrix)
//   * ranker weights: with vs without the complexity penalty

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "dbwipes/datagen/synthetic.h"

namespace dbwipes {
namespace {

using bench::Fmt;
using bench::RunScenario;
using bench::Scenario;
using bench::ScenarioOutcome;
using bench::TablePrinter;

Scenario SyntheticScenario(std::string dprime_filter = "v > 75") {
  Scenario s;
  s.sql = "SELECT g, avg(v) AS a FROM synthetic GROUP BY g";
  s.select_agg = "a";
  s.select_lo = 50.8;
  s.select_hi = 1e18;
  s.dprime_filter = std::move(dprime_filter);
  s.metric = TooHigh(50.0);
  return s;
}

LabeledDataset MakeData(uint64_t seed = 123) {
  SyntheticOptions gen;
  gen.num_rows = 30000;
  gen.anomaly_selectivity = 0.02;
  gen.anomaly_clauses = 2;
  gen.seed = seed;
  return *GenerateSyntheticDataset(gen);
}

void AddRow(TablePrinter* table, const std::string& config,
            const LabeledDataset& data, const Scenario& scenario,
            const ExplainOptions& options) {
  ScenarioOutcome out = RunScenario(data, scenario, options);
  if (!out.ok) {
    table->AddRow({config, "-", "-", "-", "-", "FAILED: " + out.error});
    return;
  }
  table->AddRow({config, Fmt(out.top1.f1), Fmt(out.best5.f1),
                 Fmt(out.explanation.predicates.empty()
                         ? 0.0
                         : out.explanation.predicates[0].error_improvement),
                 Fmt(out.total_ms, 0), out.top1_text});
}

void PrintReport() {
  std::printf(
      "=== E3: ablations (synthetic 2-clause anomaly, 30k rows) ===\n\n");
  LabeledDataset data = MakeData();

  // With a good D' every configuration succeeds; the interesting
  // regime is the one the user starts in — no examples at all — where
  // the influence analysis and the enumerator have to carry the search.
  std::printf("-- no D' supplied (influence-driven search) --\n");
  TablePrinter table({"config", "top1_f1", "top5_f1", "err_impr", "ms",
                      "top-1 predicate"});
  const Scenario no_dprime = SyntheticScenario("");

  AddRow(&table, "default", data, no_dprime, {});
  {
    ExplainOptions o;
    o.per_group_influence = false;
    AddRow(&table, "global-influence (paper-literal)", data, no_dprime, o);
  }
  {
    ExplainOptions o;
    o.enumerator.extend_with_subgroups = false;
    AddRow(&table, "no-subgroup-extension", data, no_dprime, o);
  }
  {
    ExplainOptions o;
    o.enumerator.include_top_influence_candidate = false;
    AddRow(&table, "no-top-influence-candidate", data, no_dprime, o);
  }
  {
    ExplainOptions o;
    o.predicates.strategies.clear();
    DecisionTreeOptions t;
    t.criterion = SplitCriterion::kGini;
    t.max_depth = 4;
    o.predicates.strategies.push_back(t);
    AddRow(&table, "gini-only", data, no_dprime, o);
  }
  {
    ExplainOptions o;
    o.predicates.strategies.clear();
    DecisionTreeOptions t;
    t.criterion = SplitCriterion::kGainRatio;
    t.max_depth = 4;
    o.predicates.strategies.push_back(t);
    AddRow(&table, "gain-ratio-only", data, no_dprime, o);
  }
  {
    ExplainOptions o;
    o.ranker.w_complexity = 0.0;
    AddRow(&table, "no-complexity-penalty", data, no_dprime, o);
  }
  {
    ExplainOptions o;
    o.ranker.w_accuracy = 0.0;
    o.ranker.w_error = 0.9;
    AddRow(&table, "no-accuracy-term", data, no_dprime, o);
  }
  {
    ExplainOptions o;
    o.merge_predicates = false;
    AddRow(&table, "no-predicate-merging", data, no_dprime, o);
  }
  {
    ExplainOptions o;
    o.predicates.add_bounding_predicates = false;
    AddRow(&table, "no-bounding-descriptions", data, no_dprime, o);
  }
  table.Print();

  std::printf("\n-- good D' supplied (D' = v > 75) --\n");
  TablePrinter with_dprime({"config", "top1_f1", "top5_f1", "err_impr",
                            "ms", "top-1 predicate"});
  AddRow(&with_dprime, "default", data, SyntheticScenario(), {});
  {
    ExplainOptions o;
    o.enumerator.extend_with_subgroups = false;
    AddRow(&with_dprime, "no-subgroup-extension", data, SyntheticScenario(),
           o);
  }
  with_dprime.Print();

  // D'-cleaning ablation needs a *noisy* D': "v > 55" sweeps in a
  // sizable share of ordinary tuples next to the anomalous ones.
  std::printf("\n-- D' cleaning under a sloppy user selection "
              "(D' = v > 55, ~1 in 5 normal tuples included) --\n");
  TablePrinter noisy({"config", "top1_f1", "top5_f1", "err_impr", "ms",
                      "top-1 predicate"});
  const Scenario sloppy = SyntheticScenario("v > 55");
  AddRow(&noisy, "clean=kmeans (default)", data, sloppy, {});
  {
    ExplainOptions o;
    o.enumerator.clean_method = CleanMethod::kClassifier;
    AddRow(&noisy, "clean=classifier", data, sloppy, o);
  }
  {
    ExplainOptions o;
    o.enumerator.clean_method = CleanMethod::kNone;
    AddRow(&noisy, "clean=none", data, sloppy, o);
  }
  noisy.Print();
  std::printf("\n");
}

void BM_AblationDefault(benchmark::State& state) {
  LabeledDataset data = MakeData();
  const Scenario scenario = SyntheticScenario();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunScenario(data, scenario));
  }
}
BENCHMARK(BM_AblationDefault)->Unit(benchmark::kMillisecond);

void BM_AblationNoSubgroups(benchmark::State& state) {
  LabeledDataset data = MakeData();
  const Scenario scenario = SyntheticScenario();
  ExplainOptions options;
  options.enumerator.extend_with_subgroups = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunScenario(data, scenario, options));
  }
}
BENCHMARK(BM_AblationNoSubgroups)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dbwipes

int main(int argc, char** argv) {
  dbwipes::PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
