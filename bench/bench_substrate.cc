// μ: substrate micro-benchmarks — query engine scan/filter/group-by
// throughput, decision-tree fitting, subgroup discovery, influence
// analysis. These calibrate the platform so the E2 scaling numbers
// have context.

#include <benchmark/benchmark.h>

#include "dbwipes/datagen/synthetic.h"
#include "dbwipes/expr/parser.h"
#include "dbwipes/learn/decision_tree.h"
#include "dbwipes/learn/subgroup.h"
#include "dbwipes/provenance/influence.h"
#include "dbwipes/query/executor.h"

namespace dbwipes {
namespace {

const LabeledDataset& Data(size_t rows) {
  static auto* cache =
      new std::unordered_map<size_t, LabeledDataset>();
  auto it = cache->find(rows);
  if (it == cache->end()) {
    SyntheticOptions gen;
    gen.num_rows = rows;
    it = cache->emplace(rows, *GenerateSyntheticDataset(gen)).first;
  }
  return it->second;
}

void BM_GroupByAvg(benchmark::State& state) {
  const LabeledDataset& data = Data(static_cast<size_t>(state.range(0)));
  const AggregateQuery query =
      *ParseQuery("SELECT avg(v) FROM synthetic GROUP BY g");
  for (auto _ : state) {
    auto result = ExecuteQuery(query, *data.table);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupByAvg)->Arg(10000)->Arg(100000);

void BM_GroupByAvgNoLineage(benchmark::State& state) {
  const LabeledDataset& data = Data(static_cast<size_t>(state.range(0)));
  const AggregateQuery query =
      *ParseQuery("SELECT avg(v) FROM synthetic GROUP BY g");
  ExecOptions opts;
  opts.capture_lineage = false;
  for (auto _ : state) {
    auto result = ExecuteQuery(query, *data.table, opts);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupByAvgNoLineage)->Arg(10000)->Arg(100000);

void BM_FilteredSum(benchmark::State& state) {
  const LabeledDataset& data = Data(static_cast<size_t>(state.range(0)));
  const AggregateQuery query = *ParseQuery(
      "SELECT sum(v) FROM synthetic WHERE a0 > 0 AND c0 != 'nope' GROUP BY g");
  for (auto _ : state) {
    auto result = ExecuteQuery(query, *data.table);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FilteredSum)->Arg(10000)->Arg(100000);

void BM_PredicateMatch(benchmark::State& state) {
  const LabeledDataset& data = Data(100000);
  const Predicate pred = data.anomalies[0].description;
  const BoundPredicate bound = *pred.Bind(*data.table);
  for (auto _ : state) {
    auto rows = bound.MatchingRows();
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_PredicateMatch);

void BM_DecisionTreeFit(benchmark::State& state) {
  const LabeledDataset& data = Data(static_cast<size_t>(state.range(0)));
  const FeatureView view =
      *FeatureView::CreateExcluding(*data.table, {"v"});
  std::vector<RowId> rows;
  std::vector<int> labels;
  const auto& truth = data.anomalies[0].rows;
  for (RowId r = 0; r < data.table->num_rows(); ++r) {
    rows.push_back(r);
    labels.push_back(
        std::binary_search(truth.begin(), truth.end(), r) ? 1 : 0);
  }
  for (auto _ : state) {
    auto tree = DecisionTree::Fit(view, rows, labels, {}, {});
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecisionTreeFit)->Arg(10000)->Arg(50000);

void BM_SubgroupDiscovery(benchmark::State& state) {
  const LabeledDataset& data = Data(static_cast<size_t>(state.range(0)));
  const FeatureView view =
      *FeatureView::CreateExcluding(*data.table, {"v"});
  std::vector<RowId> rows;
  std::vector<int> labels;
  const auto& truth = data.anomalies[0].rows;
  for (RowId r = 0; r < data.table->num_rows(); ++r) {
    rows.push_back(r);
    labels.push_back(
        std::binary_search(truth.begin(), truth.end(), r) ? 1 : 0);
  }
  for (auto _ : state) {
    auto subgroups = DiscoverSubgroups(view, rows, labels, {}, {});
    benchmark::DoNotOptimize(subgroups);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SubgroupDiscovery)->Arg(10000)->Arg(50000);

void BM_InfluenceIncremental(benchmark::State& state) {
  const LabeledDataset& data = Data(static_cast<size_t>(state.range(0)));
  const AggregateQuery query =
      *ParseQuery("SELECT avg(v) FROM synthetic GROUP BY g");
  const QueryResult result = *ExecuteQuery(query, *data.table);
  std::vector<size_t> all_groups(result.num_groups());
  for (size_t g = 0; g < all_groups.size(); ++g) all_groups[g] = g;
  const ErrorFn fn = [](const std::vector<double>& v) {
    double worst = 0.0;
    for (double x : v) worst = std::max(worst, x - 50.0);
    return worst;
  };
  for (auto _ : state) {
    auto inf = LeaveOneOutInfluence(*data.table, result, all_groups, fn);
    benchmark::DoNotOptimize(inf);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InfluenceIncremental)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace dbwipes
