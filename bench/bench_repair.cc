// E4 — error-metric repair: the paper's claim that clicking the top
// predicate makes "a significant fraction of the [error] disappear",
// quantified. For each predefined metric we report eps before and
// after cleaning with the top-1 predicate, on both demo datasets.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "dbwipes/core/removal.h"
#include "dbwipes/datagen/fec_generator.h"
#include "dbwipes/datagen/intel_generator.h"
#include "dbwipes/expr/parser.h"
#include "dbwipes/query/incremental.h"

namespace dbwipes {
namespace {

using bench::Fmt;
using bench::RunScenario;
using bench::Scenario;
using bench::ScenarioOutcome;
using bench::TablePrinter;

struct MetricCase {
  std::string label;
  ErrorMetricPtr metric;
};

void ReportRepair(TablePrinter* table, const std::string& dataset,
                  const LabeledDataset& data, Scenario scenario,
                  const std::vector<MetricCase>& metrics) {
  for (const MetricCase& mc : metrics) {
    scenario.metric = mc.metric;
    ScenarioOutcome out = RunScenario(data, scenario);
    if (!out.ok) {
      table->AddRow({dataset, mc.label, "-", "-", "-", out.error});
      continue;
    }
    const double before = out.explanation.preprocess.baseline_error;
    const double after = out.explanation.predicates.empty()
                             ? before
                             : out.explanation.predicates[0].error_after;
    const double repaired =
        before > 0.0 ? 100.0 * (before - after) / before : 0.0;
    table->AddRow({dataset, mc.label, Fmt(before, 2), Fmt(after, 2),
                   Fmt(repaired, 1) + "%", out.top1_text});
  }
}

void PrintReport() {
  std::printf(
      "=== E4: eps before vs after cleaning with the top-1 predicate ===\n"
      "(eps is the user's raw metric; 100%% = the click removes the whole "
      "error)\n\n");
  TablePrinter table({"dataset", "metric", "eps_before", "eps_after",
                      "repaired", "top-1 predicate"});

  {
    IntelOptions gen;
    gen.duration_days = 7;
    gen.reading_interval_minutes = 5.0;
    LabeledDataset data = *GenerateIntelDataset(gen);
    Scenario s;
    s.sql =
        "SELECT window, avg(temp) AS avg_temp, stddev(temp) AS sd_temp "
        "FROM readings GROUP BY window";
    s.select_agg = "sd_temp";
    s.select_lo = 8.0;
    s.select_hi = 1e18;
    s.dprime_filter = "temp > 100";
    s.agg_index = 1;
    ReportRepair(&table, "intel", data, s,
                 {{"too-high(2)", TooHigh(2.0)},
                  {"not-equal(1.2)", NotEqual(1.2)},
                  {"total-above(2)", TotalAbove(2.0)}});
  }
  {
    FecOptions gen;
    LabeledDataset data = *GenerateFecDataset(gen);
    Scenario s;
    s.sql =
        "SELECT day, sum(amount) AS total FROM donations "
        "WHERE candidate = 'MCCAIN' GROUP BY day";
    s.select_agg = "total";
    s.select_lo = -1e18;
    s.select_hi = -1.0;
    s.dprime_filter = "amount < 0";
    ReportRepair(&table, "fec", data, s,
                 {{"too-low(0)", TooLow(0.0)},
                  {"total-below(0)", TotalBelow(0.0)},
                  {"not-equal(0)", NotEqual(0.0)}});
  }
  table.Print();
  std::printf("\n");
}

void BM_CleanAndRequery(benchmark::State& state) {
  FecOptions gen;
  LabeledDataset data = *GenerateFecDataset(gen);
  auto db = std::make_shared<Database>();
  db->RegisterTable(data.table);
  DBWipes engine(db);
  QueryResult result = *engine.Query(
      "SELECT day, sum(amount) AS total FROM donations "
      "WHERE candidate = 'MCCAIN' GROUP BY day");
  const Predicate& pred = data.anomalies[0].description;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Clean(result, pred));
  }
  state.counters["rows"] = static_cast<double>(data.table->num_rows());
}
BENCHMARK(BM_CleanAndRequery)->Unit(benchmark::kMillisecond);

// The lineage-based incremental path for the same click: only the
// groups the predicate touches are recomputed.
void BM_CleanIncremental(benchmark::State& state) {
  FecOptions gen;
  LabeledDataset data = *GenerateFecDataset(gen);
  auto db = std::make_shared<Database>();
  db->RegisterTable(data.table);
  DBWipes engine(db);
  QueryResult result = *engine.Query(
      "SELECT day, sum(amount) AS total FROM donations "
      "WHERE candidate = 'MCCAIN' GROUP BY day");
  const Predicate& pred = data.anomalies[0].description;
  for (auto _ : state) {
    benchmark::DoNotOptimize(IncrementalClean(*data.table, result, pred));
  }
  state.counters["rows"] = static_cast<double>(data.table->num_rows());
}
BENCHMARK(BM_CleanIncremental)->Unit(benchmark::kMillisecond);

void BM_ErrorAfterRemovalEval(benchmark::State& state) {
  IntelOptions gen;
  gen.duration_days = 7;
  gen.reading_interval_minutes = 5.0;
  LabeledDataset data = *GenerateIntelDataset(gen);
  QueryResult result = *ExecuteQuery(
      *ParseQuery("SELECT window, stddev(temp) AS sd FROM readings "
                  "GROUP BY window"),
      *data.table);
  std::vector<size_t> selected;
  for (size_t g = 0; g < result.num_groups(); ++g) {
    if (result.AggValue(g, 0) >= 8.0) selected.push_back(g);
  }
  auto metric = TooHigh(2.0);
  const std::vector<RowId> removed = data.AllAnomalousRows();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ErrorAfterRemoval(*data.table, result, selected,
                                               *metric, 0, removed));
  }
}
BENCHMARK(BM_ErrorAfterRemovalEval)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dbwipes

int main(int argc, char** argv) {
  dbwipes::PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
