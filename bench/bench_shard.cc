// Shard-parallel explain throughput on the streaming clean-as-you-
// query loop: append a batch of fresh readings, then re-rank the
// standing explanation. With one shard every append invalidates the
// whole clause-bitmap cache, so each iteration re-materializes every
// candidate over the full suspect universe; with S shards only the
// tail shard goes cold and the other S-1 engines answer from cache.
// On a single core the entire win is cache retention, not threads.
//
// Emits machine-readable BENCH_shard.json (working directory) with
// per-shard-count throughput, the 8-vs-1 speedup, and the fraction of
// shard engines that stayed warm across an append.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dbwipes/core/predicate_ranker.h"
#include "dbwipes/core/preprocessor.h"
#include "dbwipes/datagen/intel_generator.h"
#include "dbwipes/expr/parser.h"
#include "dbwipes/query/executor.h"
#include "dbwipes/storage/shard.h"

namespace dbwipes {
namespace {

using bench::Fmt;
using bench::TablePrinter;

constexpr size_t kIterations = 5;
constexpr size_t kBatchRows = 64;

/// Candidate family over the sensor schema: threshold sweeps on the
/// measurement columns, per-mote equalities, and mote x temperature
/// conjunctions — a few hundred predicates, like a real Debug() sees.
std::vector<EnumeratedPredicate> MakeCandidates(size_t num_sensors) {
  std::vector<EnumeratedPredicate> out;
  auto add = [&out](Predicate p) {
    EnumeratedPredicate ep;
    ep.predicate = std::move(p);
    ep.strategy = "bench";
    out.push_back(std::move(ep));
  };
  for (size_t s = 0; s < num_sensors; ++s) {
    add(Predicate({Clause::Make("sensorid", CompareOp::kEq,
                                Value(static_cast<int64_t>(s)))}));
  }
  // Three-clause boxes with a distinct threshold per clause: every
  // candidate costs three cold boxed scans of the suspect universe —
  // exactly the work the warm shard caches hand back for free — while
  // scoring stays one removal set per candidate.
  for (int i = 0; i < 400; ++i) {
    add(Predicate(
        {Clause::Make("temp", CompareOp::kGe, Value(10.0 + 0.07 * i)),
         Clause::Make("humidity", CompareOp::kGe, Value(15.0 + 0.11 * i)),
         (i % 2 == 0)
             ? Clause::Make("light", CompareOp::kGe, Value(10.0 + 1.9 * i))
             : Clause::Make("voltage", CompareOp::kLe,
                            Value(1.8 + 0.002 * i))}));
  }
  return out;
}

struct StreamResult {
  size_t num_shards = 0;
  double total_ms = 0.0;
  double preds_per_sec = 0.0;
  size_t reused_lanes = 0;   // last iteration
  size_t cached_clauses = 0; // after last iteration, all shards
  double retention = 0.0;    // reused_lanes / num_shards
  double materialize_ms = 0.0;  // last iteration
  double score_ms = 0.0;        // last iteration
  std::string top1;
};

/// One streaming run: shard the ~100k-row Intel world S ways, warm the
/// caches with one untimed explain, then repeat (append batch, re-rank)
/// and clock the loop.
StreamResult RunStream(size_t num_shards) {
  IntelOptions gen;
  gen.reading_interval_minutes = 5.0;  // ~106k rows over 7 days
  LabeledDataset data = *GenerateIntelDataset(gen);
  auto set = *ShardSet::Create(*data.table, num_shards);

  AggregateQuery query = *ParseQuery(
      "SELECT sensorid, avg(temp) AS t FROM readings GROUP BY sensorid");
  QueryResult result = *ExecuteQuery(query, *data.table);
  // Brush the 12 hottest motes — a wide outlier band around the two
  // battery-death signatures, the shape of a real cleaning brush.
  std::vector<size_t> selected;
  for (size_t g = 0; g < result.num_groups(); ++g) selected.push_back(g);
  std::sort(selected.begin(), selected.end(), [&](size_t a, size_t b) {
    return result.AggValue(a, 0) > result.AggValue(b, 0);
  });
  selected.resize(std::min<size_t>(12, selected.size()));
  std::sort(selected.begin(), selected.end());
  auto metric = TooHigh(25.0);
  PreprocessResult pre =
      *Preprocessor::Run(*data.table, result, selected, *metric);
  const std::vector<EnumeratedPredicate> candidates =
      MakeCandidates(gen.num_sensors);

  PredicateRanker ranker;
  auto rank_once = [&]() {
    ShardPlan plan = ShardPlan::Build(*set, pre.suspect_inputs);
    auto out = ranker.RankAnytime(*data.table, result, selected, *metric,
                                  /*agg_index=*/0, pre.suspect_inputs, {},
                                  pre.per_group_baseline_error, candidates,
                                  ExecContext::None(), &plan);
    DBW_CHECK_OK(out.status());
    return *std::move(out);
  };
  auto append_batch = [&](size_t iter) {
    for (size_t i = 0; i < kBatchRows; ++i) {
      const int64_t minute = static_cast<int64_t>(7 * 1440 + iter * 10 + i);
      DBW_CHECK_OK(set->Append(
          {Value(static_cast<int64_t>(i % gen.num_sensors)), Value(minute),
           Value(minute / 30), Value((minute / 60) % 24), Value(21.5),
           Value(38.0), Value(150.0), Value(2.6)}));
    }
  };

  rank_once();  // warm the per-shard caches (untimed)

  StreamResult r;
  r.num_shards = num_shards;
  RankOutcome last;
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t iter = 0; iter < kIterations; ++iter) {
    append_batch(iter);
    last = rank_once();
  }
  r.total_ms = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
  r.preds_per_sec = static_cast<double>(kIterations * candidates.size()) /
                    (r.total_ms / 1000.0);
  r.materialize_ms = last.stats.materialize_ms;
  r.score_ms = last.stats.score_ms;
  for (const ShardRankStats& lane : last.stats.shard_stats) {
    if (lane.engine_reused) ++r.reused_lanes;
    r.cached_clauses += lane.cached_clauses;
  }
  r.retention =
      static_cast<double>(r.reused_lanes) / static_cast<double>(num_shards);
  if (!last.predicates.empty()) {
    r.top1 = last.predicates[0].predicate.ToString();
  }
  return r;
}

void PrintReportAndJson() {
  std::printf(
      "=== shard-parallel explain: streaming append + re-rank loop ===\n\n");
  std::printf("workload: Intel sensors, ~106k rows, %zu-row batches, "
              "%zu explains per shard count\n\n",
              kBatchRows, kIterations);

  std::vector<StreamResult> results;
  for (size_t s : {1u, 2u, 4u, 8u}) results.push_back(RunStream(s));
  const StreamResult& base = results.front();

  TablePrinter table({"shards", "loop_ms", "preds_per_sec", "speedup",
                      "warm_lanes", "retention"});
  for (const StreamResult& r : results) {
    table.AddRow({std::to_string(r.num_shards), Fmt(r.total_ms, 1),
                  Fmt(r.preds_per_sec, 0),
                  Fmt(r.preds_per_sec / base.preds_per_sec, 2),
                  std::to_string(r.reused_lanes) + "/" +
                      std::to_string(r.num_shards),
                  Fmt(r.retention, 3)});
  }
  table.Print();
  std::printf("\nlast-iteration split: materialize %s ms, score %s ms (S=8)\n",
              Fmt(results.back().materialize_ms, 2).c_str(),
              Fmt(results.back().score_ms, 2).c_str());
  std::printf("top predicate: %s\n\n", results.back().top1.c_str());

  FILE* f = std::fopen("BENCH_shard.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"scenario\": {\"workload\": \"intel_sensors\", "
                 "\"rows\": 106000, \"batch_rows\": %zu, "
                 "\"iterations\": %zu},\n"
                 "  \"shards\": [\n",
                 kBatchRows, kIterations);
    for (size_t i = 0; i < results.size(); ++i) {
      const StreamResult& r = results[i];
      std::fprintf(f,
                   "    {\"shards\": %zu, \"loop_ms\": %.3f, "
                   "\"preds_per_sec\": %.1f, \"speedup\": %.3f, "
                   "\"warm_lanes\": %zu, \"retention\": %.4f, "
                   "\"cached_clauses\": %zu}%s\n",
                   r.num_shards, r.total_ms, r.preds_per_sec,
                   r.preds_per_sec / base.preds_per_sec, r.reused_lanes,
                   r.retention, r.cached_clauses,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"speedup_8_vs_1\": %.3f,\n"
                 "  \"retention_8\": %.4f\n"
                 "}\n",
                 results.back().preds_per_sec / base.preds_per_sec,
                 results.back().retention);
    std::fclose(f);
    std::printf("wrote BENCH_shard.json\n\n");
  }
}

}  // namespace
}  // namespace dbwipes

int main(int argc, char** argv) {
  dbwipes::PrintReportAndJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
