// E2 — runtime scaling of the backend.
//
// Reports per-stage wall-clock (preprocess / dataset enumeration /
// tree fitting / ranking) as |D| grows, and total time as the number
// of explainable attributes grows, plus the exhaustive baseline's
// combinatorial blow-up in the same attribute sweep.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "dbwipes/core/baselines.h"
#include "dbwipes/datagen/synthetic.h"
#include "dbwipes/expr/parser.h"

namespace dbwipes {
namespace {

using bench::Fmt;
using bench::RunScenario;
using bench::ScenarioOutcome;
using bench::Scenario;
using bench::TablePrinter;

Scenario SyntheticScenario() {
  Scenario s;
  s.sql = "SELECT g, avg(v) AS a FROM synthetic GROUP BY g";
  s.select_agg = "a";
  s.select_lo = 50.8;
  s.select_hi = 1e18;
  s.dprime_filter = "v > 75";
  s.metric = TooHigh(50.0);
  return s;
}

SyntheticOptions MakeGen(size_t rows, size_t numeric, size_t categorical) {
  SyntheticOptions gen;
  gen.num_rows = rows;
  gen.num_numeric_attrs = numeric;
  gen.num_categorical_attrs = categorical;
  gen.anomaly_selectivity = 0.02;
  return gen;
}

void PrintReport() {
  std::printf("=== E2: backend runtime scaling ===\n\n");

  std::printf("-- stage breakdown vs |D| (3 numeric + 2 categorical "
              "attributes) --\n");
  TablePrinter rows_table({"rows", "|F|", "preprocess_ms", "enumerate_ms",
                           "trees_ms", "rank_ms", "total_ms", "top1_f1"});
  for (size_t rows : {10000u, 30000u, 100000u, 300000u}) {
    LabeledDataset data = *GenerateSyntheticDataset(MakeGen(rows, 3, 2));
    ScenarioOutcome out = RunScenario(data, SyntheticScenario());
    if (!out.ok) {
      rows_table.AddRow({std::to_string(rows), "-", "-", "-", "-", "-", "-",
                         "FAILED: " + out.error});
      continue;
    }
    const Explanation& e = out.explanation;
    rows_table.AddRow(
        {std::to_string(rows), std::to_string(out.num_suspect_inputs),
         Fmt(e.preprocess_ms, 1), Fmt(e.enumerate_ms, 1),
         Fmt(e.predicates_ms, 1), Fmt(e.rank_ms, 1), Fmt(e.total_ms(), 1),
         Fmt(out.top1.f1)});
  }
  rows_table.Print();

  std::printf("\n-- total time vs attribute count (30k rows), DBWipes vs "
              "exhaustive --\n");
  TablePrinter attr_table({"attrs", "dbwipes_ms", "top1_f1",
                           "exhaustive_ms", "predicates_tried"});
  for (size_t attrs : {2u, 4u, 8u, 16u}) {
    const size_t numeric = attrs / 2;
    const size_t categorical = attrs - numeric;
    LabeledDataset data =
        *GenerateSyntheticDataset(MakeGen(30000, numeric, categorical));
    ScenarioOutcome out = RunScenario(data, SyntheticScenario());

    // Exhaustive on the same problem.
    std::string ex_ms = "-";
    std::string tried = "-";
    {
      AggregateQuery query = *ParseQuery(SyntheticScenario().sql);
      auto result = ExecuteQuery(query, *data.table);
      if (result.ok()) {
        std::vector<size_t> selected;
        for (size_t g = 0; g < result->num_groups(); ++g) {
          if (result->AggValue(g, 0) >= 50.8) selected.push_back(g);
        }
        auto metric = TooHigh(50.0);
        auto pre = Preprocessor::Run(*data.table, *result, selected, *metric);
        auto cols = DefaultExplainColumns(*data.table, result->query, 0);
        auto view = FeatureView::Create(*data.table, cols);
        if (pre.ok() && view.ok()) {
          ExhaustiveSearchOptions opts;
          opts.max_clauses = 2;
          size_t evaluated = 0;
          const auto t0 = std::chrono::steady_clock::now();
          auto ranked = ExhaustivePredicateSearch(
              *data.table, *result, selected, *metric, 0, *view, *pre, opts,
              &evaluated);
          const double ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
          if (ranked.ok()) {
            ex_ms = Fmt(ms, 0);
            tried = std::to_string(evaluated);
          }
        }
      }
    }
    attr_table.AddRow({std::to_string(attrs),
                       out.ok ? Fmt(out.total_ms, 0) : "FAILED",
                       out.ok ? Fmt(out.top1.f1) : "-", ex_ms, tried});
  }
  attr_table.Print();
  std::printf("\n");
}

void BM_PipelineVsRows(benchmark::State& state) {
  LabeledDataset data = *GenerateSyntheticDataset(
      MakeGen(static_cast<size_t>(state.range(0)), 3, 2));
  const Scenario scenario = SyntheticScenario();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunScenario(data, scenario));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PipelineVsRows)
    ->Arg(10000)
    ->Arg(30000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_PipelineVsAttrs(benchmark::State& state) {
  const size_t attrs = static_cast<size_t>(state.range(0));
  LabeledDataset data =
      *GenerateSyntheticDataset(MakeGen(30000, attrs / 2, attrs - attrs / 2));
  const Scenario scenario = SyntheticScenario();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunScenario(data, scenario));
  }
}
BENCHMARK(BM_PipelineVsAttrs)
    ->Arg(2)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dbwipes

int main(int argc, char** argv) {
  dbwipes::PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
