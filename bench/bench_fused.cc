// Fused-conjunction throughput: the one-pass SIMD-dispatched predicate
// programs (MatchEngine with fusion on) vs the per-clause
// materialize+word-AND path (DBWIPES_FUSED=off), on a multi-clause
// workload over the 100k-row acceptance scenario — each candidate is a
// K ∈ {3, 4} conjunction whose numeric thresholds are unique to the
// predicate (so the clause cache cannot amortize them) plus one shared
// categorical clause (so the fused programs still exercise the
// bitmap-ref lowering).
//
// Besides the report table, emits machine-readable BENCH_fused.json
// with per-tier timings (dispatched SIMD tier and the forced-scalar
// tier via DBWIPES_SIMD=off), cross-path bitmap identity, and an
// end-to-end check that full rankings are identical with fusion on,
// off, and at the scalar tier.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dbwipes/common/parallel.h"
#include "dbwipes/core/predicate_ranker.h"
#include "dbwipes/core/preprocessor.h"
#include "dbwipes/datagen/synthetic.h"
#include "dbwipes/expr/fused_kernels.h"
#include "dbwipes/expr/match_kernels.h"
#include "dbwipes/expr/parser.h"

namespace dbwipes {
namespace {

using bench::Fmt;
using bench::TablePrinter;

struct FusedProblem {
  LabeledDataset data;
  QueryResult result;
  std::vector<size_t> selected_groups;
  ErrorMetricPtr metric;
  std::vector<RowId> suspects;
  std::vector<RowId> reference;
  double per_group_baseline = 0.0;
  std::vector<EnumeratedPredicate> predicates;
};

/// K ∈ {3, 4} conjunctions: one shared categorical equality (drawn
/// from a small pool, so fusion lowers it as a cached-bitmap ref) and
/// 2–3 numeric thresholds whose cuts are unique to the predicate —
/// the worst case for the per-clause cache (every threshold is a
/// fresh bitmap) and the best case for one-pass fusion.
std::vector<EnumeratedPredicate> MakeFusedCandidates(
    const SyntheticOptions& gen, size_t count) {
  std::vector<EnumeratedPredicate> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::vector<Clause> clauses;
    const std::string cat = "c" + std::to_string(i % gen.num_categorical_attrs);
    clauses.push_back(Clause::Make(
        cat, CompareOp::kEq,
        Value("cat_" + std::to_string(i % gen.categorical_cardinality))));
    const size_t numeric = 2 + i % 2;  // K = 3 or 4 with the categorical
    for (size_t j = 0; j < numeric; ++j) {
      const std::string col =
          "a" + std::to_string((i + j) % gen.num_numeric_attrs);
      // Golden-ratio stride: every cut distinct, spread over [-2, 2).
      const double frac =
          std::fmod(static_cast<double>(i * 3 + j) * 0.618033988749895, 1.0);
      clauses.push_back(Clause::Make(
          col, j % 2 == 0 ? CompareOp::kGe : CompareOp::kLe,
          Value(-2.0 + 4.0 * frac)));
    }
    EnumeratedPredicate ep;
    ep.predicate = Predicate(clauses);
    ep.strategy = "bench";
    out.push_back(std::move(ep));
  }
  return out;
}

FusedProblem BuildProblem(size_t rows = 100000, size_t num_preds = 600) {
  SyntheticOptions gen;
  gen.num_rows = rows;
  gen.num_numeric_attrs = 4;
  gen.num_categorical_attrs = 4;
  gen.anomaly_selectivity = 0.03;

  FusedProblem p;
  p.data = *GenerateSyntheticDataset(gen);
  AggregateQuery query =
      *ParseQuery("SELECT g, avg(v) AS a FROM synthetic GROUP BY g");
  p.result = *ExecuteQuery(query, *p.data.table);
  for (size_t g = 0; g < p.result.num_groups(); ++g) {
    if (p.result.AggValue(g, 0) >= 50.8) p.selected_groups.push_back(g);
  }
  p.metric = TooHigh(50.0);
  PreprocessResult pre = *Preprocessor::Run(*p.data.table, p.result,
                                            p.selected_groups, *p.metric);
  p.suspects = pre.suspect_inputs;
  p.per_group_baseline = pre.per_group_baseline_error;
  std::vector<const TupleInfluence*> positive;
  for (const TupleInfluence& ti : pre.influences) {
    if (ti.influence > 0.0) positive.push_back(&ti);
  }
  for (size_t i = 0; i < positive.size() / 4; ++i) {
    p.reference.push_back(positive[i]->row);
  }
  std::sort(p.reference.begin(), p.reference.end());
  p.predicates = MakeFusedCandidates(gen, num_preds);
  return p;
}

enum class Path { kWordAnd, kFused, kFusedScalar };

/// Cold end-to-end matching: fresh engine, Materialize, then one
/// bitmap per predicate — the work one Explain pass performs. Fusion
/// and the SIMD tier are selected via the environment, read once at
/// engine construction.
std::vector<Bitmap> MatchAll(const FusedProblem& p, Path path,
                             MatchEngine* engine_out = nullptr) {
  if (path == Path::kWordAnd) setenv("DBWIPES_FUSED", "off", 1);
  if (path == Path::kFusedScalar) setenv("DBWIPES_SIMD", "off", 1);
  MatchEngine engine(*p.data.table, p.suspects);
  unsetenv("DBWIPES_FUSED");
  unsetenv("DBWIPES_SIMD");
  std::vector<const Predicate*> preds;
  preds.reserve(p.predicates.size());
  for (const EnumeratedPredicate& ep : p.predicates) {
    preds.push_back(&ep.predicate);
  }
  DBW_CHECK_OK(engine.Materialize(preds));
  std::vector<Bitmap> out;
  out.reserve(preds.size());
  for (const Predicate* pred : preds) {
    out.push_back(*engine.MatchPrepared(*pred));
  }
  if (engine_out != nullptr) *engine_out = std::move(engine);
  return out;
}

std::vector<RankedPredicate> RunRanker(const FusedProblem& p, Path path) {
  if (path == Path::kWordAnd) setenv("DBWIPES_FUSED", "off", 1);
  if (path == Path::kFusedScalar) setenv("DBWIPES_SIMD", "off", 1);
  RankerOptions opts;
  opts.engine = RankerOptions::Engine::kDeltaParallel;
  opts.use_match_kernels = true;
  PredicateRanker ranker(opts);
  auto ranked =
      ranker.Rank(*p.data.table, p.result, p.selected_groups, *p.metric,
                  /*agg_index=*/0, p.suspects, p.reference,
                  p.per_group_baseline, p.predicates);
  unsetenv("DBWIPES_FUSED");
  unsetenv("DBWIPES_SIMD");
  DBW_CHECK_OK(ranked.status());
  return *std::move(ranked);
}

double MedianMs(const std::function<void()>& fn, int reps) {
  std::vector<double> ms;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    ms.push_back(std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count());
  }
  std::sort(ms.begin(), ms.end());
  return ms[ms.size() / 2];
}

bool SameOrder(const std::vector<RankedPredicate>& a,
               const std::vector<RankedPredicate>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].predicate.CanonicalString() != b[i].predicate.CanonicalString())
      return false;
  }
  return true;
}

void PrintReportAndJson() {
  std::printf(
      "=== fused conjunctions: one-pass programs vs materialize+word-AND "
      "===\n\n");
  FusedProblem p = BuildProblem();
  std::printf("rows=%zu  |F|=%zu  predicates=%zu (K in {3,4})\n\n",
              p.data.table->num_rows(), p.suspects.size(),
              p.predicates.size());

  const int reps = 5;
  MatchEngine word_probe(*p.data.table, {});
  const std::vector<Bitmap> word_and = MatchAll(p, Path::kWordAnd, &word_probe);
  const double word_ms = MedianMs([&] { MatchAll(p, Path::kWordAnd); }, reps);

  MatchEngine fused_probe(*p.data.table, {});
  const std::vector<Bitmap> fused = MatchAll(p, Path::kFused, &fused_probe);
  const double fused_ms = MedianMs([&] { MatchAll(p, Path::kFused); }, reps);

  const std::vector<Bitmap> scalar = MatchAll(p, Path::kFusedScalar);
  const double scalar_ms =
      MedianMs([&] { MatchAll(p, Path::kFusedScalar); }, reps);

  bool bitmaps_equal = word_and.size() == fused.size() &&
                       word_and.size() == scalar.size();
  for (size_t i = 0; bitmaps_equal && i < word_and.size(); ++i) {
    bitmaps_equal = word_and[i] == fused[i] && word_and[i] == scalar[i];
  }

  const auto ranked_word = RunRanker(p, Path::kWordAnd);
  const auto ranked_fused = RunRanker(p, Path::kFused);
  const auto ranked_scalar = RunRanker(p, Path::kFusedScalar);
  const bool orders_match = SameOrder(ranked_word, ranked_fused) &&
                            SameOrder(ranked_word, ranked_scalar);

  const double preds = static_cast<double>(p.predicates.size());
  TablePrinter table({"path", "median_ms", "preds_per_sec", "speedup"});
  table.AddRow({"word_and_per_clause", Fmt(word_ms, 1),
                Fmt(preds / word_ms * 1000.0, 0), "1.0"});
  table.AddRow({std::string("fused_") + SimdTierName(fused_probe.simd_tier()),
                Fmt(fused_ms, 1), Fmt(preds / fused_ms * 1000.0, 0),
                Fmt(word_ms / fused_ms, 1)});
  table.AddRow({"fused_scalar", Fmt(scalar_ms, 1),
                Fmt(preds / scalar_ms * 1000.0, 0),
                Fmt(word_ms / scalar_ms, 1)});
  table.Print();
  std::printf(
      "\nword-AND path: %zu clause bitmaps; fused path: %zu bitmaps + %zu "
      "programs (%zu compiles, %zu fallbacks, %.1f ms compile)\n",
      word_probe.num_cached_clauses(), fused_probe.num_cached_clauses(),
      fused_probe.num_fused_programs(), fused_probe.fused_compiles(),
      fused_probe.fused_fallbacks(), fused_probe.fused_compile_ms());
  std::printf("bitmaps identical across paths: %s\n",
              bitmaps_equal ? "yes" : "NO — BUG");
  std::printf("identical rank orderings (word-AND / fused / scalar): %s\n\n",
              orders_match ? "yes" : "NO — BUG");

  FILE* f = std::fopen("BENCH_fused.json", "w");
  if (f != nullptr) {
    std::fprintf(
        f,
        "{\n"
        "  \"scenario\": {\"rows\": %zu, \"predicates\": %zu, "
        "\"suspects\": %zu, \"clauses_per_predicate\": \"3-4\"},\n"
        "  \"word_and\": {\"path\": \"materialize_word_and\", "
        "\"median_ms\": %.3f, \"predicates_per_sec\": %.1f, "
        "\"clause_bitmaps\": %zu},\n"
        "  \"fused\": {\"path\": \"fused_one_pass\", \"simd_tier\": \"%s\", "
        "\"median_ms\": %.3f, \"predicates_per_sec\": %.1f, "
        "\"clause_bitmaps\": %zu, \"programs\": %zu, \"compiles\": %zu, "
        "\"fallbacks\": %zu, \"compile_ms\": %.3f},\n"
        "  \"fused_scalar\": {\"path\": \"fused_one_pass\", "
        "\"simd_tier\": \"scalar\", \"median_ms\": %.3f, "
        "\"predicates_per_sec\": %.1f},\n"
        "  \"speedup_fused\": %.2f,\n"
        "  \"speedup_fused_scalar\": %.2f,\n"
        "  \"bitmaps_identical\": %s,\n"
        "  \"orderings_identical\": %s\n"
        "}\n",
        p.data.table->num_rows(), p.predicates.size(), p.suspects.size(),
        word_ms, preds / word_ms * 1000.0, word_probe.num_cached_clauses(),
        SimdTierName(fused_probe.simd_tier()), fused_ms,
        preds / fused_ms * 1000.0, fused_probe.num_cached_clauses(),
        fused_probe.num_fused_programs(), fused_probe.fused_compiles(),
        fused_probe.fused_fallbacks(), fused_probe.fused_compile_ms(),
        scalar_ms, preds / scalar_ms * 1000.0, word_ms / fused_ms,
        word_ms / scalar_ms, bitmaps_equal ? "true" : "false",
        orders_match ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_fused.json\n\n");
  }
}

const FusedProblem& SmallProblem() {
  static const FusedProblem* p = new FusedProblem(BuildProblem(20000, 200));
  return *p;
}

void BM_MatchWordAnd(benchmark::State& state) {
  const FusedProblem& p = SmallProblem();
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatchAll(p, Path::kWordAnd));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(p.predicates.size()));
}
BENCHMARK(BM_MatchWordAnd)->Unit(benchmark::kMillisecond);

void BM_MatchFused(benchmark::State& state) {
  const FusedProblem& p = SmallProblem();
  const Path path = state.range(0) == 0 ? Path::kFused : Path::kFusedScalar;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatchAll(p, path));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(p.predicates.size()));
}
BENCHMARK(BM_MatchFused)
    ->Arg(0)   // dispatched SIMD tier
    ->Arg(1)   // forced scalar tier
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dbwipes

int main(int argc, char** argv) {
  dbwipes::PrintReportAndJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
