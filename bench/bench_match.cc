// Matching-phase throughput: typed batch kernels with the shared
// clause-bitmap cache (MatchEngine) vs the boxed per-predicate
// Bind+MatchBitmap path, isolated from scoring, on the acceptance
// scenario (100k rows, ~1.6k candidate predicates over 8 attributes).
//
// Besides the report table, emits machine-readable BENCH_match.json
// (in the working directory) with the before/after timings, the cache
// utilization, and an end-to-end check that the full ranking produces
// identical orderings with the kernels on and off.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "dbwipes/common/parallel.h"
#include "dbwipes/core/predicate_ranker.h"
#include "dbwipes/core/preprocessor.h"
#include "dbwipes/datagen/synthetic.h"
#include "dbwipes/expr/match_kernels.h"
#include "dbwipes/expr/parser.h"

namespace dbwipes {
namespace {

using bench::Fmt;
using bench::TablePrinter;

struct MatchProblem {
  LabeledDataset data;
  QueryResult result;
  std::vector<size_t> selected_groups;
  ErrorMetricPtr metric;
  std::vector<RowId> suspects;
  std::vector<RowId> reference;
  double per_group_baseline = 0.0;
  std::vector<EnumeratedPredicate> predicates;
};

/// The enumerator's output shape: threshold families on every numeric
/// attribute, categorical equalities, IN sets, and two-clause
/// conjunctions that re-use those same single-attribute clauses (which
/// is what the clause cache exploits).
std::vector<EnumeratedPredicate> MakeCandidates(const SyntheticOptions& gen) {
  std::vector<EnumeratedPredicate> out;
  auto add = [&out](Predicate p) {
    EnumeratedPredicate ep;
    ep.predicate = std::move(p);
    ep.strategy = "bench";
    out.push_back(std::move(ep));
  };
  std::vector<Clause> numeric, categorical;
  for (size_t a = 0; a < gen.num_numeric_attrs; ++a) {
    const std::string col = "a" + std::to_string(a);
    for (int t = -12; t <= 12; ++t) {
      const double cut = t / 6.0;
      numeric.push_back(Clause::Make(col, CompareOp::kGe, Value(cut)));
      numeric.push_back(Clause::Make(col, CompareOp::kLe, Value(cut)));
    }
  }
  for (size_t c = 0; c < gen.num_categorical_attrs; ++c) {
    const std::string col = "c" + std::to_string(c);
    std::vector<Value> in_set;
    for (size_t k = 0; k < gen.categorical_cardinality; ++k) {
      categorical.push_back(Clause::Make(
          col, CompareOp::kEq, Value("cat_" + std::to_string(k))));
      if (k % 2 == 0) in_set.push_back(Value("cat_" + std::to_string(k)));
    }
    categorical.push_back(Clause::In(col, std::move(in_set)));
  }
  for (const Clause& c : numeric) add(Predicate({c}));
  for (const Clause& c : categorical) add(Predicate({c}));
  for (size_t i = 0; i < categorical.size(); ++i) {
    for (size_t j = i % 6; j < numeric.size(); j += 6) {
      add(Predicate({categorical[i], numeric[j]}));
    }
  }
  return out;
}

MatchProblem BuildProblem(size_t rows = 100000) {
  SyntheticOptions gen;
  gen.num_rows = rows;
  gen.num_numeric_attrs = 4;
  gen.num_categorical_attrs = 4;
  gen.anomaly_selectivity = 0.03;

  MatchProblem p;
  p.data = *GenerateSyntheticDataset(gen);
  AggregateQuery query =
      *ParseQuery("SELECT g, avg(v) AS a FROM synthetic GROUP BY g");
  p.result = *ExecuteQuery(query, *p.data.table);
  for (size_t g = 0; g < p.result.num_groups(); ++g) {
    if (p.result.AggValue(g, 0) >= 50.8) p.selected_groups.push_back(g);
  }
  p.metric = TooHigh(50.0);
  PreprocessResult pre = *Preprocessor::Run(*p.data.table, p.result,
                                            p.selected_groups, *p.metric);
  p.suspects = pre.suspect_inputs;
  p.per_group_baseline = pre.per_group_baseline_error;
  std::vector<const TupleInfluence*> positive;
  for (const TupleInfluence& ti : pre.influences) {
    if (ti.influence > 0.0) positive.push_back(&ti);
  }
  for (size_t i = 0; i < positive.size() / 4; ++i) {
    p.reference.push_back(positive[i]->row);
  }
  std::sort(p.reference.begin(), p.reference.end());
  p.predicates = MakeCandidates(gen);
  return p;
}

/// Before: the boxed path, one Bind + one row-at-a-time bitmap scan
/// per predicate (what every caller did prior to the match engine).
std::vector<Bitmap> MatchBoxed(const MatchProblem& p) {
  std::vector<Bitmap> out;
  out.reserve(p.predicates.size());
  for (const EnumeratedPredicate& ep : p.predicates) {
    BoundPredicate bound = *ep.predicate.Bind(*p.data.table);
    out.push_back(bound.MatchBitmap(p.suspects));
  }
  return out;
}

/// After: compile + materialize each distinct clause once (optionally
/// chunked on the pool), then AND cached words per conjunction.
std::vector<Bitmap> MatchKernels(const MatchProblem& p, size_t threads,
                                 MatchEngine* engine_out = nullptr) {
  MatchEngine engine(*p.data.table, p.suspects);
  std::vector<const Predicate*> preds;
  preds.reserve(p.predicates.size());
  for (const EnumeratedPredicate& ep : p.predicates) {
    preds.push_back(&ep.predicate);
  }
  ParallelOptions popts;
  popts.num_threads = threads;
  DBW_CHECK_OK(engine.Materialize(preds, popts));
  std::vector<Bitmap> out;
  out.reserve(preds.size());
  for (const Predicate* pred : preds) {
    out.push_back(*engine.MatchPrepared(*pred));
  }
  if (engine_out != nullptr) *engine_out = std::move(engine);
  return out;
}

std::vector<RankedPredicate> RunRanker(const MatchProblem& p,
                                       bool use_kernels) {
  RankerOptions opts;
  opts.engine = RankerOptions::Engine::kDeltaParallel;
  opts.use_match_kernels = use_kernels;
  PredicateRanker ranker(opts);
  auto ranked =
      ranker.Rank(*p.data.table, p.result, p.selected_groups, *p.metric,
                  /*agg_index=*/0, p.suspects, p.reference,
                  p.per_group_baseline, p.predicates);
  DBW_CHECK_OK(ranked.status());
  return *std::move(ranked);
}

double MedianMs(const std::function<void()>& fn, int reps) {
  std::vector<double> ms;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    ms.push_back(std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count());
  }
  std::sort(ms.begin(), ms.end());
  return ms[ms.size() / 2];
}

/// Times two variants in alternating order within each round so that
/// clock-speed drift across the run biases neither side (timing them
/// in separate back-to-back blocks systematically penalizes whichever
/// runs second).
std::pair<double, double> InterleavedMedianMs(const std::function<void()>& a,
                                              const std::function<void()>& b,
                                              int reps) {
  std::vector<double> ams, bms;
  const auto time_one = [](const std::function<void()>& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  for (int r = 0; r < reps; ++r) {
    if (r % 2 == 0) {
      ams.push_back(time_one(a));
      bms.push_back(time_one(b));
    } else {
      bms.push_back(time_one(b));
      ams.push_back(time_one(a));
    }
  }
  std::sort(ams.begin(), ams.end());
  std::sort(bms.begin(), bms.end());
  return {ams[ams.size() / 2], bms[bms.size() / 2]};
}

bool SameOrder(const std::vector<RankedPredicate>& a,
               const std::vector<RankedPredicate>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].predicate.CanonicalString() != b[i].predicate.CanonicalString())
      return false;
  }
  return true;
}

void PrintReportAndJson() {
  std::printf("=== matching phase: batch kernels + clause cache vs boxed ===\n\n");
  MatchProblem p = BuildProblem();
  std::printf("rows=%zu  |F|=%zu  predicates=%zu  threads=%zu\n\n",
              p.data.table->num_rows(), p.suspects.size(),
              p.predicates.size(), DefaultParallelism());

  const int reps = 5;
  const std::vector<Bitmap> boxed = MatchBoxed(p);
  const double before_ms = MedianMs([&] { MatchBoxed(p); }, reps);

  MatchEngine probe(*p.data.table, {});
  const std::vector<Bitmap> kernel1 = MatchKernels(p, 1, &probe);
  const std::vector<Bitmap> kernelN = MatchKernels(p, 0);
  const auto [kernel1_ms, kernelN_ms] = InterleavedMedianMs(
      [&] { MatchKernels(p, 1); }, [&] { MatchKernels(p, 0); }, reps);

  bool bitmaps_equal =
      boxed.size() == kernel1.size() && boxed.size() == kernelN.size();
  for (size_t i = 0; bitmaps_equal && i < boxed.size(); ++i) {
    bitmaps_equal = boxed[i] == kernel1[i] && boxed[i] == kernelN[i];
  }

  const auto ranked_boxed = RunRanker(p, /*use_kernels=*/false);
  const auto ranked_kernel = RunRanker(p, /*use_kernels=*/true);
  const bool orders_match = SameOrder(ranked_boxed, ranked_kernel);

  const double preds = static_cast<double>(p.predicates.size());
  TablePrinter table({"path", "median_ms", "preds_per_sec", "speedup"});
  table.AddRow({"boxed_bind_scan", Fmt(before_ms, 1),
                Fmt(preds / before_ms * 1000.0, 0), "1.0"});
  table.AddRow({"kernels_1_thread", Fmt(kernel1_ms, 1),
                Fmt(preds / kernel1_ms * 1000.0, 0),
                Fmt(before_ms / kernel1_ms, 1)});
  table.AddRow({"kernels_parallel", Fmt(kernelN_ms, 1),
                Fmt(preds / kernelN_ms * 1000.0, 0),
                Fmt(before_ms / kernelN_ms, 1)});
  table.Print();
  std::printf("\ndistinct clauses cached: %zu  (cache hits %zu, misses %zu)\n",
              probe.num_cached_clauses(), probe.cache_hits(),
              probe.cache_misses());
  std::printf("bitmaps identical to boxed path: %s\n",
              bitmaps_equal ? "yes" : "NO — BUG");
  std::printf("identical rank orderings (kernels on/off): %s\n\n",
              orders_match ? "yes" : "NO — BUG");

  FILE* f = std::fopen("BENCH_match.json", "w");
  if (f != nullptr) {
    std::fprintf(
        f,
        "{\n"
        "  \"scenario\": {\"rows\": %zu, \"attributes\": 8, "
        "\"predicates\": %zu, \"suspects\": %zu, \"threads\": %zu},\n"
        "  \"before\": {\"path\": \"boxed_bind_scan\", "
        "\"median_ms\": %.3f, \"predicates_per_sec\": %.1f},\n"
        "  \"after_serial\": {\"path\": \"kernels_1_thread\", "
        "\"median_ms\": %.3f, \"predicates_per_sec\": %.1f},\n"
        "  \"after\": {\"path\": \"kernels_parallel\", "
        "\"median_ms\": %.3f, \"predicates_per_sec\": %.1f},\n"
        "  \"distinct_clauses\": %zu,\n"
        "  \"cache_hits\": %zu,\n"
        "  \"speedup_serial\": %.2f,\n"
        "  \"speedup_total\": %.2f,\n"
        "  \"bitmaps_identical\": %s,\n"
        "  \"orderings_identical\": %s\n"
        "}\n",
        p.data.table->num_rows(), p.predicates.size(), p.suspects.size(),
        DefaultParallelism(), before_ms, preds / before_ms * 1000.0,
        kernel1_ms, preds / kernel1_ms * 1000.0, kernelN_ms,
        preds / kernelN_ms * 1000.0, probe.num_cached_clauses(),
        probe.cache_hits(), before_ms / kernel1_ms, before_ms / kernelN_ms,
        bitmaps_equal ? "true" : "false", orders_match ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_match.json\n\n");
  }
}

const MatchProblem& SmallProblem() {
  static const MatchProblem* p = new MatchProblem(BuildProblem(20000));
  return *p;
}

void BM_MatchBoxed(benchmark::State& state) {
  const MatchProblem& p = SmallProblem();
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatchBoxed(p));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(p.predicates.size()));
}
BENCHMARK(BM_MatchBoxed)->Unit(benchmark::kMillisecond);

void BM_MatchKernels(benchmark::State& state) {
  const MatchProblem& p = SmallProblem();
  const size_t threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatchKernels(p, threads));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(p.predicates.size()));
}
BENCHMARK(BM_MatchKernels)
    ->Arg(1)   // single-threaded kernels (cache effect alone)
    ->Arg(0)   // DefaultParallelism()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dbwipes

int main(int argc, char** argv) {
  dbwipes::PrintReportAndJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
