#!/usr/bin/env bash
# Pre-merge gate: tier-1 tests, the asan smoke subset, the anytime
# fault matrix, the tsan smoke subset (tracer/metrics buffers must be
# race-free), the stress-labelled concurrent service suites under
# tsan, and the tracing-overhead benchmark. Run from the repo root:
#
#   scripts/check.sh            # every stage
#   scripts/check.sh tier1      # just the default-preset test suite
#   scripts/check.sh asan       # just the asan smoke subset
#   scripts/check.sh faults     # just the faults-labelled tests (asan)
#   scripts/check.sh tsan       # just the tsan smoke subset
#   scripts/check.sh stress     # concurrent service suites under tsan
#   scripts/check.sh trace      # just bench_trace (BENCH_trace.json)
#   scripts/check.sh shard      # bench_shard (BENCH_shard.json)
#   scripts/check.sh fused      # bench_fused (BENCH_fused.json) +
#                               # forced-scalar fused tests under asan
#   scripts/check.sh crash      # kill-point crash-recovery matrix under
#                               # asan AND tsan (DBWIPES_CRASH_RUNS=200+)
#   scripts/check.sh wal        # bench_wal (BENCH_wal.json)
#   scripts/check.sh obs        # telemetry suite under tsan +
#                               # bench_obs (BENCH_obs.json)
#   scripts/check.sh repl       # replication suite + failover kill
#                               # matrix under asan AND tsan, then
#                               # bench_repl (BENCH_repl.json)
#
# Each stage configures/builds its preset only when needed, so repeat
# runs are incremental.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

tier1() {
  echo "=== tier-1: default preset, full test suite ==="
  cmake --preset default >/dev/null
  cmake --build --preset default -j "$jobs"
  ctest --preset default -j "$jobs"
}

asan_smoke() {
  echo "=== asan: smoke-labelled subset ==="
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j "$jobs"
  ctest --preset asan-smoke -j "$jobs"
}

faults() {
  echo "=== faults: anytime/fault-injection matrix (asan) ==="
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j "$jobs"
  ctest --preset asan-faults -j "$jobs"
}

tsan_smoke() {
  echo "=== tsan: smoke-labelled subset (tracer/metrics concurrency) ==="
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "$jobs"
  ctest --preset tsan-smoke -j "$jobs"
}

stress() {
  echo "=== stress: concurrent service suites (tsan) ==="
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "$jobs"
  ctest --preset tsan-stress -j "$jobs"
}

trace_bench() {
  echo "=== trace: observability overhead benchmark ==="
  cmake --preset default >/dev/null
  cmake --build --preset default -j "$jobs" --target bench_trace
  (cd build && ./bench/bench_trace --benchmark_min_time=0.05)
  echo "wrote build/BENCH_trace.json"
}

shard_bench() {
  echo "=== shard: streaming append + re-rank throughput benchmark ==="
  cmake --preset default >/dev/null
  cmake --build --preset default -j "$jobs" --target bench_shard
  (cd build/bench && ./bench_shard --benchmark_min_time=0.05)
  echo "wrote build/bench/BENCH_shard.json"
}

fused_bench() {
  echo "=== fused: one-pass conjunction benchmark + scalar-tier asan pass ==="
  cmake --preset default >/dev/null
  cmake --build --preset default -j "$jobs" --target bench_fused
  (cd build/bench && ./bench_fused --benchmark_min_time=0.05)
  echo "wrote build/bench/BENCH_fused.json"
  # The equivalence suite again, with the SIMD dispatcher pinned to the
  # portable tier, under asan: scalar and vector bodies must be
  # bit-identical and memory-clean.
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j "$jobs" --target fused_kernels_test
  DBWIPES_SIMD=off ./build-asan/tests/fused_kernels_test
}

crash() {
  echo "=== crash: randomized kill-point recovery matrix (asan + tsan) ==="
  # >=200 fork/kill points across the I/O fault sites; every run must
  # recover exactly the acknowledged prefix. asan proves the recovery
  # scan stays in bounds; tsan proves the group-commit handoff is
  # race-free while crashes land mid-batch.
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j "$jobs"
  DBWIPES_CRASH_RUNS=210 ctest --preset asan-crash -j "$jobs"
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "$jobs"
  DBWIPES_CRASH_RUNS=210 ctest --preset tsan-crash -j "$jobs"
}

wal_bench() {
  echo "=== wal: durability overhead benchmark ==="
  cmake --preset default >/dev/null
  cmake --build --preset default -j "$jobs" --target bench_wal
  (cd build/bench && ./bench_wal --benchmark_min_time=0.05)
  echo "wrote build/bench/BENCH_wal.json"
}

obs() {
  echo "=== obs: request-telemetry suite (tsan) + overhead benchmark ==="
  # Concurrent scrape + explain + append must be race-free: the whole
  # telemetry suite (rid plumbing, history ring, watchdog, torn-read
  # regression) under tsan.
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "$jobs" --target telemetry_test
  DBWIPES_THREADS=4 TSAN_OPTIONS=halt_on_error=1 \
      ./build-tsan/tests/telemetry_test
  # Overhead budget: sampler+watchdog+slow-log must stay within 3% of
  # the telemetry-off service throughput; 10 Hz scrape cost + history
  # memory ceiling ride along in BENCH_obs.json.
  cmake --preset default >/dev/null
  cmake --build --preset default -j "$jobs" --target bench_obs
  (cd build/bench && ./bench_obs)
  echo "wrote build/bench/BENCH_obs.json"
}

repl() {
  echo "=== repl: replication suite + failover matrix (asan + tsan) ==="
  # The full replication suite (protocol, streaming, snapshot catch-up,
  # promote/fencing, repl/* fault sites) plus >=100 randomized
  # primary-kill points, each proving the promoted follower serves an
  # exact acknowledged prefix. asan bounds the frame codecs; tsan
  # proves the apply path is race-free against reads and heartbeats.
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j "$jobs" --target replication_test \
      replication_failover_test
  ./build-asan/tests/replication_test
  DBWIPES_FAILOVER_RUNS=108 ./build-asan/tests/replication_failover_test
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "$jobs" --target replication_test \
      replication_failover_test
  TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/replication_test
  DBWIPES_FAILOVER_RUNS=60 TSAN_OPTIONS=halt_on_error=1 \
      ./build-tsan/tests/replication_failover_test
  # Steady-state streaming overhead vs the WAL alone (<= 1.5x), follower
  # lag at a fixed offered rate, and promote-to-first-read failover time.
  cmake --preset default >/dev/null
  cmake --build --preset default -j "$jobs" --target bench_repl
  (cd build/bench && ./bench_repl)
  echo "wrote build/bench/BENCH_repl.json"
}

case "${1:-all}" in
  tier1)  tier1 ;;
  asan)   asan_smoke ;;
  faults) faults ;;
  tsan)   tsan_smoke ;;
  stress) stress ;;
  trace)  trace_bench ;;
  shard)  shard_bench ;;
  fused)  fused_bench ;;
  crash)  crash ;;
  wal)    wal_bench ;;
  obs)    obs ;;
  repl)   repl ;;
  all)    tier1; asan_smoke; faults; tsan_smoke; stress; trace_bench; shard_bench; fused_bench; crash; wal_bench; obs; repl ;;
  *) echo "usage: $0 [tier1|asan|faults|tsan|stress|trace|shard|fused|crash|wal|obs|repl|all]" >&2; exit 2 ;;
esac
echo "=== check.sh: all requested stages passed ==="
