#!/usr/bin/env bash
# Pre-merge gate: tier-1 tests, the asan smoke subset, and the anytime
# fault matrix. Run from the repo root:
#
#   scripts/check.sh            # all three stages
#   scripts/check.sh tier1      # just the default-preset test suite
#   scripts/check.sh asan       # just the asan smoke subset
#   scripts/check.sh faults     # just the faults-labelled tests (asan)
#
# Each stage configures/builds its preset only when needed, so repeat
# runs are incremental.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

tier1() {
  echo "=== tier-1: default preset, full test suite ==="
  cmake --preset default >/dev/null
  cmake --build --preset default -j "$jobs"
  ctest --preset default -j "$jobs"
}

asan_smoke() {
  echo "=== asan: smoke-labelled subset ==="
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j "$jobs"
  ctest --preset asan-smoke -j "$jobs"
}

faults() {
  echo "=== faults: anytime/fault-injection matrix (asan) ==="
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j "$jobs"
  ctest --preset asan-faults -j "$jobs"
}

case "${1:-all}" in
  tier1)  tier1 ;;
  asan)   asan_smoke ;;
  faults) faults ;;
  all)    tier1; asan_smoke; faults ;;
  *) echo "usage: $0 [tier1|asan|faults|all]" >&2; exit 2 ;;
esac
echo "=== check.sh: all requested stages passed ==="
