file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_fec.dir/bench_fig7_fec.cc.o"
  "CMakeFiles/bench_fig7_fec.dir/bench_fig7_fec.cc.o.d"
  "bench_fig7_fec"
  "bench_fig7_fec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_fec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
