# Empty dependencies file for bench_fig7_fec.
# This may be replaced when dependencies are built.
