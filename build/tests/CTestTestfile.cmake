# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/provenance_test[1]_include.cmake")
include("/root/repo/build/tests/learn_test[1]_include.cmake")
include("/root/repo/build/tests/subgroup_test[1]_include.cmake")
include("/root/repo/build/tests/error_metric_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/session_test[1]_include.cmake")
include("/root/repo/build/tests/viz_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/merger_test[1]_include.cmake")
include("/root/repo/build/tests/equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/service_test[1]_include.cmake")
