file(REMOVE_RECURSE
  "CMakeFiles/csv_explain.dir/csv_explain.cpp.o"
  "CMakeFiles/csv_explain.dir/csv_explain.cpp.o.d"
  "csv_explain"
  "csv_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
