# Empty dependencies file for csv_explain.
# This may be replaced when dependencies are built.
