file(REMOVE_RECURSE
  "CMakeFiles/dbwipes_server.dir/dbwipes_server.cpp.o"
  "CMakeFiles/dbwipes_server.dir/dbwipes_server.cpp.o.d"
  "dbwipes_server"
  "dbwipes_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbwipes_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
