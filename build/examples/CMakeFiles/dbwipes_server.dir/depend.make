# Empty dependencies file for dbwipes_server.
# This may be replaced when dependencies are built.
