file(REMOVE_RECURSE
  "CMakeFiles/fec_campaign.dir/fec_campaign.cpp.o"
  "CMakeFiles/fec_campaign.dir/fec_campaign.cpp.o.d"
  "fec_campaign"
  "fec_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fec_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
