# Empty compiler generated dependencies file for fec_campaign.
# This may be replaced when dependencies are built.
