file(REMOVE_RECURSE
  "CMakeFiles/dbwipes_repl.dir/dbwipes_repl.cpp.o"
  "CMakeFiles/dbwipes_repl.dir/dbwipes_repl.cpp.o.d"
  "dbwipes_repl"
  "dbwipes_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbwipes_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
