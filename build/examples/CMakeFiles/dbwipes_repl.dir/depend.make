# Empty dependencies file for dbwipes_repl.
# This may be replaced when dependencies are built.
