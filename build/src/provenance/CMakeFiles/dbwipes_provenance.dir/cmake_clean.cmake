file(REMOVE_RECURSE
  "CMakeFiles/dbwipes_provenance.dir/influence.cc.o"
  "CMakeFiles/dbwipes_provenance.dir/influence.cc.o.d"
  "CMakeFiles/dbwipes_provenance.dir/lineage.cc.o"
  "CMakeFiles/dbwipes_provenance.dir/lineage.cc.o.d"
  "libdbwipes_provenance.a"
  "libdbwipes_provenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbwipes_provenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
