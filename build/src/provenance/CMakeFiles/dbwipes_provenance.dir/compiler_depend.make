# Empty compiler generated dependencies file for dbwipes_provenance.
# This may be replaced when dependencies are built.
