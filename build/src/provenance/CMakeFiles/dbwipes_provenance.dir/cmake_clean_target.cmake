file(REMOVE_RECURSE
  "libdbwipes_provenance.a"
)
