
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/learn/decision_tree.cc" "src/learn/CMakeFiles/dbwipes_learn.dir/decision_tree.cc.o" "gcc" "src/learn/CMakeFiles/dbwipes_learn.dir/decision_tree.cc.o.d"
  "/root/repo/src/learn/feature.cc" "src/learn/CMakeFiles/dbwipes_learn.dir/feature.cc.o" "gcc" "src/learn/CMakeFiles/dbwipes_learn.dir/feature.cc.o.d"
  "/root/repo/src/learn/kmeans.cc" "src/learn/CMakeFiles/dbwipes_learn.dir/kmeans.cc.o" "gcc" "src/learn/CMakeFiles/dbwipes_learn.dir/kmeans.cc.o.d"
  "/root/repo/src/learn/naive_bayes.cc" "src/learn/CMakeFiles/dbwipes_learn.dir/naive_bayes.cc.o" "gcc" "src/learn/CMakeFiles/dbwipes_learn.dir/naive_bayes.cc.o.d"
  "/root/repo/src/learn/pca.cc" "src/learn/CMakeFiles/dbwipes_learn.dir/pca.cc.o" "gcc" "src/learn/CMakeFiles/dbwipes_learn.dir/pca.cc.o.d"
  "/root/repo/src/learn/subgroup.cc" "src/learn/CMakeFiles/dbwipes_learn.dir/subgroup.cc.o" "gcc" "src/learn/CMakeFiles/dbwipes_learn.dir/subgroup.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expr/CMakeFiles/dbwipes_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dbwipes_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbwipes_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
