# Empty compiler generated dependencies file for dbwipes_learn.
# This may be replaced when dependencies are built.
