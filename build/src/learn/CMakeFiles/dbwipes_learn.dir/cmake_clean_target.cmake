file(REMOVE_RECURSE
  "libdbwipes_learn.a"
)
