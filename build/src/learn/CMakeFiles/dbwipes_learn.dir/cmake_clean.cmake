file(REMOVE_RECURSE
  "CMakeFiles/dbwipes_learn.dir/decision_tree.cc.o"
  "CMakeFiles/dbwipes_learn.dir/decision_tree.cc.o.d"
  "CMakeFiles/dbwipes_learn.dir/feature.cc.o"
  "CMakeFiles/dbwipes_learn.dir/feature.cc.o.d"
  "CMakeFiles/dbwipes_learn.dir/kmeans.cc.o"
  "CMakeFiles/dbwipes_learn.dir/kmeans.cc.o.d"
  "CMakeFiles/dbwipes_learn.dir/naive_bayes.cc.o"
  "CMakeFiles/dbwipes_learn.dir/naive_bayes.cc.o.d"
  "CMakeFiles/dbwipes_learn.dir/pca.cc.o"
  "CMakeFiles/dbwipes_learn.dir/pca.cc.o.d"
  "CMakeFiles/dbwipes_learn.dir/subgroup.cc.o"
  "CMakeFiles/dbwipes_learn.dir/subgroup.cc.o.d"
  "libdbwipes_learn.a"
  "libdbwipes_learn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbwipes_learn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
