file(REMOVE_RECURSE
  "libdbwipes_query.a"
)
