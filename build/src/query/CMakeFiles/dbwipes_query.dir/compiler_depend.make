# Empty compiler generated dependencies file for dbwipes_query.
# This may be replaced when dependencies are built.
