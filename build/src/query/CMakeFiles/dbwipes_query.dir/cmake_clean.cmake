file(REMOVE_RECURSE
  "CMakeFiles/dbwipes_query.dir/aggregate.cc.o"
  "CMakeFiles/dbwipes_query.dir/aggregate.cc.o.d"
  "CMakeFiles/dbwipes_query.dir/database.cc.o"
  "CMakeFiles/dbwipes_query.dir/database.cc.o.d"
  "CMakeFiles/dbwipes_query.dir/derived.cc.o"
  "CMakeFiles/dbwipes_query.dir/derived.cc.o.d"
  "CMakeFiles/dbwipes_query.dir/executor.cc.o"
  "CMakeFiles/dbwipes_query.dir/executor.cc.o.d"
  "CMakeFiles/dbwipes_query.dir/incremental.cc.o"
  "CMakeFiles/dbwipes_query.dir/incremental.cc.o.d"
  "libdbwipes_query.a"
  "libdbwipes_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbwipes_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
