file(REMOVE_RECURSE
  "libdbwipes_storage.a"
)
