file(REMOVE_RECURSE
  "CMakeFiles/dbwipes_storage.dir/column.cc.o"
  "CMakeFiles/dbwipes_storage.dir/column.cc.o.d"
  "CMakeFiles/dbwipes_storage.dir/csv.cc.o"
  "CMakeFiles/dbwipes_storage.dir/csv.cc.o.d"
  "CMakeFiles/dbwipes_storage.dir/schema.cc.o"
  "CMakeFiles/dbwipes_storage.dir/schema.cc.o.d"
  "CMakeFiles/dbwipes_storage.dir/table.cc.o"
  "CMakeFiles/dbwipes_storage.dir/table.cc.o.d"
  "CMakeFiles/dbwipes_storage.dir/value.cc.o"
  "CMakeFiles/dbwipes_storage.dir/value.cc.o.d"
  "libdbwipes_storage.a"
  "libdbwipes_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbwipes_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
