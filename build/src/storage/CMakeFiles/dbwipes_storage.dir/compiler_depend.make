# Empty compiler generated dependencies file for dbwipes_storage.
# This may be replaced when dependencies are built.
