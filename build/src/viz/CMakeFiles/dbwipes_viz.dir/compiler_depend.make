# Empty compiler generated dependencies file for dbwipes_viz.
# This may be replaced when dependencies are built.
