file(REMOVE_RECURSE
  "libdbwipes_viz.a"
)
