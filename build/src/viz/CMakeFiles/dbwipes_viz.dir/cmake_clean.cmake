file(REMOVE_RECURSE
  "CMakeFiles/dbwipes_viz.dir/dashboard.cc.o"
  "CMakeFiles/dbwipes_viz.dir/dashboard.cc.o.d"
  "CMakeFiles/dbwipes_viz.dir/histogram.cc.o"
  "CMakeFiles/dbwipes_viz.dir/histogram.cc.o.d"
  "CMakeFiles/dbwipes_viz.dir/scatterplot.cc.o"
  "CMakeFiles/dbwipes_viz.dir/scatterplot.cc.o.d"
  "libdbwipes_viz.a"
  "libdbwipes_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbwipes_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
