
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/fec_generator.cc" "src/datagen/CMakeFiles/dbwipes_datagen.dir/fec_generator.cc.o" "gcc" "src/datagen/CMakeFiles/dbwipes_datagen.dir/fec_generator.cc.o.d"
  "/root/repo/src/datagen/intel_generator.cc" "src/datagen/CMakeFiles/dbwipes_datagen.dir/intel_generator.cc.o" "gcc" "src/datagen/CMakeFiles/dbwipes_datagen.dir/intel_generator.cc.o.d"
  "/root/repo/src/datagen/labeled_dataset.cc" "src/datagen/CMakeFiles/dbwipes_datagen.dir/labeled_dataset.cc.o" "gcc" "src/datagen/CMakeFiles/dbwipes_datagen.dir/labeled_dataset.cc.o.d"
  "/root/repo/src/datagen/synthetic.cc" "src/datagen/CMakeFiles/dbwipes_datagen.dir/synthetic.cc.o" "gcc" "src/datagen/CMakeFiles/dbwipes_datagen.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expr/CMakeFiles/dbwipes_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dbwipes_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbwipes_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
