file(REMOVE_RECURSE
  "CMakeFiles/dbwipes_datagen.dir/fec_generator.cc.o"
  "CMakeFiles/dbwipes_datagen.dir/fec_generator.cc.o.d"
  "CMakeFiles/dbwipes_datagen.dir/intel_generator.cc.o"
  "CMakeFiles/dbwipes_datagen.dir/intel_generator.cc.o.d"
  "CMakeFiles/dbwipes_datagen.dir/labeled_dataset.cc.o"
  "CMakeFiles/dbwipes_datagen.dir/labeled_dataset.cc.o.d"
  "CMakeFiles/dbwipes_datagen.dir/synthetic.cc.o"
  "CMakeFiles/dbwipes_datagen.dir/synthetic.cc.o.d"
  "libdbwipes_datagen.a"
  "libdbwipes_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbwipes_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
