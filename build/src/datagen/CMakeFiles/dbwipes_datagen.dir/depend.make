# Empty dependencies file for dbwipes_datagen.
# This may be replaced when dependencies are built.
