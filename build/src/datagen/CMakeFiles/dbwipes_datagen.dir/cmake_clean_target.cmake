file(REMOVE_RECURSE
  "libdbwipes_datagen.a"
)
