# Empty compiler generated dependencies file for dbwipes_expr.
# This may be replaced when dependencies are built.
