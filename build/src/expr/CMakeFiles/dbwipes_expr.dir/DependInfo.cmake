
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expr/ast.cc" "src/expr/CMakeFiles/dbwipes_expr.dir/ast.cc.o" "gcc" "src/expr/CMakeFiles/dbwipes_expr.dir/ast.cc.o.d"
  "/root/repo/src/expr/bool_expr.cc" "src/expr/CMakeFiles/dbwipes_expr.dir/bool_expr.cc.o" "gcc" "src/expr/CMakeFiles/dbwipes_expr.dir/bool_expr.cc.o.d"
  "/root/repo/src/expr/parser.cc" "src/expr/CMakeFiles/dbwipes_expr.dir/parser.cc.o" "gcc" "src/expr/CMakeFiles/dbwipes_expr.dir/parser.cc.o.d"
  "/root/repo/src/expr/predicate.cc" "src/expr/CMakeFiles/dbwipes_expr.dir/predicate.cc.o" "gcc" "src/expr/CMakeFiles/dbwipes_expr.dir/predicate.cc.o.d"
  "/root/repo/src/expr/scalar_expr.cc" "src/expr/CMakeFiles/dbwipes_expr.dir/scalar_expr.cc.o" "gcc" "src/expr/CMakeFiles/dbwipes_expr.dir/scalar_expr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/dbwipes_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbwipes_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
