file(REMOVE_RECURSE
  "libdbwipes_expr.a"
)
