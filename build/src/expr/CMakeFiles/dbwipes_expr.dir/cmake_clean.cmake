file(REMOVE_RECURSE
  "CMakeFiles/dbwipes_expr.dir/ast.cc.o"
  "CMakeFiles/dbwipes_expr.dir/ast.cc.o.d"
  "CMakeFiles/dbwipes_expr.dir/bool_expr.cc.o"
  "CMakeFiles/dbwipes_expr.dir/bool_expr.cc.o.d"
  "CMakeFiles/dbwipes_expr.dir/parser.cc.o"
  "CMakeFiles/dbwipes_expr.dir/parser.cc.o.d"
  "CMakeFiles/dbwipes_expr.dir/predicate.cc.o"
  "CMakeFiles/dbwipes_expr.dir/predicate.cc.o.d"
  "CMakeFiles/dbwipes_expr.dir/scalar_expr.cc.o"
  "CMakeFiles/dbwipes_expr.dir/scalar_expr.cc.o.d"
  "libdbwipes_expr.a"
  "libdbwipes_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbwipes_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
