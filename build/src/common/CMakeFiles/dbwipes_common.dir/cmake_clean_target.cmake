file(REMOVE_RECURSE
  "libdbwipes_common.a"
)
