file(REMOVE_RECURSE
  "CMakeFiles/dbwipes_common.dir/logging.cc.o"
  "CMakeFiles/dbwipes_common.dir/logging.cc.o.d"
  "CMakeFiles/dbwipes_common.dir/parallel.cc.o"
  "CMakeFiles/dbwipes_common.dir/parallel.cc.o.d"
  "CMakeFiles/dbwipes_common.dir/random.cc.o"
  "CMakeFiles/dbwipes_common.dir/random.cc.o.d"
  "CMakeFiles/dbwipes_common.dir/stats.cc.o"
  "CMakeFiles/dbwipes_common.dir/stats.cc.o.d"
  "CMakeFiles/dbwipes_common.dir/status.cc.o"
  "CMakeFiles/dbwipes_common.dir/status.cc.o.d"
  "CMakeFiles/dbwipes_common.dir/string_util.cc.o"
  "CMakeFiles/dbwipes_common.dir/string_util.cc.o.d"
  "libdbwipes_common.a"
  "libdbwipes_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbwipes_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
