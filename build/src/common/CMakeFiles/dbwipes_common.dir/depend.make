# Empty dependencies file for dbwipes_common.
# This may be replaced when dependencies are built.
