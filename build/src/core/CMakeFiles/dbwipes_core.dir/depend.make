# Empty dependencies file for dbwipes_core.
# This may be replaced when dependencies are built.
