file(REMOVE_RECURSE
  "CMakeFiles/dbwipes_core.dir/baselines.cc.o"
  "CMakeFiles/dbwipes_core.dir/baselines.cc.o.d"
  "CMakeFiles/dbwipes_core.dir/dataset_enumerator.cc.o"
  "CMakeFiles/dbwipes_core.dir/dataset_enumerator.cc.o.d"
  "CMakeFiles/dbwipes_core.dir/dbwipes.cc.o"
  "CMakeFiles/dbwipes_core.dir/dbwipes.cc.o.d"
  "CMakeFiles/dbwipes_core.dir/error_metric.cc.o"
  "CMakeFiles/dbwipes_core.dir/error_metric.cc.o.d"
  "CMakeFiles/dbwipes_core.dir/evaluation.cc.o"
  "CMakeFiles/dbwipes_core.dir/evaluation.cc.o.d"
  "CMakeFiles/dbwipes_core.dir/export.cc.o"
  "CMakeFiles/dbwipes_core.dir/export.cc.o.d"
  "CMakeFiles/dbwipes_core.dir/merger.cc.o"
  "CMakeFiles/dbwipes_core.dir/merger.cc.o.d"
  "CMakeFiles/dbwipes_core.dir/predicate_enumerator.cc.o"
  "CMakeFiles/dbwipes_core.dir/predicate_enumerator.cc.o.d"
  "CMakeFiles/dbwipes_core.dir/predicate_ranker.cc.o"
  "CMakeFiles/dbwipes_core.dir/predicate_ranker.cc.o.d"
  "CMakeFiles/dbwipes_core.dir/preprocessor.cc.o"
  "CMakeFiles/dbwipes_core.dir/preprocessor.cc.o.d"
  "CMakeFiles/dbwipes_core.dir/removal.cc.o"
  "CMakeFiles/dbwipes_core.dir/removal.cc.o.d"
  "CMakeFiles/dbwipes_core.dir/removal_scorer.cc.o"
  "CMakeFiles/dbwipes_core.dir/removal_scorer.cc.o.d"
  "CMakeFiles/dbwipes_core.dir/service.cc.o"
  "CMakeFiles/dbwipes_core.dir/service.cc.o.d"
  "CMakeFiles/dbwipes_core.dir/session.cc.o"
  "CMakeFiles/dbwipes_core.dir/session.cc.o.d"
  "libdbwipes_core.a"
  "libdbwipes_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbwipes_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
