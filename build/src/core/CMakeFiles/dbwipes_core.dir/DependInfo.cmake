
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cc" "src/core/CMakeFiles/dbwipes_core.dir/baselines.cc.o" "gcc" "src/core/CMakeFiles/dbwipes_core.dir/baselines.cc.o.d"
  "/root/repo/src/core/dataset_enumerator.cc" "src/core/CMakeFiles/dbwipes_core.dir/dataset_enumerator.cc.o" "gcc" "src/core/CMakeFiles/dbwipes_core.dir/dataset_enumerator.cc.o.d"
  "/root/repo/src/core/dbwipes.cc" "src/core/CMakeFiles/dbwipes_core.dir/dbwipes.cc.o" "gcc" "src/core/CMakeFiles/dbwipes_core.dir/dbwipes.cc.o.d"
  "/root/repo/src/core/error_metric.cc" "src/core/CMakeFiles/dbwipes_core.dir/error_metric.cc.o" "gcc" "src/core/CMakeFiles/dbwipes_core.dir/error_metric.cc.o.d"
  "/root/repo/src/core/evaluation.cc" "src/core/CMakeFiles/dbwipes_core.dir/evaluation.cc.o" "gcc" "src/core/CMakeFiles/dbwipes_core.dir/evaluation.cc.o.d"
  "/root/repo/src/core/export.cc" "src/core/CMakeFiles/dbwipes_core.dir/export.cc.o" "gcc" "src/core/CMakeFiles/dbwipes_core.dir/export.cc.o.d"
  "/root/repo/src/core/merger.cc" "src/core/CMakeFiles/dbwipes_core.dir/merger.cc.o" "gcc" "src/core/CMakeFiles/dbwipes_core.dir/merger.cc.o.d"
  "/root/repo/src/core/predicate_enumerator.cc" "src/core/CMakeFiles/dbwipes_core.dir/predicate_enumerator.cc.o" "gcc" "src/core/CMakeFiles/dbwipes_core.dir/predicate_enumerator.cc.o.d"
  "/root/repo/src/core/predicate_ranker.cc" "src/core/CMakeFiles/dbwipes_core.dir/predicate_ranker.cc.o" "gcc" "src/core/CMakeFiles/dbwipes_core.dir/predicate_ranker.cc.o.d"
  "/root/repo/src/core/preprocessor.cc" "src/core/CMakeFiles/dbwipes_core.dir/preprocessor.cc.o" "gcc" "src/core/CMakeFiles/dbwipes_core.dir/preprocessor.cc.o.d"
  "/root/repo/src/core/removal.cc" "src/core/CMakeFiles/dbwipes_core.dir/removal.cc.o" "gcc" "src/core/CMakeFiles/dbwipes_core.dir/removal.cc.o.d"
  "/root/repo/src/core/removal_scorer.cc" "src/core/CMakeFiles/dbwipes_core.dir/removal_scorer.cc.o" "gcc" "src/core/CMakeFiles/dbwipes_core.dir/removal_scorer.cc.o.d"
  "/root/repo/src/core/service.cc" "src/core/CMakeFiles/dbwipes_core.dir/service.cc.o" "gcc" "src/core/CMakeFiles/dbwipes_core.dir/service.cc.o.d"
  "/root/repo/src/core/session.cc" "src/core/CMakeFiles/dbwipes_core.dir/session.cc.o" "gcc" "src/core/CMakeFiles/dbwipes_core.dir/session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/provenance/CMakeFiles/dbwipes_provenance.dir/DependInfo.cmake"
  "/root/repo/build/src/learn/CMakeFiles/dbwipes_learn.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/dbwipes_query.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/dbwipes_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dbwipes_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbwipes_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
