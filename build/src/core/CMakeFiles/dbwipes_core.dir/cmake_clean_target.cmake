file(REMOVE_RECURSE
  "libdbwipes_core.a"
)
